"""Load generation for the serving stack (``bench-serve``).

Two arrival disciplines, one report shape:

* **Closed loop** (:func:`run_closed_loop`) — a fixed fleet of
  concurrent workers each issues one request, waits for the reply, and
  immediately issues the next.  Offered load adapts to service
  capacity, which is ideal for measuring *throughput ceilings* — but it
  hides queueing delay: a slow reply delays the *next* request instead
  of piling up behind it (the classic coordinated-omission blind spot).
* **Open loop** (:func:`run_open_loop`) — requests arrive on a seeded
  Poisson process at a fixed offered rate, *regardless* of how the
  server is doing, and every latency is measured from the request's
  **intended arrival time**.  Queueing delay therefore lands in the
  percentiles, which is what makes the worker-pool latency win (and
  the in-loop path's stalls) visible at all.

Request streams are deterministic (seeded log-uniform grids; arrival
times from one seeded exponential draw), so two runs with the same
parameters offer byte-identical workloads.  Two workload mixes:

* ``"scalar"`` — pure scalar ``eval`` requests: the micro-batching
  showcase.
* ``"mixed"`` — scalar evals, fat grid evals, high-resolution curves,
  and balance/tradeoff/greenup/describe analyses interleaved on a
  fixed 8-request cycle: a CPU-bound mix where per-request compute
  dwarfs dispatch overhead, which is the workload the sharded worker
  tier exists for.
"""

from __future__ import annotations

import asyncio
import math
import time
from dataclasses import dataclass, replace
from typing import Any, Sequence

import numpy as np

from repro.service.client import AsyncServiceClient, InProcessClient
from repro.service.router import RouterConfig, RouterServer
from repro.service.server import ModelServer, ServerConfig
from repro.units import to_milliseconds

__all__ = [
    "LoadReport",
    "TARGET_CONNECT_TIMEOUT",
    "arrival_schedule",
    "build_requests",
    "parse_arrival_spec",
    "ramp_arrival_schedule",
    "run_closed_loop",
    "run_open_loop",
    "bench_serving",
]

#: Seconds ``bench_serving(target=...)`` waits for the external server
#: before failing with a clear error instead of hanging on connect.
TARGET_CONNECT_TIMEOUT = 5.0

_DEFAULT_MACHINES = ("gtx580-double", "i7-950-double")

#: Seed of the default request stream (the paper's publication date).
_DEFAULT_SEED = 20130520

#: Curve kinds cycled through by the mixed workload.
_MIXED_CURVE_KINDS = ("roofline", "archline", "powerline", "capped-powerline")

#: Points per octave for mixed-workload curves — 10 octaves at 200/oct
#: is a ~2000-point series per request: real numpy work, small reply.
_MIXED_CURVE_PPO = 200

#: Grid size for mixed-workload vector evals.
_MIXED_GRID_POINTS = 1024

#: Heavy-workload sizes: ~20k-point curves (several ms of numpy per
#: request, replies past the shared-memory threshold) and an 8k grid.
_HEAVY_CURVE_PPO = 2000
_HEAVY_GRID_POINTS = 8192


@dataclass(frozen=True)
class LoadReport:
    """Outcome of one load-generation run against a server."""

    requests: int
    errors: int
    concurrency: int
    duration: float
    throughput: float
    p50_ms: float
    p99_ms: float
    mean_batch: float
    max_batch: int
    engine_calls: int
    cache_hit_ratio: float
    batch_size_counts: dict[str, int]
    mode: str = "closed"
    workload: str = "scalar"
    offered_rps: float = 0.0
    workers: int = 0
    #: Transport the requests travelled over: ``"inproc"`` (direct
    #: handler calls), or ``"ndjson"`` / ``"binary"`` for real TCP with
    #: that wire framing.
    wire: str = "inproc"
    #: Bytes on the wire over the whole run (zero for ``"inproc"``) —
    #: the framing A/B's second axis next to the latency distribution.
    bytes_sent: int = 0
    bytes_received: int = 0
    #: Per-request latencies in issue order, milliseconds.  Percentiles
    #: compress the story; the raw series is what lets a caller see
    #: queueing *build* (open-loop backlog grows latency monotonically
    #: along the stream — tested in tests/service/test_loadgen_edge.py).
    latencies_ms: tuple[float, ...] = ()
    #: Number of replicated backend servers behind the router when the
    #: run drove the scale-out tier (zero = direct single-server run).
    router_backends: int = 0
    #: Per-key replication factor on the router's ring (zero = direct).
    replication: int = 0
    #: ``HOST:PORT`` of an external server/router the run targeted, if
    #: any — engine/cache statistics are unavailable for a remote
    #: process and read as zero.
    target: str = ""

    def describe(self) -> str:
        """Human-readable report block for the CLI."""
        lines = [
            f"requests    = {self.requests} "
            f"({self.errors} errors, concurrency {self.concurrency})",
            f"duration    = {self.duration:.3f} s",
            f"throughput  = {self.throughput:,.0f} req/s",
            f"latency     = p50 {self.p50_ms:.3f} ms, p99 {self.p99_ms:.3f} ms",
            f"engine      = {self.engine_calls} vectorised calls "
            f"(mean batch {self.mean_batch:.1f}, max {self.max_batch})",
            f"cache       = {self.cache_hit_ratio:.1%} hit ratio",
        ]
        if self.mode == "open":
            lines.insert(
                1,
                f"arrivals    = open loop (Poisson), offered "
                f"{self.offered_rps:,.0f} req/s; latency measured from "
                "intended arrival",
            )
        if self.wire != "inproc":
            total = self.bytes_sent + self.bytes_received
            per_request = total / self.requests if self.requests else 0.0
            lines.insert(
                1,
                f"wire        = {self.wire} framing over TCP "
                f"({self.bytes_sent:,} B sent, "
                f"{self.bytes_received:,} B received, "
                f"{per_request:,.0f} B/request)",
            )
        if self.router_backends:
            lines.insert(
                1,
                f"router      = {self.router_backends} backends, "
                f"replication {self.replication}",
            )
        if self.target:
            lines.insert(1, f"target      = {self.target} (external)")
        if self.workers:
            lines.append(f"workers     = {self.workers} shard processes")
        if self.batch_size_counts:
            histogram = ", ".join(
                f"{size}x{count}"
                for size, count in sorted(
                    self.batch_size_counts.items(), key=lambda kv: int(kv[0])
                )
            )
            lines.append(f"batch sizes = {histogram}")
        return "\n".join(lines)


def intensity_sequence(
    n: int, *, unique: bool = True, seed: int = _DEFAULT_SEED
) -> np.ndarray:
    """Deterministic log-uniform intensities over [2^-3, 2^6] flop/B."""
    rng = np.random.default_rng(seed)
    if unique:
        return 2.0 ** rng.uniform(-3.0, 6.0, n)
    pool = 2.0 ** rng.uniform(-3.0, 6.0, 16)
    return pool[rng.integers(0, pool.size, n)]


def build_requests(
    n: int,
    *,
    machines: Sequence[str] = _DEFAULT_MACHINES,
    model: str = "energy",
    metric: str = "energy_per_flop",
    unique_intensities: bool = True,
    workload: str = "scalar",
    seed: int = _DEFAULT_SEED,
    timeout_ms: float | None = None,
    priorities: Sequence[int] | None = None,
) -> list[dict[str, Any]]:
    """The deterministic request stream both loops drive.

    ``workload="scalar"`` yields pure scalar ``eval`` bodies (request
    *i* targets machine ``i % len(machines)``, intensity from the
    seeded grid — unchanged from the original closed-loop generator).
    ``workload="mixed"`` interleaves, on a fixed 8-request cycle:
    four scalar evals, one :data:`_MIXED_GRID_POINTS`-point grid eval,
    two :data:`_MIXED_CURVE_PPO`-per-octave curves, and one rotating
    structured analysis (balance / tradeoff / greenup / describe).
    ``workload="heavy"`` is the same cycle with 10x denser curves and
    an 8x larger grid — per-request model compute dominates dispatch
    and IPC cost, which is the regime the worker-pool benchmark gate
    needs (and its curve replies are large enough to travel via shared
    memory, exercising that path too).

    ``timeout_ms`` stamps the same per-request deadline onto every
    body (what deadline-aware batch sizing keys on); ``priorities``
    cycles its values onto the ``priority`` field (what the power-cap
    throttle ranks by).  Both ride outside the semantic body — the
    response cache ignores them — so stamped and unstamped streams
    still produce identical result bytes.
    """
    if workload not in ("scalar", "mixed", "heavy"):
        raise ValueError(
            f"workload must be 'scalar', 'mixed', or 'heavy', "
            f"got {workload!r}"
        )
    curve_ppo = _HEAVY_CURVE_PPO if workload == "heavy" else _MIXED_CURVE_PPO
    grid_points = (
        _HEAVY_GRID_POINTS if workload == "heavy" else _MIXED_GRID_POINTS
    )
    grid = intensity_sequence(n, unique=unique_intensities, seed=seed)
    machine_cycle = list(machines)
    n_machines = len(machine_cycle)
    base_grid = intensity_sequence(
        grid_points - 1, unique=True, seed=seed + 1
    ).tolist()
    requests: list[dict[str, Any]] = []
    for i in range(n):
        if workload == "scalar":
            machine = machine_cycle[i % n_machines]
        else:
            # Rotate the machine assignment one step per 8-slot cycle;
            # without the offset, slot and machine index stay phase-
            # locked whenever len(machines) divides 8 and the expensive
            # slots (curves) pin themselves to the same machines —
            # i.e. the same worker shards — forever.
            machine = machine_cycle[(i + i // 8) % n_machines]
        x = float(grid[i])
        slot = 0 if workload == "scalar" else i % 8
        if workload == "scalar" or slot < 4:
            requests.append(
                {
                    "op": "eval",
                    "machine": machine,
                    "model": model,
                    "metric": metric,
                    "intensity": x,
                }
            )
        elif slot == 4:
            # Grid eval: the shared base grid prefixed with this
            # request's own intensity, so every body is distinct.
            requests.append(
                {
                    "op": "eval",
                    "machine": machine,
                    "model": model,
                    "metric": metric,
                    "intensities": [x] + base_grid,
                }
            )
        elif slot in (5, 6):
            requests.append(
                {
                    "op": "curve",
                    "machine": machine,
                    "kind": _MIXED_CURVE_KINDS[(i // 8 + slot) % 4],
                    "points_per_octave": curve_ppo,
                }
            )
        else:
            analysis = (i // 8) % 4
            if analysis == 0:
                requests.append({"op": "balance", "machine": machine})
            elif analysis == 1:
                requests.append(
                    {
                        "op": "tradeoff",
                        "machine": machine,
                        "intensity": x,
                        "f": 1.0 + (i % 5) * 0.1,
                        "m": 1.0 + (i % 7) * 0.5,
                    }
                )
            elif analysis == 2:
                requests.append(
                    {
                        "op": "greenup",
                        "machine": machine,
                        "intensity": x,
                        "m": 2.0 + (i % 4),
                    }
                )
            else:
                requests.append({"op": "describe", "machine": machine})
    if timeout_ms is not None:
        for body in requests:
            body["timeout_ms"] = timeout_ms
    if priorities:
        cycle = list(priorities)
        for i, body in enumerate(requests):
            body["priority"] = cycle[i % len(cycle)]
    return requests


def arrival_schedule(
    rate: float, requests: int, *, seed: int = _DEFAULT_SEED
) -> np.ndarray:
    """Cumulative Poisson arrival instants (seconds from run start).

    One seeded exponential draw (``np.random.default_rng`` — the RL003
    discipline), so the same ``(rate, requests, seed)`` triple yields a
    bit-identical schedule in every process on every platform; the
    cross-process determinism is pinned in
    ``tests/service/test_loadgen_edge.py``.  This is the schedule
    :func:`run_open_loop` fires — exposed so tests and capacity
    planning can inspect the offered load without running a server.
    """
    if requests < 0:
        raise ValueError(f"requests must be >= 0, got {requests}")
    if not rate > 0:
        raise ValueError(f"rate must be positive, got {rate!r}")
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.exponential(1.0 / rate, requests))


def ramp_arrival_schedule(
    lo: float, hi: float, seconds: float, *, seed: int = _DEFAULT_SEED
) -> np.ndarray:
    """Inhomogeneous-Poisson arrivals ramping ``lo`` → ``hi`` req/s.

    The instantaneous rate rises (or falls) linearly over ``seconds``,
    which is the canonical autoscaler-convergence drive: demand grows
    smoothly through the scale-up threshold and back down after the
    window ends.  Sampling is by inversion — unit-rate exponential
    inter-arrivals are mapped through the inverse of the cumulative
    rate ``Λ(t) = lo·t + (hi − lo)·t²/(2·seconds)`` — so, like
    :func:`arrival_schedule`, one seeded ``np.random.default_rng``
    draw makes the same ``(lo, hi, seconds, seed)`` quadruple yield a
    bit-identical schedule everywhere.  Expected arrivals:
    ``(lo + hi) / 2 * seconds``.
    """
    if not lo > 0 or not hi > 0:
        raise ValueError(f"ramp rates must be positive, got lo={lo} hi={hi}")
    if not seconds > 0:
        raise ValueError(f"ramp duration must be positive, got {seconds}")
    rng = np.random.default_rng(seed)
    slope = (hi - lo) / seconds
    total = lo * seconds + slope * seconds * seconds / 2.0
    # Oversample the unit-rate stream so one draw almost always covers
    # Λ(seconds); top up (rarely) if the tail came up short.
    marks = np.cumsum(
        rng.exponential(1.0, int(total + 6.0 * math.sqrt(total) + 16.0))
    )
    while marks[-1] <= total:  # pragma: no cover - ~6-sigma tail
        extra = np.cumsum(rng.exponential(1.0, 64)) + marks[-1]
        marks = np.concatenate([marks, extra])
    marks = marks[marks <= total]
    if math.isclose(hi, lo):
        return marks / lo  # degenerate flat ramp: homogeneous Poisson
    # Invert lo·t + slope·t²/2 = E for t; the discriminant is
    # (lo + slope·t)² >= hi² > 0 on the covered range, so sqrt is safe
    # for ramps down as well as up.
    return (np.sqrt(lo * lo + 2.0 * slope * marks) - lo) / slope


def parse_arrival_spec(
    spec: str, *, seed: int = _DEFAULT_SEED
) -> np.ndarray:
    """Arrival schedule named by a CLI spec string.

    ``"ramp:LO:HI:SECS"`` is the linear ramp of
    :func:`ramp_arrival_schedule`; the request count is whatever the
    schedule yields (callers size their request stream to match).
    """
    kind, _, rest = spec.partition(":")
    if kind == "ramp":
        parts = rest.split(":")
        if len(parts) != 3:
            raise ValueError(
                f"ramp arrival spec must be 'ramp:LO:HI:SECS', got {spec!r}"
            )
        try:
            lo, hi, seconds = (float(part) for part in parts)
        except ValueError:
            raise ValueError(
                f"ramp arrival spec must be 'ramp:LO:HI:SECS' with numeric "
                f"fields, got {spec!r}"
            ) from None
        return ramp_arrival_schedule(lo, hi, seconds, seed=seed)
    raise ValueError(
        f"unknown arrival spec {spec!r}; supported: 'ramp:LO:HI:SECS'"
    )


def _merge_server_stats(servers: Sequence[ModelServer]) -> dict[str, Any]:
    """Pipeline statistics summed/merged across server instances.

    One server reduces to its own stats; multiple (the replicated
    backends behind a router) merge the additive counters, weight the
    batch-size mean by per-server counts, and recompute the cache hit
    ratio from summed hits/misses rather than averaging ratios.
    """
    engine_calls = 0
    hits = 0
    misses = 0
    batch_count = 0
    batch_sum = 0.0
    batch_max = 0
    batch_values: dict[str, int] = {}
    workers = 0
    for server in servers:
        stats = server.stats()
        engine_calls += int(stats["engine_batch_calls"])
        cache = stats.get("cache", {})
        hits += int(cache.get("hits", 0))
        misses += int(cache.get("misses", 0))
        hist = stats["histograms"].get("batch_size", {})
        count = int(hist.get("count", 0))
        batch_count += count
        batch_sum += float(hist.get("mean", 0.0)) * count
        batch_max = max(batch_max, int(hist.get("max", 0) or 0))
        for size, tally in hist.get("values", {}).items():
            batch_values[size] = batch_values.get(size, 0) + int(tally)
        workers = max(workers, int(stats["config"].get("workers", 0)))
    lookups = hits + misses
    return {
        "engine_calls": engine_calls,
        "cache_hit_ratio": hits / lookups if lookups else 0.0,
        "mean_batch": batch_sum / batch_count if batch_count else 0.0,
        "max_batch": batch_max,
        "batch_size_counts": batch_values,
        "workers": workers,
    }


def _finish_report(
    server: ModelServer | None,
    latencies: np.ndarray,
    *,
    errors: int,
    concurrency: int,
    duration: float,
    mode: str,
    workload: str,
    offered_rps: float,
    backends: Sequence[ModelServer] = (),
) -> LoadReport:
    requests = latencies.size
    sources = list(backends) if backends else (
        [server] if server is not None else []
    )
    merged = _merge_server_stats(sources)
    ordered = to_milliseconds(np.sort(latencies))
    return LoadReport(
        requests=requests,
        errors=errors,
        concurrency=concurrency,
        duration=duration,
        throughput=requests / duration if duration > 0 else 0.0,
        p50_ms=float(ordered[int(0.50 * (requests - 1))]) if requests else 0.0,
        p99_ms=float(ordered[int(0.99 * (requests - 1))]) if requests else 0.0,
        mean_batch=merged["mean_batch"],
        max_batch=merged["max_batch"],
        engine_calls=merged["engine_calls"],
        cache_hit_ratio=merged["cache_hit_ratio"],
        batch_size_counts=merged["batch_size_counts"],
        mode=mode,
        workload=workload,
        offered_rps=offered_rps,
        workers=merged["workers"],
        latencies_ms=tuple(to_milliseconds(latencies).tolist()),
    )


async def _warm_servers(
    server: ModelServer | None,
    backends: Sequence[ModelServer],
    machines: Sequence[str],
) -> None:
    """Resolve machines and wait for worker pools on every local server
    in the measurement, so cold boot isn't billed to the run.  External
    targets (no local server objects) warm nothing."""
    for instance in list(backends) or ([server] if server is not None else []):
        for machine in machines:
            instance.engine.machine(machine)  # fail fast on config errors
        if instance.pool is not None:
            # Measure steady state, not the ~1 s/worker cold boot.
            await instance.pool.ready()


async def run_closed_loop(
    server: ModelServer | None,
    *,
    requests: int = 2000,
    concurrency: int = 64,
    machines: Sequence[str] = _DEFAULT_MACHINES,
    model: str = "energy",
    metric: str = "energy_per_flop",
    unique_intensities: bool = True,
    workload: str = "scalar",
    timeout_ms: float | None = None,
    client: Any | None = None,
    backends: Sequence[ModelServer] = (),
) -> LoadReport:
    """Drive ``requests`` evaluations through ``server``, closed-loop.

    The ``client`` defaults to an :class:`InProcessClient`; pass an
    :class:`~repro.service.client.AsyncServiceClient` to include the
    TCP+JSON wire in the measurement.  When the client fronts a router,
    pass the backend :class:`ModelServer` instances via ``backends``
    (and ``server=None``): pipeline statistics are then merged across
    all of them.  ``server=None`` with no ``backends`` (an external
    target) zeroes the pipeline statistics.
    """
    if requests < 0 or concurrency < 1:
        raise ValueError("requests must be >= 0 and concurrency >= 1")
    if client is None:
        if server is None:
            raise ValueError("server=None requires an explicit client")
        client = InProcessClient(server)
    bodies = build_requests(
        requests,
        machines=machines,
        model=model,
        metric=metric,
        unique_intensities=unique_intensities,
        workload=workload,
        timeout_ms=timeout_ms,
    )
    await _warm_servers(server, backends, machines)
    latencies = np.empty(requests, dtype=float)
    errors = 0
    next_index = 0
    call = client.call

    async def worker() -> None:
        nonlocal next_index, errors
        while True:
            index = next_index
            if index >= requests:
                return
            next_index = index + 1
            started = time.perf_counter()
            try:
                await call(bodies[index])
            except Exception:  # noqa: BLE001 - tallied, not raised
                errors += 1
            latencies[index] = time.perf_counter() - started

    started = time.perf_counter()
    await asyncio.gather(*(worker() for _ in range(concurrency)))
    duration = time.perf_counter() - started
    return _finish_report(
        server,
        latencies,
        errors=errors,
        concurrency=concurrency,
        duration=duration,
        mode="closed",
        workload=workload,
        offered_rps=0.0,
        backends=backends,
    )


async def run_open_loop(
    server: ModelServer | None,
    *,
    rate: float | None = None,
    requests: int = 2000,
    machines: Sequence[str] = _DEFAULT_MACHINES,
    model: str = "energy",
    metric: str = "energy_per_flop",
    unique_intensities: bool = True,
    workload: str = "scalar",
    seed: int = _DEFAULT_SEED,
    timeout_ms: float | None = None,
    arrivals: np.ndarray | None = None,
    client: Any | None = None,
    backends: Sequence[ModelServer] = (),
) -> LoadReport:
    """Drive ``requests`` evaluations at a fixed Poisson arrival rate.

    Inter-arrival gaps are one seeded exponential draw
    (``np.random.default_rng(seed)`` — the RL003 discipline), so the
    same parameters offer the identical arrival schedule every run.
    Each request fires at its scheduled instant whether or not earlier
    replies have come back, and its latency is measured from the
    **intended** arrival time — dispatch lateness and queueing delay
    count, which closed-loop generators structurally cannot see
    (coordinated omission).

    ``arrivals`` overrides the Poisson schedule with explicit arrival
    instants (e.g. :func:`ramp_arrival_schedule`); the request count
    then follows the schedule length and ``rate`` is unused.
    """
    if arrivals is None:
        if rate is None:
            raise ValueError("either rate or arrivals is required")
        arrivals = arrival_schedule(rate, requests, seed=seed)
    else:
        arrivals = np.asarray(arrivals, dtype=float)
        requests = int(arrivals.size)
    bodies = build_requests(
        requests,
        machines=machines,
        model=model,
        metric=metric,
        unique_intensities=unique_intensities,
        workload=workload,
        seed=seed,
        timeout_ms=timeout_ms,
    )
    if client is None:
        if server is None:
            raise ValueError("server=None requires an explicit client")
        client = InProcessClient(server)
    await _warm_servers(server, backends, machines)
    latencies = np.empty(requests, dtype=float)
    errors = 0
    call = client.call

    async def issue(index: int, target: float) -> None:
        nonlocal errors
        try:
            await call(bodies[index])
        except Exception:  # noqa: BLE001 - tallied, not raised
            errors += 1
        latencies[index] = time.perf_counter() - target

    base = time.perf_counter()
    tasks = []
    for index in range(requests):
        target = base + arrivals[index]
        delay = target - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.ensure_future(issue(index, target)))
    await asyncio.gather(*tasks)
    duration = time.perf_counter() - base
    return _finish_report(
        server,
        latencies,
        errors=errors,
        concurrency=0,
        duration=duration,
        mode="open",
        workload=workload,
        offered_rps=(
            requests / float(arrivals[-1]) if requests else 0.0
        ),
        backends=backends,
    )


def bench_serving(
    *,
    requests: int = 2000,
    concurrency: int = 64,
    max_batch: int = 64,
    flush_window: float = 0.001,
    cache_size: int = 0,
    machines: Sequence[str] = _DEFAULT_MACHINES,
    model: str = "energy",
    metric: str = "energy_per_flop",
    unique_intensities: bool = True,
    workload: str = "scalar",
    workers: int = 0,
    shard_by: str = "machine",
    open_loop_rate: float | None = None,
    arrival: str | None = None,
    timeout_ms: float | None = None,
    wire: str = "inproc",
    job_transport: str | None = None,
    plan_cache_size: int | None = None,
    admission: str | None = None,
    work_budget: float | None = None,
    power_cap: float | None = None,
    admission_wait: float | None = None,
    deadline_batching: bool | None = None,
    autoscale_min: int | None = None,
    autoscale_max: int | None = None,
    autoscale_interval: float | None = None,
    router_backends: int = 0,
    replication: int = 1,
    target: str | None = None,
) -> LoadReport:
    """One synchronous end-to-end serving benchmark run.

    Builds a fresh in-process server with the given batching / caching
    / worker-tier knobs, runs the load (closed loop by default; open
    loop at ``open_loop_rate`` requests/s when given), drains, and
    returns the report.  The cache defaults to *off* so the
    measurement isolates the execution path under test.

    ``wire`` selects the transport under test: ``"inproc"`` (default)
    calls the handler directly; ``"ndjson"`` and ``"binary"`` serve a
    real loopback TCP socket and drive it through one
    :class:`~repro.service.client.AsyncServiceClient` negotiated to
    that framing, so the report's latency distribution and
    bytes-on-wire compare the framings end to end.  ``job_transport``
    and ``plan_cache_size`` pass through to :class:`ServerConfig` when
    given (``None`` keeps the server defaults) — the perfreg wire check
    pins its baseline by forcing ``pickle`` transport and a disabled
    plan cache.

    ``router_backends=N`` (N ≥ 1) benchmarks the scale-out tier
    instead of one server: N backend servers (each with the same
    pipeline knobs) listen on loopback TCP, a
    :class:`~repro.service.router.RouterServer` with the given
    ``replication`` fronts them, and the client drives the *router* —
    so the report's latency and bytes-on-wire include the extra hop,
    while engine/cache statistics are merged across all backends.
    Router runs require a TCP ``wire`` (``"ndjson"`` or ``"binary"``).

    ``target="HOST:PORT"`` instead drives an already-running external
    server or router: no local processes are built, and the pipeline
    statistics (engine calls, batch sizes, cache ratio) read as zero
    since they live in the remote process — latency, throughput, and
    bytes-on-wire are still measured.  A target that cannot be reached
    within :data:`TARGET_CONNECT_TIMEOUT` seconds fails with a clear
    error instead of hanging.

    ``arrival="ramp:LO:HI:SECS"`` drives the seeded linear-ramp
    arrival schedule (:func:`ramp_arrival_schedule`) instead of the
    fixed-rate Poisson open loop; the request count follows the
    schedule.  ``admission`` / ``work_budget`` / ``power_cap`` /
    ``admission_wait`` / ``deadline_batching`` / ``autoscale_*`` pass
    through to :class:`ServerConfig` when given (``None`` keeps server
    defaults) — how the cost-admission perfreg check builds its
    treatment and baseline servers from one code path.
    """
    if wire not in ("inproc", "ndjson", "binary"):
        raise ValueError(
            f"wire must be 'inproc', 'ndjson', or 'binary', got {wire!r}"
        )
    if router_backends < 0:
        raise ValueError(
            f"router_backends must be >= 0, got {router_backends}"
        )
    if (router_backends > 0 or target is not None) and wire == "inproc":
        raise ValueError(
            "router/target runs need a TCP wire ('ndjson' or 'binary')"
        )
    if router_backends > 0 and target is not None:
        raise ValueError("router_backends and target are mutually exclusive")
    if arrival is not None and open_loop_rate is not None:
        raise ValueError(
            "arrival and open_loop_rate are mutually exclusive — the "
            "arrival spec defines its own rate profile"
        )
    if target is not None and (
        workers
        or autoscale_max
        or job_transport is not None
        or plan_cache_size is not None
    ):
        raise ValueError(
            "workers/autoscale/job_transport/plan_cache_size configure a "
            "locally built server and cannot apply to an external --target"
        )
    arrivals = parse_arrival_spec(arrival) if arrival is not None else None

    async def _drive(
        server: ModelServer | None,
        client: Any | None,
        backends: Sequence[ModelServer] = (),
    ) -> LoadReport:
        if open_loop_rate is not None or arrivals is not None:
            return await run_open_loop(
                server,
                rate=open_loop_rate,
                requests=requests,
                machines=machines,
                model=model,
                metric=metric,
                unique_intensities=unique_intensities,
                workload=workload,
                timeout_ms=timeout_ms,
                arrivals=arrivals,
                client=client,
                backends=backends,
            )
        return await run_closed_loop(
            server,
            requests=requests,
            concurrency=concurrency,
            machines=machines,
            model=model,
            metric=metric,
            unique_intensities=unique_intensities,
            workload=workload,
            timeout_ms=timeout_ms,
            client=client,
            backends=backends,
        )

    def _server_config() -> ServerConfig:
        config_kwargs: dict[str, Any] = {}
        if job_transport is not None:
            config_kwargs["job_transport"] = job_transport
        if plan_cache_size is not None:
            config_kwargs["plan_cache_size"] = plan_cache_size
        if admission is not None:
            config_kwargs["admission"] = admission
        if work_budget is not None:
            config_kwargs["work_budget"] = work_budget
        if power_cap is not None:
            config_kwargs["power_cap"] = power_cap
        if admission_wait is not None:
            config_kwargs["admission_wait"] = admission_wait
        if deadline_batching is not None:
            config_kwargs["deadline_batching"] = deadline_batching
        if autoscale_min is not None:
            config_kwargs["autoscale_min"] = autoscale_min
        if autoscale_max is not None:
            config_kwargs["autoscale_max"] = autoscale_max
        if autoscale_interval is not None:
            config_kwargs["autoscale_interval"] = autoscale_interval
        return ServerConfig(
            max_batch=max_batch,
            flush_window=flush_window,
            cache_size=cache_size,
            queue_limit=max(1024, concurrency * 2),
            workers=workers,
            shard_by=shard_by,
            **config_kwargs,
        )

    def _wire_report(report: LoadReport, client: Any) -> LoadReport:
        return replace(
            report,
            wire=wire,
            bytes_sent=client.bytes_sent,
            bytes_received=client.bytes_received,
        )

    async def _run_target() -> LoadReport:
        host, _, port = str(target).rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(
                f"target must look like HOST:PORT, got {target!r}"
            )
        try:
            client = await asyncio.wait_for(
                AsyncServiceClient.connect(host, int(port), wire=wire),
                timeout=TARGET_CONNECT_TIMEOUT,
            )
        except asyncio.TimeoutError:
            raise ConnectionError(
                f"could not connect to target {target!r} within "
                f"{TARGET_CONNECT_TIMEOUT:g}s — check the address is a "
                f"running repro server/router and that the requested "
                f"wire ({wire!r}) matches what it speaks"
            ) from None
        except OSError as exc:
            raise ConnectionError(
                f"could not connect to target {target!r}: {exc}"
            ) from exc
        try:
            report = await _drive(None, client)
            return replace(
                _wire_report(report, client), target=str(target)
            )
        finally:
            await client.close()

    async def _run_router() -> LoadReport:
        backends: list[ModelServer] = []
        router = None
        client = None
        try:
            addresses = []
            for _ in range(router_backends):
                backend = ModelServer(_server_config())
                backends.append(backend)
                host, port = await backend.start()
                addresses.append(f"{host}:{port}")
            router = RouterServer(
                addresses, RouterConfig(replication=replication)
            )
            host, port = await router.start()
            client = await AsyncServiceClient.connect(host, port, wire=wire)
            if client.wire != wire:  # pragma: no cover - local router
                raise RuntimeError(
                    f"negotiated {client.wire!r} framing, wanted {wire!r}"
                )
            report = await _drive(None, client, backends)
            return replace(
                _wire_report(report, client),
                router_backends=router_backends,
                replication=replication,
            )
        finally:
            if client is not None:
                await client.close()
            if router is not None:
                await router.stop()
            for backend in backends:
                await backend.stop()

    async def _run_single() -> LoadReport:
        server = ModelServer(_server_config())
        client = None
        tcp_server = None
        try:
            if wire != "inproc":
                tcp_server = await asyncio.start_server(
                    server._on_connection, "127.0.0.1", 0
                )
                port = tcp_server.sockets[0].getsockname()[1]
                client = await AsyncServiceClient.connect(
                    "127.0.0.1", port, wire=wire
                )
                if client.wire != wire:  # pragma: no cover - local server
                    raise RuntimeError(
                        f"negotiated {client.wire!r} framing, wanted {wire!r}"
                    )
            report = await _drive(server, client)
            if client is not None:
                report = _wire_report(report, client)
            return report
        finally:
            if client is not None:
                await client.close()
            if tcp_server is not None:
                tcp_server.close()
                await tcp_server.wait_closed()
            await server.stop()

    if target is not None:
        return asyncio.run(_run_target())
    if router_backends > 0:
        return asyncio.run(_run_router())
    return asyncio.run(_run_single())

"""Global configuration defaults for the reproduction.

Centralises the handful of knobs that experiments, tests, and benchmarks
share: random seeds (for deterministic simulated measurements), numerical
tolerances, and the sampling parameters the paper reports using
(100 repetitions, 128 Hz per channel, i.e. one sample every 7.8125 ms).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Final

#: Default RNG seed; every stochastic component takes an explicit seed or
#: :class:`numpy.random.Generator`, and falls back to this.
DEFAULT_SEED: Final[int] = 20130520  # IPDPS 2013 conference dates

#: Relative tolerance for closed-form model identities checked in tests.
MODEL_RTOL: Final[float] = 1e-12

#: The paper's measurement protocol (Section IV-A).
PAPER_SAMPLE_HZ: Final[float] = 128.0
PAPER_REPETITIONS: Final[int] = 100

#: PowerMon 2 hardware limits (Section IV-A).
POWERMON_MAX_CHANNEL_HZ: Final[float] = 1024.0
POWERMON_MAX_AGGREGATE_HZ: Final[float] = 3072.0
POWERMON_MAX_CHANNELS: Final[int] = 8


@dataclass(frozen=True, slots=True)
class MeasurementProtocol:
    """How a measurement session samples and repeats a kernel.

    Attributes
    ----------
    sample_hz:
        Per-channel sampling frequency.  The paper uses 128 Hz.
    repetitions:
        Number of back-to-back kernel executions averaged together.
    warmup:
        Executions discarded before measurement starts.
    """

    sample_hz: float = PAPER_SAMPLE_HZ
    repetitions: int = PAPER_REPETITIONS
    warmup: int = 3

    def __post_init__(self) -> None:
        if self.sample_hz <= 0:
            raise ValueError("sample_hz must be positive")
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        if self.warmup < 0:
            raise ValueError("warmup must be >= 0")

    @property
    def sample_period(self) -> float:
        """Seconds between successive samples on one channel."""
        return 1.0 / self.sample_hz


@dataclass(frozen=True, slots=True)
class NoiseProfile:
    """Measurement-noise magnitudes applied by the simulated PowerMon.

    ``voltage_sigma`` / ``current_sigma`` are relative (fraction of reading)
    Gaussian noise levels per sample; ``adc_bits`` controls quantisation.
    The defaults are conservative for a 12-bit digital power monitor and
    produce regression fits with R^2 near unity, matching the paper's
    footnote 8.
    """

    voltage_sigma: float = 0.002
    current_sigma: float = 0.005
    adc_bits: int = 12
    gain_error: float = 0.0

    def __post_init__(self) -> None:
        if self.voltage_sigma < 0 or self.current_sigma < 0:
            raise ValueError("noise sigmas must be non-negative")
        if not 4 <= self.adc_bits <= 24:
            raise ValueError("adc_bits must be in [4, 24]")
        if abs(self.gain_error) > 0.2:
            raise ValueError("gain_error must be within +/-20%")


#: Protocol used by default in experiments; matches the paper.
DEFAULT_PROTOCOL: Final[MeasurementProtocol] = MeasurementProtocol()

#: Noise used by default in experiments.
DEFAULT_NOISE: Final[NoiseProfile] = NoiseProfile()

#: A noiseless profile, used by tests that check exact energy bookkeeping.
NOISELESS: Final[NoiseProfile] = NoiseProfile(
    voltage_sigma=0.0, current_sigma=0.0, adc_bits=24, gain_error=0.0
)

"""Experiment harness: one module per table/figure of the paper.

Every experiment is a callable registered in
:mod:`repro.experiments.registry` that returns an
:class:`~repro.experiments.registry.ExperimentResult` — a rendered text
report plus the key numbers as a dict (which the benchmark harness
prints and the tests assert against).

=============  ===============================================
 id             paper artefact
=============  ===============================================
 ``table2``     Table II — Keckler-Fermi model parameters
 ``table3``     Table III — platform spec sheet
 ``fig1``       Fig. 1 — two-level model scope, scale-checked
 ``fig2``       Fig. 2a/2b — roofline vs arch line; powerline
 ``fig3``       Fig. 3 — probe placement, validated as configuration
 ``fig4``       Fig. 4a/4b — measured vs model, time and energy
 ``table4``     Table IV — regression-fitted energy coefficients
 ``fig5``       Fig. 5a/5b — measured powerlines and the power cap
 ``fmm``        §V-C — FMM U-list cache-energy study
 ``greenup``    eq. (10) — work–communication trade-off frontier
=============  ===============================================
"""

from repro.experiments.registry import (
    ExperimentResult,
    get_experiment,
    list_experiments,
    run_experiment,
)
from repro.experiments.runner import ExperimentRunner

# Importing the modules registers their experiments.
from repro.experiments import (  # noqa: F401  (registration side effects)
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fmm_study,
    greenup,
    table2,
    table3,
    table4,
)

__all__ = [
    "ExperimentResult",
    "ExperimentRunner",
    "get_experiment",
    "list_experiments",
    "run_experiment",
]

"""Fig. 1: the two-level machine abstraction — as validated claims.

The paper's Fig. 1 is the model's scope statement: a processing element
("xPU") with a fast memory of capacity ``Z`` over an infinite slow
memory "roughly captures everything from a single functional unit
attached to registers, to a manycore processor attached to a large
shared cache."  Its §II-A companion claims are quantitative:

* matmul intensity grows as ``O(sqrt(Z))`` — doubling fast memory buys
  at most ``sqrt(2)`` (Hong–Kung);
* array-reduction intensity is ``O(1)`` — independent of ``Z``.

We reproduce the figure as those claims, machine-checked at both ends
of the claimed scale range: a functional-unit/register instantiation
(Keckler's ~50 pJ FMA against a ~256-entry register file) and the
chip/LLC instantiation (the GTX 580 against its 768 KB L2).
"""

from __future__ import annotations

import math

from repro.core.algorithm import (
    matmul_max_intensity,
    matmul_profile,
    reduction_profile,
)
from repro.core.params import MachineModel
from repro.experiments.registry import ExperimentResult, experiment
from repro.machines.catalog import gtx580_double
from repro.units import picojoules

__all__ = ["run"]

_DIAGRAM = r"""
        +--------------+
        | slow memory  |  (infinite)
        +------+-------+
               | Q transfers
        +------v-------+
        | fast memory  |  (capacity Z)
        +------+-------+
               |
          +----v----+
          |   xPU   |  W operations
          +---------+
"""


@experiment("fig1", "Fig. 1 — the two-level model, scale-checked")
def run() -> ExperimentResult:
    """Check the model's scope claims at both ends of the scale range."""
    # Functional-unit scale: one FMA pipe against its register file.
    # Keckler-style costs: 25 pJ/flop; a register read ~1 pJ/B-class.
    fpu = MachineModel.from_peaks(
        "FMA-unit + registers",
        gflops=2.0,  # one FMA pipe at 1 GHz (2 flops/cycle)
        gbytes_per_s=24.0,  # 3 operands x 8 B per cycle
        eps_flop=picojoules(25.0),
        eps_mem=picojoules(1.5),
    )
    # Chip scale: the catalog GTX 580 (DRAM as slow memory, L2 as fast).
    chip = gtx580_double()

    # §II-A claim 1: matmul intensity is O(sqrt(Z)).
    z_small, z_big = 256 * 8, 768 * 1024  # 256 registers vs 768 KB L2
    ratios = []
    for z in (z_small, z_big):
        ratio = matmul_max_intensity(2 * z) / matmul_max_intensity(z)
        ratios.append(ratio)
    matmul_sqrt2 = max(abs(r - math.sqrt(2.0)) for r in ratios)

    # Also on concrete profiles at a fixed n.
    n = 2048
    profile_ratio = (
        matmul_profile(n, 2 * z_big).intensity / matmul_profile(n, z_big).intensity
    )

    # §II-A claim 2: reduction intensity is Z-independent (trivially: the
    # profile never references Z) and problem-size independent.
    red_small = reduction_profile(10_000).intensity
    red_large = reduction_profile(10_000_000).intensity

    lines = [
        "Fig. 1 — the two-level abstraction, instantiated at both scales",
        _DIAGRAM,
        f"{'scale':<26}{'B_tau':>8}{'B_eps':>8}",
        f"{fpu.name:<26}{fpu.b_tau:>8.2f}{fpu.b_eps:>8.2f}",
        f"{chip.name:<26}{chip.b_tau:>8.2f}{chip.b_eps:>8.2f}",
        "",
        "claim: matmul intensity = O(sqrt(Z))",
        f"  doubling Z multiplies the intensity bound by "
        f"{ratios[0]:.4f} (registers) / {ratios[1]:.4f} (LLC); sqrt(2) = {math.sqrt(2):.4f}",
        f"  concrete n={n} blocked profile: x{profile_ratio:.3f} per Z doubling",
        "",
        "claim: reduction intensity = O(1)",
        f"  I(n=1e4) = {red_small:.4f}, I(n=1e7) = {red_large:.4f} flop/B "
        "(no Z anywhere)",
    ]
    return ExperimentResult(
        experiment_id="fig1",
        title="Fig. 1 — the two-level model, scale-checked",
        text="\n".join(lines),
        values={
            "fpu_b_tau": fpu.b_tau,
            "chip_b_tau": chip.b_tau,
            "matmul_sqrt2_deviation": matmul_sqrt2,
            "matmul_profile_ratio": profile_ratio,
            "reduction_intensity_small": red_small,
            "reduction_intensity_large": red_large,
        },
    )

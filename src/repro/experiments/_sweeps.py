"""Shared sweep infrastructure for the measurement-driven experiments.

Figures 4 and 5 and Table IV all consume the same four intensity sweeps
(GPU/CPU × single/double).  This module runs them once per process and
memoises the results, keyed by the sweep configuration, so running
several experiments in one session does not repeat the (deterministic)
simulated measurement campaign.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.config import DEFAULT_SEED
from repro.core.params import MachineModel
from repro.machines.catalog import (
    gtx580_double,
    gtx580_single,
    i7_950_double,
    i7_950_single,
)
from repro.microbench.sweep import IntensitySweep, SweepResult
from repro.simulator.device import DeviceTruth, gtx580_truth, i7_950_truth
from repro.simulator.kernel import Precision

__all__ = ["PANELS", "panel_machine", "panel_truth", "run_panel", "panel_intensities"]

#: The four device-precision panels of Figs. 4 and 5, in paper order.
PANELS: tuple[tuple[str, str], ...] = (
    ("gpu", "double"),
    ("cpu", "double"),
    ("gpu", "single"),
    ("cpu", "single"),
)


def panel_truth(device: str) -> DeviceTruth:
    """Device ground truth for a panel key (``"gpu"`` or ``"cpu"``)."""
    return gtx580_truth() if device == "gpu" else i7_950_truth()


def panel_machine(device: str, precision: str) -> MachineModel:
    """The Table III+IV catalog machine for a panel."""
    table = {
        ("gpu", "single"): gtx580_single,
        ("gpu", "double"): gtx580_double,
        ("cpu", "single"): i7_950_single,
        ("cpu", "double"): i7_950_double,
    }
    return table[(device, precision)]()


def panel_intensities(precision: str, *, points_per_octave: int = 2) -> tuple[float, ...]:
    """The paper's intensity grids: 1/4..16 (double), 1/4..64 (single)."""
    hi = 4.0 if precision == "double" else 6.0  # log2 upper bound
    n = int((hi + 2.0) * points_per_octave) + 1
    return tuple(float(2.0 ** x) for x in np.linspace(-2.0, hi, n))


@lru_cache(maxsize=None)
def run_panel(
    device: str,
    precision: str,
    *,
    points_per_octave: int = 2,
    seed: int = DEFAULT_SEED,
) -> SweepResult:
    """Run (or fetch the memoised) sweep for one panel."""
    truth = panel_truth(device)
    sweep = IntensitySweep(
        truth,
        precision=Precision.DOUBLE if precision == "double" else Precision.SINGLE,
        seed=seed,
    )
    return sweep.run(list(panel_intensities(precision, points_per_octave=points_per_octave)))

"""Shared sweep infrastructure for the measurement-driven experiments.

Figures 4 and 5 and Table IV all consume the same four intensity sweeps
(GPU/CPU × single/double).  This module runs them once per process and
memoises the results, keyed by the sweep configuration, so running
several experiments in one session does not repeat the (deterministic)
simulated measurement campaign.

:func:`run_panels` additionally fans the panels out across worker
processes (``jobs > 1``) and seeds the in-process memo with the results,
so a parallel prewarm makes every subsequent :func:`run_panel` call a
dictionary lookup.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.config import DEFAULT_SEED
from repro.core.params import MachineModel
from repro.machines.catalog import (
    gtx580_double,
    gtx580_single,
    i7_950_double,
    i7_950_single,
)
from repro.microbench.sweep import IntensitySweep, SweepResult
from repro.simulator.device import DeviceTruth, gtx580_truth, i7_950_truth
from repro.simulator.kernel import Precision

__all__ = [
    "PANELS",
    "panel_machine",
    "panel_truth",
    "run_panel",
    "run_panels",
    "panel_intensities",
]

#: The four device-precision panels of Figs. 4 and 5, in paper order.
PANELS: tuple[tuple[str, str], ...] = (
    ("gpu", "double"),
    ("cpu", "double"),
    ("gpu", "single"),
    ("cpu", "single"),
)

#: Per-process memo of completed panel sweeps.  An explicit dict (rather
#: than ``lru_cache``) so :func:`run_panels` can seed it with results
#: computed in worker processes.
_PANEL_MEMO: dict[tuple[str, str, int, int], SweepResult] = {}


def panel_truth(device: str) -> DeviceTruth:
    """Device ground truth for a panel key (``"gpu"`` or ``"cpu"``)."""
    return gtx580_truth() if device == "gpu" else i7_950_truth()


def panel_machine(device: str, precision: str) -> MachineModel:
    """The Table III+IV catalog machine for a panel."""
    table = {
        ("gpu", "single"): gtx580_single,
        ("gpu", "double"): gtx580_double,
        ("cpu", "single"): i7_950_single,
        ("cpu", "double"): i7_950_double,
    }
    return table[(device, precision)]()


def panel_intensities(precision: str, *, points_per_octave: int = 2) -> tuple[float, ...]:
    """The paper's intensity grids: 1/4..16 (double), 1/4..64 (single)."""
    hi = 4.0 if precision == "double" else 6.0  # log2 upper bound
    n = int((hi + 2.0) * points_per_octave) + 1
    return tuple(float(2.0 ** x) for x in np.linspace(-2.0, hi, n))


def _compute_panel(
    device: str, precision: str, points_per_octave: int, seed: int
) -> SweepResult:
    truth = panel_truth(device)
    sweep = IntensitySweep(
        truth,
        precision=Precision.DOUBLE if precision == "double" else Precision.SINGLE,
        seed=seed,
    )
    return sweep.run(list(panel_intensities(precision, points_per_octave=points_per_octave)))


def _panel_task(
    args: tuple[str, str, int, int],
) -> tuple[tuple[str, str, int, int], SweepResult]:
    """Worker-process entry point: compute one panel, return it with its key."""
    device, precision, points_per_octave, seed = args
    return args, _compute_panel(device, precision, points_per_octave, seed)


def run_panel(
    device: str,
    precision: str,
    *,
    points_per_octave: int = 2,
    seed: int = DEFAULT_SEED,
) -> SweepResult:
    """Run (or fetch the memoised) sweep for one panel."""
    key = (device, precision, points_per_octave, seed)
    if key not in _PANEL_MEMO:
        _PANEL_MEMO[key] = _compute_panel(device, precision, points_per_octave, seed)
    return _PANEL_MEMO[key]


def run_panels(
    panels: tuple[tuple[str, str], ...] = PANELS,
    *,
    points_per_octave: int = 2,
    seed: int = DEFAULT_SEED,
    jobs: int = 1,
) -> dict[tuple[str, str], SweepResult]:
    """Run several panels, optionally across worker processes.

    With ``jobs > 1`` the not-yet-memoised panels run concurrently in a
    :class:`~concurrent.futures.ProcessPoolExecutor`; every result seeds
    the in-process memo, so later :func:`run_panel` calls are free.
    """
    keys = {
        (device, precision): (device, precision, points_per_octave, seed)
        for device, precision in panels
    }
    missing = [k for k in keys.values() if k not in _PANEL_MEMO]
    if missing and jobs > 1:
        workers = min(jobs, len(missing))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for key, result in pool.map(_panel_task, missing):
                _PANEL_MEMO[key] = result
    return {
        panel: run_panel(
            panel[0], panel[1], points_per_octave=points_per_octave, seed=seed
        )
        for panel in keys
    }

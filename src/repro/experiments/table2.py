"""Table II: sample model parameters for the Keckler-Fermi estimate.

The paper's Table II derives the model's cost coefficients from peak
capabilities of an NVIDIA Fermi GPU as characterised by Keckler et al.:
515 GFLOP/s double precision, 144 GB/s, 25 pJ/flop (half a 50 pJ FMA),
360 pJ/B — yielding ``τ_flop ≈ 1.9 ps``, ``τ_mem ≈ 6.9 ps/B``,
``Bτ ≈ 3.6`` and ``Bε = 14.4`` flops per byte.
"""

from __future__ import annotations

from repro.experiments.registry import ExperimentResult, experiment
from repro.machines.catalog import keckler_fermi
from repro.units import to_picojoules, to_picoseconds

__all__ = ["run"]


@experiment("table2", "Table II — Keckler-Fermi model parameters")
def run() -> ExperimentResult:
    """Derive every Table II row from the peak specifications."""
    m = keckler_fermi()
    tau_flop_ps = to_picoseconds(m.tau_flop)
    tau_mem_ps = to_picoseconds(m.tau_mem)
    rows = [
        ("tau_flop", f"(515 GFLOP/s)^-1 = {tau_flop_ps:.2f} ps per flop", "1.9 ps"),
        ("tau_mem", f"(144 GB/s)^-1 = {tau_mem_ps:.2f} ps per byte", "6.9 ps"),
        ("B_tau", f"{tau_mem_ps:.1f}/{tau_flop_ps:.1f} = {m.b_tau:.2f} flop/B", "3.6"),
        ("eps_flop", f"{to_picojoules(m.eps_flop):.0f} pJ per flop", "25 pJ"),
        ("eps_mem", f"{to_picojoules(m.eps_mem):.0f} pJ per byte", "360 pJ"),
        ("B_eps", f"360/25 = {m.b_eps:.2f} flop/B", "14.4"),
    ]
    width = max(len(r[1]) for r in rows)
    lines = ["Table II — representative values (NVIDIA Fermi, Keckler et al.)", ""]
    lines.append(f"{'variable':<10}{'derived':<{width + 2}}paper")
    for name, derived, paper in rows:
        lines.append(f"{name:<10}{derived:<{width + 2}}{paper}")
    return ExperimentResult(
        experiment_id="table2",
        title="Table II — Keckler-Fermi model parameters",
        text="\n".join(lines),
        values={
            "tau_flop_ps": tau_flop_ps,
            "tau_mem_ps": tau_mem_ps,
            "b_tau": m.b_tau,
            "b_eps": m.b_eps,
            "eps_flop_pj": to_picojoules(m.eps_flop),
            "eps_mem_pj": to_picojoules(m.eps_mem),
        },
    )

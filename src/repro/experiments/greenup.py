"""Eq. (10): the work–communication trade-off / greenup frontier (§VII).

For a memory-bound baseline on the GTX 580 (double precision), maps the
``(f, m)`` plane: for each communication-reduction factor ``m``, the
largest work inflation ``f`` that still improves energy — both the
paper's π0 = 0 closed form and the exact π0-aware threshold — plus the
hard ceiling ``1 + Bε/I`` and the speedup/greenup quadrant census.
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithm import AlgorithmProfile
from repro.core.tradeoff import TradeOutcome, TradeoffAnalyzer, greenup_work_ceiling
from repro.experiments.registry import ExperimentResult, experiment
from repro.machines.catalog import gtx580_double

__all__ = ["run"]


@experiment("greenup", "eq. (10) — greenup/speedup trade-off frontier")
def run(*, baseline_intensity: float = 0.5) -> ExperimentResult:
    """Map the trade-off frontier for a memory-bound baseline."""
    machine = gtx580_double().with_power_cap(None)
    baseline = AlgorithmProfile.from_intensity(
        baseline_intensity, work=1e12, name="baseline"
    )
    analyzer = TradeoffAnalyzer(machine, baseline)

    m_values = [1.0, 1.5, 2.0, 4.0, 8.0, 16.0, 64.0]
    lines = [
        f"machine: {machine.name} (B_tau={machine.b_tau:.2f}, "
        f"B_eps={machine.b_eps:.2f}, pi0={machine.pi0:.0f} W)",
        f"baseline: I = {baseline.intensity:g} flop/B (memory-bound)",
        "",
        f"{'m':>6}{'eq.(10) f* (pi0=0)':>22}{'exact f* (pi0>0)':>20}",
    ]
    frontier = analyzer.frontier(m_values)
    for m, closed, exact in frontier:
        lines.append(f"{m:>6.1f}{closed:>22.3f}{exact:>20.3f}")
    ceiling = greenup_work_ceiling(b_eps=machine.b_eps, intensity=baseline.intensity)
    lines.append("")
    lines.append(
        f"hard ceiling (m -> inf, pi0=0): f < 1 + B_eps/I = {ceiling:.3f}; "
        f"compute-bound baselines: f < 1 + B_eps/B_tau = "
        f"{1.0 + machine.balance_gap:.3f}"
    )

    # Quadrant census over a (f, m) lattice.
    f_grid = np.linspace(1.0, ceiling * 1.3, 14)
    m_grid = np.array([1.0, 2.0, 4.0, 8.0, 32.0])
    census = {outcome: 0 for outcome in TradeOutcome}
    for row in analyzer.outcome_grid(f_grid, m_grid):
        for point in row:
            census[point.outcome] += 1
    lines.append("")
    lines.append("quadrant census over the (f, m) lattice:")
    for outcome, count in census.items():
        lines.append(f"  {outcome.value:<28} {count}")

    values = {
        "ceiling": ceiling,
        "threshold_m2_closed": analyzer.greenup_threshold(2.0),
        "threshold_m2_exact": analyzer.exact_greenup_threshold(2.0),
        "threshold_m8_closed": analyzer.greenup_threshold(8.0),
        "threshold_m8_exact": analyzer.exact_greenup_threshold(8.0),
        "census_both": float(census[TradeOutcome.BOTH]),
        "census_neither": float(census[TradeOutcome.NEITHER]),
        "census_speedup_only": float(census[TradeOutcome.SPEEDUP_ONLY]),
        "census_greenup_only": float(census[TradeOutcome.GREENUP_ONLY]),
    }
    return ExperimentResult(
        experiment_id="greenup",
        title="eq. (10) — greenup/speedup trade-off frontier",
        text="\n".join(lines),
        values=values,
    )

"""Fig. 5: measured powerlines and the power-cap discrepancy.

Plots measured average power (normalized to flop-plus-constant power)
against the eq. (7) powerline for each panel.  The headline §V-B
observation: on the GTX 580 in single precision the uncapped model
demands ≈387 W at the balance point, far beyond what the card delivers —
measured power flattens and the roofline sags.  The capped model
(:class:`repro.core.powercap.CappedModel`) reconciles the two.
"""

from __future__ import annotations

import numpy as np

from repro.core.power_model import PowerModel
from repro.core.powercap import CappedModel
from repro.core.rooflines import capped_powerline_series, powerline_series
from repro.experiments.registry import ExperimentResult, experiment
from repro.experiments._sweeps import PANELS, panel_machine, run_panel, run_panels
from repro.viz.ascii_chart import render_chart
from repro.viz.series import ScatterSeries

__all__ = ["run"]


@experiment("fig5", "Fig. 5 — measured power vs the powerline model")
def run(*, points_per_octave: int = 2, jobs: int = 1) -> ExperimentResult:
    """Regenerate all four power panels plus the cap analysis.

    ``jobs > 1`` runs the four panel sweeps across worker processes.
    """
    run_panels(PANELS, points_per_octave=points_per_octave, jobs=jobs)
    sections: list[str] = []
    values: dict[str, float] = {}
    for device, precision in PANELS:
        sweep = run_panel(device, precision, points_per_octave=points_per_octave)
        machine = panel_machine(device, precision)
        pm = PowerModel(machine)
        intensities = sweep.intensities_array()
        lo, hi = float(intensities.min()) / 1.2, float(intensities.max()) * 1.2

        measured = ScatterSeries(
            label="measured power (W)",
            intensities=intensities,
            values=sweep.average_power_array(),
        )
        model = powerline_series(machine, lo=lo, hi=hi, normalized=False)
        series = [model]
        if machine.power_cap is not None:
            series.append(capped_powerline_series(machine, lo=lo, hi=hi))
        chart = render_chart(
            series,
            [measured],
            markers={"B_tau": machine.b_tau},
            title=f"Fig. 5 power — {machine.name}",
            height=14,
        )
        sections.append(chart)

        key = f"{device}_{precision}"
        peak_demand = pm.max_power
        max_measured = float(measured.values.max())
        values[f"{key}_model_peak_watts"] = peak_demand
        values[f"{key}_max_measured_watts"] = max_measured
        if machine.power_cap is not None:
            analysis = CappedModel(machine).analyze()
            values[f"{key}_cap_watts"] = machine.power_cap
            values[f"{key}_cap_binds"] = 1.0 if analysis.binds else 0.0
            values[f"{key}_worst_slowdown"] = analysis.worst_slowdown
            sections.append(
                f"{machine.name}: uncapped model peaks at {peak_demand:.0f} W "
                f"(paper: ~387 W for GPU single) against a {machine.power_cap:.0f} W "
                f"rating; measured tops out at {max_measured:.0f} W"
                + (
                    f"; cap binds over I in ({analysis.interval[0]:.2f}, "
                    f"{analysis.interval[1]:.2f}), worst slowdown "
                    f"{analysis.worst_slowdown:.2f}x"
                    if analysis.binds
                    else "; cap never binds"
                )
            )
        else:
            sections.append(
                f"{machine.name}: model peaks at {peak_demand:.0f} W; "
                f"measured tops out at {max_measured:.0f} W (no cap on this rig)"
            )
    return ExperimentResult(
        experiment_id="fig5",
        title="Fig. 5 — measured power vs the powerline model",
        text="\n\n".join(sections),
        values=values,
    )

"""§V-C: the FMM U-list energy study.

Builds a real octree over a uniform point cloud, constructs U-lists,
runs all 390 implementation variants through the simulated GTX 580 under
the measurement session, and executes the paper's estimation workflow:
naive eq. (2) estimates (≈33% low), the 187 pJ/B-class cache-energy fit
on the reference implementation, and cache-corrected estimates for the
~160 L1/L2-only variants (median error ≈4%).
"""

from __future__ import annotations

from repro.experiments.registry import ExperimentResult, experiment
from repro.fmm.estimator import FmmEnergyStudy
from repro.fmm.points import uniform_cloud
from repro.fmm.tree import Octree
from repro.fmm.ulist import build_ulist
from repro.fmm.variants import generate_variants
from repro.units import to_picojoules

__all__ = ["run"]


@experiment("fmm", "§V-C — FMM U-list cache-energy study")
def run(
    *,
    n_points: int = 4000,
    leaf_capacity: int = 64,
    seed: int = 3,
    max_variants: int | None = None,
    jobs: int = 1,
) -> ExperimentResult:
    """Run the study; ``max_variants`` trims the space for quick checks.

    ``jobs > 1`` fans the variant measurements across worker processes
    (results are identical for any job count — measurements are seeded
    per variant).
    """
    positions, densities = uniform_cloud(n_points, seed=seed)
    tree = Octree.build(positions, densities, leaf_capacity=leaf_capacity)
    tree.validate()
    ulist = build_ulist(tree)
    variants = generate_variants()
    if max_variants is not None:
        # Keep the reference variant in the trimmed set: it anchors the fit.
        from repro.fmm.variants import reference_variant

        trimmed = variants[:max_variants]
        if reference_variant() not in trimmed:
            trimmed.append(reference_variant())
        variants = trimmed

    study = FmmEnergyStudy(tree, ulist)
    result = study.run(variants, jobs=jobs)

    mean_ulist = sum(len(u) for u in ulist) / len(ulist)
    text = "\n".join(
        [
            f"geometry: n={tree.n_points} points, {tree.n_leaves} leaves "
            f"(capacity {leaf_capacity}), mean |U(B)| = {mean_ulist:.1f}",
            "",
            result.describe(),
            "",
            "paper targets: naive estimates ~33% low on average; fitted cache "
            "cost 187 pJ/B; corrected median error 4.1% on ~160 L1/L2-only kernels.",
        ]
    )
    return ExperimentResult(
        experiment_id="fmm",
        title="§V-C — FMM U-list cache-energy study",
        text=text,
        values={
            "n_variants": float(len(result.observations)),
            "n_l1l2_variants": float(len(result.l1l2_observations)),
            "naive_mean_signed_error": result.naive_summary.mean_signed,
            "eps_cache_fit_pj": to_picojoules(result.eps_cache_fit),
            "corrected_median_error": result.corrected_summary.median_abs,
            "corrected_p90_error": result.corrected_summary.p90_abs,
        },
    )

"""Table IV: regression-fitted energy coefficients.

Pools the single- and double-precision sweeps per device and fits the
eq. (9) model

    ``E/W = ε_s + ε_mem·(Q/W) + π0·(T/W) + Δε_d·R``

The fitted coefficients are compared against the simulator's hidden
ground truth — the measurement-and-fitting pipeline must *recover* what
the paper's Table IV reports (99.7 / 212 pJ per flop, 513 pJ/B and 122 W
on the GTX 580; 371 / 670 pJ, 795 pJ/B, 122 W on the i7-950), with the
paper's footnote-8 fit quality (R² near 1, p-values ≪ 1e-14).
"""

from __future__ import annotations

from repro.core.fitting import FittedCoefficients, fit_energy_coefficients
from repro.experiments.registry import ExperimentResult, experiment
from repro.units import to_picojoules
from repro.experiments._sweeps import PANELS, panel_truth, run_panel, run_panels

__all__ = ["run"]


def _fit_device(device: str, points_per_octave: int) -> FittedCoefficients:
    samples = []
    for precision in ("single", "double"):
        sweep = run_panel(device, precision, points_per_octave=points_per_octave)
        samples.extend(sweep.energy_samples())
    return fit_energy_coefficients(samples)


@experiment("table4", "Table IV — fitted energy coefficients")
def run(*, points_per_octave: int = 2, jobs: int = 1) -> ExperimentResult:
    """Fit both devices and report fitted-vs-truth in Table IV layout.

    ``jobs > 1`` runs the four panel sweeps across worker processes.
    """
    run_panels(PANELS, points_per_octave=points_per_octave, jobs=jobs)
    lines = [
        "Table IV — fitted energy coefficients (vs hidden simulator truth)",
        "",
        f"{'platform':<26}{'eps_s':>10}{'eps_d':>10}{'eps_mem':>10}{'pi0':>8}{'R^2':>12}",
    ]
    values: dict[str, float] = {}
    for device, label in (("gpu", "NVIDIA GTX 580"), ("cpu", "Intel Core i7-950")):
        fit = _fit_device(device, points_per_octave)
        truth = panel_truth(device)
        assert fit.eps_double is not None  # mixed-precision fit
        lines.append(
            f"{label:<26}{to_picojoules(fit.eps_single):>8.1f}pJ{to_picojoules(fit.eps_double):>8.1f}pJ"
            f"{to_picojoules(fit.eps_mem):>8.1f}pJ{fit.pi0:>7.1f}W"
            f"{fit.regression.r_squared:>12.6f}"
        )
        lines.append(
            f"{'  (truth)':<26}{to_picojoules(truth.eps_single):>8.1f}pJ"
            f"{to_picojoules(truth.eps_double):>8.1f}pJ{to_picojoules(truth.eps_mem):>8.1f}pJ"
            f"{truth.pi0:>7.1f}W"
        )
        values[f"{device}_eps_single_pj"] = to_picojoules(fit.eps_single)
        values[f"{device}_eps_double_pj"] = to_picojoules(fit.eps_double)
        values[f"{device}_eps_mem_pj"] = to_picojoules(fit.eps_mem)
        values[f"{device}_pi0"] = fit.pi0
        values[f"{device}_r_squared"] = fit.regression.r_squared
        values[f"{device}_max_p_value"] = float(max(fit.regression.p_values))
        values[f"{device}_eps_single_err"] = (
            fit.eps_single / truth.eps_single - 1.0
        )
        values[f"{device}_eps_mem_err"] = fit.eps_mem / truth.eps_mem - 1.0
        values[f"{device}_pi0_err"] = fit.pi0 / truth.pi0 - 1.0
    lines.append("")
    lines.append(
        "pi0 fits identically (to the digit) on both platforms, as the paper "
        "remarks — both rigs share the same constant-power ground truth."
    )
    return ExperimentResult(
        experiment_id="table4",
        title="Table IV — fitted energy coefficients",
        text="\n".join(lines),
        values=values,
    )

"""Fig. 2: rooflines versus arch lines, and the powerline.

Fig. 2a plots the normalized time roofline against the energy arch line
for the Keckler-Fermi parameters (π0 = 0): the roofline kinks sharply at
``Bτ = 3.6`` while the arch line crosses half-efficiency smoothly at
``Bε = 14.4``.  Fig. 2b plots average power relative to flop power, with
its three landmarks: 1 (compute-bound limit), ``Bε/Bτ = 4.0``
(memory-bound limit), and ``1 + Bε/Bτ = 5.0`` (maximum, at ``I = Bτ``).
"""

from __future__ import annotations

from repro.core.power_model import PowerModel
from repro.core.rooflines import (
    powerline_series,
    roofline_vs_archline,
    vertical_markers,
)
from repro.experiments.registry import ExperimentResult, experiment
from repro.machines.catalog import keckler_fermi
from repro.viz.ascii_chart import render_chart

__all__ = ["run"]


@experiment("fig2", "Fig. 2 — rooflines, arch lines, and power lines")
def run() -> ExperimentResult:
    """Regenerate both panels for the Table II machine."""
    machine = keckler_fermi()
    roof, arch = roofline_vs_archline(machine, lo=0.5, hi=512.0)
    markers = vertical_markers(machine)
    chart_a = render_chart(
        [roof, arch],
        markers={"B_tau": markers["B_tau"], "B_eps": markers["B_eps (const=0)"]},
        title="Fig. 2a — roofline (time) vs arch line (energy), normalized",
    )

    power = powerline_series(machine, lo=0.5, hi=512.0, normalized=True)
    chart_b = render_chart(
        [power],
        markers={"B_tau": machine.b_tau, "B_eps": machine.b_eps},
        title="Fig. 2b — powerline (average power / flop power)",
    )

    pm = PowerModel(machine)
    pi_flop = machine.pi_flop
    landmarks = {
        "compute_limit_rel": pm.compute_bound_limit / pi_flop,
        "memory_limit_rel": pm.memory_bound_limit / pi_flop,
        "max_power_rel": pm.max_power / pi_flop,
        "argmax_intensity": pm.argmax_intensity,
        "arch_half_point": machine.effective_balance_crossing,
        "roofline_kink": machine.b_tau,
    }
    text = "\n\n".join(
        [
            chart_a,
            chart_b,
            "powerline landmarks (× flop power): "
            f"compute-bound {landmarks['compute_limit_rel']:.2f} (paper 1.0), "
            f"memory-bound {landmarks['memory_limit_rel']:.2f} (paper 4.0), "
            f"max {landmarks['max_power_rel']:.2f} at I = "
            f"{landmarks['argmax_intensity']:.2f} (paper 5.0 at 3.6)",
        ]
    )
    return ExperimentResult(
        experiment_id="fig2",
        title="Fig. 2 — rooflines, arch lines, and power lines",
        text=text,
        values=landmarks,
    )

"""Fig. 3: placement of the measurement probes — as a validated wiring.

The paper's Fig. 3 is a diagram: PowerMon 2 inline between the ATX PSU
and the system's devices, with the PCIe interposer between GPU and
motherboard slot.  Our reproduction of a *diagram* is the corresponding
**configuration plus its invariants**, machine-checked:

* both rigs' rail sets match the §IV-A description (channel identities
  and counts);
* the sampling protocol (4 channels × 128 Hz per rig) fits PowerMon 2's
  limits (≤8 channels, ≤1024 Hz/channel, ≤3072 Hz aggregate);
* power is conserved across the rail split at representative loads;
* the interposer is *necessary*: the fraction of GPU energy flowing
  through the slot — invisible without it — is quantified;
* slot draw never exceeds the PCIe budget.

The rendered output includes an ASCII rendition of the diagram itself.
"""

from __future__ import annotations

import numpy as np

from repro.config import PAPER_SAMPLE_HZ
from repro.experiments.registry import ExperimentResult, experiment
from repro.powermon.channels import atx_cpu_rails, gpu_rails
from repro.powermon.device import PowerMon2
from repro.powermon.interposer import PCIeInterposer

__all__ = ["run"]

_DIAGRAM = r"""
        +----------------+
        |    ATX PSU     |
        +--------+-------+
                 | (all DC rails)
        +--------v-------+       input
        |   PowerMon 2   |<------------ 8x V/I channels, <=1024 Hz each
        +--+----------+--+       output
           |          |
  20-pin / 4-pin    8-pin / 6-pin
           |          |
 +---------v--+    +--v-----------+
 | Motherboard|    |     GPU      |
 |    CPU     |    +--^-----------+
 +---------+--+       | slot 12V / 3.3V
           |   +------+-------+
           +-->| PCIe         |
               | interposer   |
               +--------------+
"""


@experiment("fig3", "Fig. 3 — measurement-probe placement, validated")
def run() -> ExperimentResult:
    """Validate the measurement wiring and quantify the interposer's role."""
    monitor = PowerMon2()
    cpu_rig = atx_cpu_rails()
    gpu_rig = gpu_rails()

    # Protocol legality on both rigs (raises if violated).
    monitor.validate_rates(len(cpu_rig), PAPER_SAMPLE_HZ)
    monitor.validate_rates(len(gpu_rig), PAPER_SAMPLE_HZ)

    # Conservation at representative loads.
    loads = np.array([50.0, 130.0, 250.0, 350.0])
    cpu_conservation = float(
        np.max(np.abs(sum(cpu_rig.split_power(loads)) - loads))
    )
    gpu_conservation = float(
        np.max(np.abs(sum(gpu_rig.split_power(loads)) - loads))
    )

    interposer = PCIeInterposer(gpu_rig)
    undercount = interposer.undercount_fraction(np.full(100, 250.0))
    within_spec = interposer.slot_within_spec(np.linspace(0.0, 400.0, 200))

    lines = [
        "Fig. 3 — probe placement (§IV-A), validated configuration",
        _DIAGRAM,
        f"CPU rig channels ({len(cpu_rig)}): "
        + ", ".join(c.name for c in cpu_rig.channels),
        f"GPU rig channels ({len(gpu_rig)}): "
        + ", ".join(c.name for c in gpu_rig.channels),
        "",
        f"protocol: {PAPER_SAMPLE_HZ:.0f} Hz x {len(gpu_rig)} channels = "
        f"{PAPER_SAMPLE_HZ * len(gpu_rig):.0f} Hz aggregate "
        f"(limits: {monitor.MAX_CHANNEL_HZ:.0f}/ch, {monitor.MAX_AGGREGATE_HZ:.0f} total) -- OK",
        f"rail-split conservation error: CPU {cpu_conservation:.2e} W, "
        f"GPU {gpu_conservation:.2e} W",
        f"slot-delivered fraction of GPU power at 250 W: {undercount:.1%} "
        "(invisible without the interposer)",
        f"slot draw within PCIe budget at all loads to 400 W: {within_spec}",
    ]
    return ExperimentResult(
        experiment_id="fig3",
        title="Fig. 3 — measurement-probe placement, validated",
        text="\n".join(lines),
        values={
            "cpu_channels": float(len(cpu_rig)),
            "gpu_channels": float(len(gpu_rig)),
            "aggregate_hz": PAPER_SAMPLE_HZ * len(gpu_rig),
            "cpu_conservation_error": cpu_conservation,
            "gpu_conservation_error": gpu_conservation,
            "interposer_undercount": undercount,
            "slot_within_spec": float(within_spec),
        },
    )

"""Parallel, cached execution of registry experiments.

The reproduction's experiments are deterministic functions of (a) the
machine catalog's cost coefficients, (b) the sweep configuration passed
as keyword arguments, and (c) the global measurement seed.  That makes
their results *content-addressable*: hash those inputs and any previous
run with the same hash can be replayed from disk instead of recomputed.

:class:`ExperimentRunner` adds two production conveniences on top of the
registry:

* **Parallelism** — ``jobs > 1`` fans independent experiments out across
  a :class:`~concurrent.futures.ProcessPoolExecutor`, and passes the job
  count down to experiments whose signature accepts ``jobs`` (the
  sweep-based ones parallelise their four device-precision panels).
* **On-disk result cache** — ``cache_dir`` stores each
  :class:`~repro.experiments.registry.ExperimentResult` as JSON under
  its content hash; cache hits skip the measurement campaign entirely.

The CLI exposes both via ``experiment run ID... --jobs N --cache-dir D``.
"""

from __future__ import annotations

import inspect
import json
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro import __version__
from repro._canon import content_hash
from repro.config import DEFAULT_SEED
from repro.exceptions import ExperimentError
from repro.experiments.registry import (
    ExperimentResult,
    get_experiment,
    run_experiment,
)

__all__ = ["ExperimentRunner", "cache_key"]


def _machine_fingerprint() -> dict[str, dict[str, Any]]:
    """Raw cost coefficients of every catalog machine, by key."""
    from repro.machines.catalog import get_machine, list_machines

    fingerprint: dict[str, dict[str, Any]] = {}
    for key, _title in list_machines():
        m = get_machine(key)
        fingerprint[key] = {
            "tau_flop": m.tau_flop,
            "tau_mem": m.tau_mem,
            "eps_flop": m.eps_flop,
            "eps_mem": m.eps_mem,
            "pi0": m.pi0,
            "power_cap": m.power_cap,
        }
    return fingerprint


def cache_key(experiment_id: str, kwargs: dict[str, Any] | None = None) -> str:
    """Content hash of one experiment invocation.

    Keyed by experiment id, its keyword arguments (the sweep
    configuration), the machine catalog's cost coefficients, the global
    measurement seed, and the package version — everything a result is a
    deterministic function of.  ``jobs`` is excluded: parallelism changes
    wall time, never values.
    """
    relevant = {k: v for k, v in (kwargs or {}).items() if k != "jobs"}
    payload = {
        "experiment": experiment_id,
        "kwargs": relevant,
        "machines": _machine_fingerprint(),
        "seed": DEFAULT_SEED,
        "version": __version__,
    }
    return content_hash(payload)


def _run_task(item: tuple[str, dict[str, Any]]) -> ExperimentResult:
    """Worker-process entry point: run one experiment from its spec."""
    experiment_id, kwargs = item
    return run_experiment(experiment_id, **kwargs)


def _accepts_jobs(experiment_id: str) -> bool:
    params = inspect.signature(get_experiment(experiment_id)).parameters
    return "jobs" in params


def _supported_kwargs(
    experiment_id: str, kwargs: dict[str, Any]
) -> dict[str, Any]:
    """Restrict kwargs to the parameters an experiment's signature accepts.

    Lets callers broadcast options to a batch of experiments (e.g. the
    CLI's ``--max-variants``) without every experiment having to declare
    them: an option is forwarded only where the signature names it.
    Filtering happens *before* cache keying, so an inapplicable option
    never fragments an experiment's cache entries.
    """
    params = inspect.signature(get_experiment(experiment_id)).parameters
    if any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    ):
        return dict(kwargs)
    return {k: v for k, v in kwargs.items() if k in params}


class ExperimentRunner:
    """Execute registry experiments with optional parallelism and caching.

    Parameters
    ----------
    jobs:
        Worker-process budget.  ``1`` (default) runs everything in this
        process; higher values parallelise across experiments in
        :meth:`run_many` and across sweep panels inside a single
        ``jobs``-aware experiment in :meth:`run`.
    cache_dir:
        Directory for the content-addressed result cache; created on
        first use.  ``None`` disables caching.
    """

    def __init__(self, *, jobs: int = 1, cache_dir: str | Path | None = None):
        if jobs < 1:
            raise ExperimentError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if (
            self.cache_dir is not None
            and self.cache_dir.exists()
            and not self.cache_dir.is_dir()
        ):
            raise ExperimentError(
                f"cache dir {self.cache_dir} exists and is not a directory"
            )

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------

    def _cache_path(self, key: str) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{key}.json"

    def cache_lookup(self, experiment_id: str, kwargs: dict[str, Any]) -> ExperimentResult | None:
        """Return the cached result for an invocation, if present."""
        path = self._cache_path(cache_key(experiment_id, kwargs))
        if path is None or not path.is_file():
            return None
        try:
            payload = json.loads(path.read_text())
            return ExperimentResult(
                experiment_id=payload["experiment_id"],
                title=payload["title"],
                text=payload["text"],
                values={k: float(v) for k, v in payload["values"].items()},
            )
        except (KeyError, ValueError, json.JSONDecodeError):
            # A corrupt entry is a cache miss, not an error.
            return None

    def cache_store(self, result: ExperimentResult, kwargs: dict[str, Any]) -> None:
        """Persist a result under its content hash (atomic write)."""
        path = self._cache_path(cache_key(result.experiment_id, kwargs))
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "experiment_id": result.experiment_id,
            "title": result.title,
            "text": result.text,
            "values": result.values,
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, experiment_id: str, **kwargs: Any) -> ExperimentResult:
        """Run one experiment, consulting the cache first.

        When the experiment's signature accepts ``jobs``, the runner's
        budget is forwarded so its internal sweeps parallelise.  Keyword
        arguments the experiment does not declare are dropped (see
        :func:`_supported_kwargs`).
        """
        kwargs = _supported_kwargs(experiment_id, kwargs)
        cached = self.cache_lookup(experiment_id, kwargs)
        if cached is not None:
            return cached
        call_kwargs = dict(kwargs)
        if self.jobs > 1 and _accepts_jobs(experiment_id):
            call_kwargs.setdefault("jobs", self.jobs)
        result = run_experiment(experiment_id, **call_kwargs)
        self.cache_store(result, kwargs)
        return result

    def run_many(
        self,
        experiment_ids: Sequence[str] | Iterable[str],
        **kwargs: Any,
    ) -> list[ExperimentResult]:
        """Run several experiments, in registry-id input order.

        Cache hits resolve immediately; misses execute across the worker
        pool when ``jobs > 1``, each worker re-validating its experiment
        id before anything is spawned.
        """
        ids = list(experiment_ids)
        for experiment_id in ids:
            get_experiment(experiment_id)  # fail fast on unknown ids

        results: dict[int, ExperimentResult] = {}
        misses: list[tuple[int, str, dict[str, Any]]] = []
        for index, experiment_id in enumerate(ids):
            supported = _supported_kwargs(experiment_id, kwargs)
            cached = self.cache_lookup(experiment_id, supported)
            if cached is not None:
                results[index] = cached
            else:
                misses.append((index, experiment_id, supported))

        if len(misses) == 1:
            # A single miss gains nothing from a one-worker pool; run it
            # inline so a jobs-aware experiment can parallelise its panels.
            index, experiment_id, supported = misses[0]
            results[index] = self.run(experiment_id, **supported)
        elif misses and self.jobs > 1:
            specs = [
                (experiment_id, supported)
                for _, experiment_id, supported in misses
            ]
            workers = min(self.jobs, len(misses))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                for (index, _, supported), result in zip(
                    misses, pool.map(_run_task, specs)
                ):
                    results[index] = result
                    self.cache_store(result, supported)
        else:
            for index, experiment_id, supported in misses:
                results[index] = self.run(experiment_id, **supported)

        return [results[i] for i in range(len(ids))]

"""One-screen digest: every artefact's paper-vs-measured headline.

:func:`build_summary` runs the full experiment registry (at a reduced
sweep density suitable for an interactive command) and renders the
EXPERIMENTS.md-style comparison table — the quickest way to confirm the
whole reproduction holds on a given installation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import text_table
from repro.experiments.registry import run_experiment

__all__ = ["SummaryRow", "build_rows", "build_summary"]


@dataclass(frozen=True, slots=True)
class SummaryRow:
    """One headline comparison."""

    artefact: str
    quantity: str
    paper: str
    measured: str


def build_rows(*, fast: bool = True) -> list[SummaryRow]:
    """Run every experiment and extract the headline comparisons.

    ``fast=True`` reduces sweep density and FMM size; the asserted
    quantities are the same either way.
    """
    sweep_kwargs = {"points_per_octave": 1} if fast else {}
    fmm_kwargs = (
        {"n_points": 2000, "leaf_capacity": 48} if fast else {}
    )

    table2 = run_experiment("table2")
    fig1 = run_experiment("fig1")
    fig2 = run_experiment("fig2")
    fig3 = run_experiment("fig3")
    fig4 = run_experiment("fig4", **sweep_kwargs)
    table4 = run_experiment("table4", **sweep_kwargs)
    fig5 = run_experiment("fig5", **sweep_kwargs)
    fmm = run_experiment("fmm", **fmm_kwargs)
    greenup = run_experiment("greenup")

    rows = [
        SummaryRow("Table II", "B_tau / B_eps (flop/B)", "3.6 / 14.4",
                   f"{table2.value('b_tau'):.2f} / {table2.value('b_eps'):.1f}"),
        SummaryRow("Fig. 1", "matmul intensity gain per Z doubling", "sqrt(2)",
                   f"{1.4142 - fig1.value('matmul_sqrt2_deviation'):.4f}"),
        SummaryRow("Fig. 2b", "power landmarks (x pi_flop)", "1.0 / 4.0 / 5.0",
                   f"{fig2.value('compute_limit_rel'):.2f} / "
                   f"{fig2.value('memory_limit_rel'):.2f} / "
                   f"{fig2.value('max_power_rel'):.2f}"),
        SummaryRow("Fig. 3", "slot share invisible w/o interposer", "(diagram)",
                   f"{fig3.value('interposer_undercount'):.1%} at 250 W"),
        SummaryRow("Fig. 4", "GPU dbl peak GFLOP/s (fraction)", "196 (99.3%)",
                   f"{fig4.value('gpu_double_max_gflops'):.0f} "
                   f"({fig4.value('gpu_double_flop_fraction'):.1%})"),
        SummaryRow("Fig. 4", "CPU sgl bandwidth GB/s (fraction)", "18.7 (73.1%)",
                   f"{fig4.value('cpu_single_max_bandwidth'):.1f} "
                   f"({fig4.value('cpu_single_bandwidth_fraction'):.1%})"),
        SummaryRow("Fig. 4b", "GPU sgl roofline sag near B_tau", "visible departure",
                   f"{fig4.value('gpu_single_time_roofline_max_sag'):.0%} max"),
        SummaryRow("Table IV", "GTX 580 eps_s/eps_d/eps_mem (pJ), pi0 (W)",
                   "99.7 / 212 / 513, 122",
                   f"{table4.value('gpu_eps_single_pj'):.1f} / "
                   f"{table4.value('gpu_eps_double_pj'):.1f} / "
                   f"{table4.value('gpu_eps_mem_pj'):.1f}, "
                   f"{table4.value('gpu_pi0'):.1f}"),
        SummaryRow("Table IV", "i7-950 eps_s/eps_d/eps_mem (pJ), pi0 (W)",
                   "371 / 670 / 795, 122",
                   f"{table4.value('cpu_eps_single_pj'):.1f} / "
                   f"{table4.value('cpu_eps_double_pj'):.1f} / "
                   f"{table4.value('cpu_eps_mem_pj'):.1f}, "
                   f"{table4.value('cpu_pi0'):.1f}"),
        SummaryRow("Fig. 5b", "GPU sgl model peak vs rating (W)", "~387 vs 244",
                   f"{fig5.value('gpu_single_model_peak_watts'):.0f} vs "
                   f"{fig5.value('gpu_single_cap_watts'):.0f}"),
        SummaryRow("SecV-C", "naive estimate bias", "-33% mean",
                   f"{fmm.value('naive_mean_signed_error'):+.1%}"),
        SummaryRow("SecV-C", "fitted cache energy (pJ/B)", "187",
                   f"{fmm.value('eps_cache_fit_pj'):.0f}"),
        SummaryRow("SecV-C", "corrected median error", "4.1%",
                   f"{fmm.value('corrected_median_error'):.1%}"),
        SummaryRow("eq. 10", "greenup ceiling, I=0.5 GPU dbl", "1 + B_eps/I",
                   f"{greenup.value('ceiling'):.2f}"),
    ]
    return rows


def build_summary(*, fast: bool = True) -> str:
    """The rendered paper-vs-measured digest."""
    rows = build_rows(fast=fast)
    table = text_table(
        ["artefact", "quantity", "paper", "this repo"],
        [[r.artefact, r.quantity, r.paper, r.measured] for r in rows],
    )
    return (
        "A Roofline Model of Energy (IPDPS 2013) -- reproduction digest\n\n"
        + table
    )

"""Table III: the experimental platforms' spec sheet.

Renders the platform table and derives the per-precision time-balance
points the later figures annotate.
"""

from __future__ import annotations

from repro.experiments.registry import ExperimentResult, experiment
from repro.machines.specs import PLATFORM_TABLE

__all__ = ["run"]


@experiment("table3", "Table III — experimental platforms")
def run() -> ExperimentResult:
    """Render Table III plus the derived balance points."""
    lines = [
        "Table III — platforms",
        "",
        f"{'dev':<5}{'model':<26}{'GFLOP/s sp (dp)':>18}{'GB/s':>8}{'TDP W':>7}",
    ]
    values: dict[str, float] = {}
    for spec in PLATFORM_TABLE:
        lines.append(spec.table_row())
        key = "cpu" if spec.device == "CPU" else "gpu"
        values[f"{key}_peak_sp_gflops"] = spec.peak_sp_gflops
        values[f"{key}_peak_dp_gflops"] = spec.peak_dp_gflops
        values[f"{key}_bandwidth_gbytes"] = spec.bandwidth_gbytes
        values[f"{key}_tdp_watts"] = spec.tdp_watts
        values[f"{key}_b_tau_single"] = spec.b_tau(double_precision=False)
        values[f"{key}_b_tau_double"] = spec.b_tau(double_precision=True)
    lines.append("")
    lines.append("derived time-balance points (flop/B):")
    for spec in PLATFORM_TABLE:
        lines.append(
            f"  {spec.model}: single {spec.b_tau(double_precision=False):.2f}, "
            f"double {spec.b_tau(double_precision=True):.2f}"
        )
    return ExperimentResult(
        experiment_id="table3",
        title="Table III — experimental platforms",
        text="\n".join(lines),
        values=values,
    )

"""Experiment registration and execution.

An experiment is a function ``(**kwargs) -> ExperimentResult`` declared
with the :func:`experiment` decorator.  The registry gives the CLI, the
benchmark harness, and EXPERIMENTS.md a single source of truth for what
can be reproduced and what each run produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exceptions import ExperimentError

__all__ = [
    "ExperimentResult",
    "experiment",
    "get_experiment",
    "list_experiments",
    "run_experiment",
]


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of one experiment run.

    Attributes
    ----------
    experiment_id:
        Registry key, e.g. ``"fig4"``.
    title:
        Human-readable title including the paper reference.
    text:
        The rendered report — tables and ASCII charts.
    values:
        Headline numbers keyed by stable names; tests assert on these
        and EXPERIMENTS.md quotes them.
    """

    experiment_id: str
    title: str
    text: str
    values: dict[str, float] = field(default_factory=dict)

    def value(self, key: str) -> float:
        """Look up a headline number; raises with the available keys."""
        try:
            return self.values[key]
        except KeyError:
            raise ExperimentError(
                f"experiment {self.experiment_id!r} has no value {key!r}; "
                f"available: {sorted(self.values)}"
            ) from None


@dataclass(frozen=True)
class _Registered:
    experiment_id: str
    title: str
    func: Callable[..., ExperimentResult]


_REGISTRY: dict[str, _Registered] = {}


def experiment(experiment_id: str, title: str):
    """Decorator registering an experiment function under an id."""

    def decorate(func: Callable[..., ExperimentResult]):
        if experiment_id in _REGISTRY:
            raise ExperimentError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = _Registered(experiment_id, title, func)
        return func

    return decorate


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """The experiment function for an id."""
    try:
        return _REGISTRY[experiment_id].func
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {', '.join(sorted(_REGISTRY))}"
        ) from None


def list_experiments() -> list[tuple[str, str]]:
    """(id, title) pairs for every registered experiment."""
    return [(r.experiment_id, r.title) for r in sorted(_REGISTRY.values(), key=lambda r: r.experiment_id)]


def run_experiment(experiment_id: str, **kwargs: Any) -> ExperimentResult:
    """Run an experiment by id with optional keyword overrides."""
    return get_experiment(experiment_id)(**kwargs)

"""Fig. 4: measured time and energy versus the model, four panels.

For each device (GTX 580, i7-950) and precision, the intensity
microbenchmark sweep produces measured (time, energy) points that are
normalized and overlaid on the model curves:

* **time panels** — achieved GFLOP/s over the spec-sheet peak against the
  roofline ``min(1, I/Bτ)``;
* **energy panels** — achieved GFLOP/J over the flops-only peak
  ``1/ε̂_flop`` against the arch line ``1/(1 + B̂ε(I)/I)``, with the
  "const=0" energy-balance and effective energy-balance markers.

Headline checks mirrored from the paper: achieved fractions of peak
(88.3% bandwidth / 99.3% flops on the GPU in double precision, 73%/93%
on the CPU), and the GPU single-precision departure from the roofline
near ``Bτ`` that the power cap explains (§V-B).
"""

from __future__ import annotations

import numpy as np

from repro.core.energy_model import EnergyModel
from repro.core.rooflines import archline_series, roofline_series
from repro.core.time_model import TimeModel
from repro.experiments.registry import ExperimentResult, experiment
from repro.experiments._sweeps import PANELS, panel_machine, run_panel, run_panels
from repro.microbench.sweep import SweepResult
from repro.viz.ascii_chart import render_chart
from repro.viz.series import ScatterSeries

__all__ = ["run"]


def _panel_report(device: str, precision: str, sweep: SweepResult) -> tuple[str, dict[str, float]]:
    machine = panel_machine(device, precision)
    intensities = sweep.intensities_array()
    lo, hi = float(intensities.min()) / 1.2, float(intensities.max()) * 1.2

    measured_time = ScatterSeries(
        label="measured (GFLOP/s / peak)",
        intensities=intensities,
        values=sweep.achieved_gflops_array() / machine.peak_gflops,
    )
    roof = roofline_series(machine, lo=lo, hi=hi, normalized=True)
    time_chart = render_chart(
        [roof],
        [measured_time],
        markers={"B_tau": machine.b_tau},
        title=f"Fig. 4 time — {machine.name}: peak {machine.peak_gflops:.0f} GFLOP/s",
        height=14,
    )

    measured_energy = ScatterSeries(
        label="measured (GFLOP/J / peak)",
        intensities=intensities,
        values=sweep.gflops_per_joule_array() / machine.peak_gflops_per_joule,
    )
    arch = archline_series(machine, lo=lo, hi=hi, normalized=True)
    energy_chart = render_chart(
        [arch],
        [measured_energy],
        markers={
            "B_eps_eff": machine.effective_balance_crossing,
            "B_eps(const=0)": machine.b_eps,
        },
        title=(
            f"Fig. 4 energy — {machine.name}: "
            f"peak {machine.peak_gflops_per_joule:.2g} GFLOP/J"
        ),
        height=14,
    )

    # Model-vs-measured agreement, judged against the *effective* machine —
    # spec peaks scaled by the achieved fractions this very sweep reached at
    # its extremes.  Measured points sit below the ideal roofline by those
    # fractions everywhere (visible in the charts, exactly as in the paper's
    # Fig. 4); what the model must explain is the *residual* deviation,
    # which is zero except where the power cap throttles (§V-B).
    from dataclasses import replace as _replace

    effective = _replace(
        machine,
        tau_flop=machine.tau_flop * machine.peak_gflops / sweep.max_gflops,
        tau_mem=machine.tau_mem * machine.peak_gbytes / sweep.max_bandwidth_gbytes,
        power_cap=None,
    )
    energy_model = EnergyModel(effective)
    model_gfj = energy_model.attainable_gflops_per_joule_batch(intensities)
    measured_gfj = sweep.gflops_per_joule_array()
    energy_dev = float(np.max(np.abs(measured_gfj / model_gfj - 1.0)))

    time_model = TimeModel(effective)
    roof_gflops = time_model.attainable_gflops_batch(intensities)
    measured_gflops = sweep.achieved_gflops_array()
    time_sag = float(np.max(1.0 - measured_gflops / roof_gflops))

    key = f"{device}_{precision}"
    values = {
        f"{key}_max_gflops": sweep.max_gflops,
        f"{key}_max_bandwidth": sweep.max_bandwidth_gbytes,
        f"{key}_flop_fraction": sweep.max_gflops / machine.peak_gflops,
        f"{key}_bandwidth_fraction": sweep.max_bandwidth_gbytes / machine.peak_gbytes,
        f"{key}_peak_gflops_per_joule": machine.peak_gflops_per_joule,
        f"{key}_b_tau": machine.b_tau,
        f"{key}_b_eps": machine.b_eps,
        f"{key}_b_eps_eff": machine.effective_balance_crossing,
        f"{key}_energy_model_max_dev": energy_dev,
        f"{key}_time_roofline_max_sag": time_sag,
    }
    summary = (
        f"{machine.name}: achieved {sweep.max_gflops:.1f} GFLOP/s "
        f"({100 * values[f'{key}_flop_fraction']:.1f}% of peak), "
        f"{sweep.max_bandwidth_gbytes:.1f} GB/s "
        f"({100 * values[f'{key}_bandwidth_fraction']:.1f}% of peak); "
        f"max roofline sag {100 * time_sag:.1f}%; "
        f"energy model within {100 * energy_dev:.1f}%"
    )
    return "\n\n".join([time_chart, energy_chart, summary]), values


@experiment("fig4", "Fig. 4 — measured time and energy vs the model")
def run(*, points_per_octave: int = 2, jobs: int = 1) -> ExperimentResult:
    """Regenerate all four panels of Fig. 4 (both precisions).

    ``jobs > 1`` runs the four panel sweeps across worker processes.
    """
    run_panels(PANELS, points_per_octave=points_per_octave, jobs=jobs)
    sections: list[str] = []
    values: dict[str, float] = {}
    for device, precision in PANELS:
        sweep = run_panel(device, precision, points_per_octave=points_per_octave)
        text, panel_values = _panel_report(device, precision, sweep)
        sections.append(text)
        values.update(panel_values)
    return ExperimentResult(
        experiment_id="fig4",
        title="Fig. 4 — measured time and energy vs the model",
        text="\n\n".join(sections),
        values=values,
    )

"""Simulated power-measurement instrumentation (§IV-A).

The paper measures with **PowerMon 2** — an 8-channel inline DC power
monitor sampling voltage and current at up to 1024 Hz per channel
(3072 Hz aggregate) — plus a custom **PCIe interposer** that intercepts
the motherboard-slot power feeding the GPU.  This package reproduces that
measurement chain against simulated devices:

* :mod:`repro.powermon.adc` — per-sample quantisation and noise;
* :mod:`repro.powermon.channels` — rails and channel definitions
  (ATX 20-pin / 4-pin for the CPU rig, 8-pin / 6-pin / interposer for
  the GPU rig);
* :mod:`repro.powermon.interposer` — PCIe slot power split with the
  75 W slot budget;
* :mod:`repro.powermon.device` — the PowerMon 2 sampler with its rate
  and channel-count limits enforced;
* :mod:`repro.powermon.session` — the full measurement protocol: run a
  kernel N times, sample all rails, average instantaneous power, and
  multiply by time to get energy — exactly the paper's method.
"""

from repro.powermon.adc import ADCModel
from repro.powermon.channels import (
    Channel,
    RailSet,
    atx_cpu_rails,
    gpu_rails,
)
from repro.powermon.device import PowerMon2, SampleSet
from repro.powermon.interposer import PCIeInterposer
from repro.powermon.logfile import dumps, loads, read_log, write_log
from repro.powermon.session import Measurement, MeasurementSession

__all__ = [
    "ADCModel",
    "Channel",
    "RailSet",
    "atx_cpu_rails",
    "gpu_rails",
    "PCIeInterposer",
    "PowerMon2",
    "SampleSet",
    "Measurement",
    "MeasurementSession",
    "dumps",
    "loads",
    "read_log",
    "write_log",
]

"""Power rails and measurement channels.

A :class:`Channel` is one V/I pair PowerMon can monitor: a supply rail
with a nominal voltage and a *share policy* describing how much of the
device's total draw flows through it.  A :class:`RailSet` is the set of
channels wired for one experimental rig:

* **CPU rig** (§IV-A): the ATX 20-pin connector's 3.3 V, 5 V, and 12 V
  sources plus the 4-pin 12 V CPU connector — GPU and peripherals
  physically removed.
* **GPU rig**: the 8-pin and 6-pin PCIe power connectors straight from
  the PSU, plus the motherboard slot's 12 V and 3.3 V feeds intercepted
  by the interposer (:mod:`repro.powermon.interposer`).

Share policies: fixed fractions for PSU-side rails, and capacity-limited
splits for the slot rails (the PCIe specification caps slot power, so
load beyond the cap shifts to the auxiliary connectors — which is why the
interposer was needed at all: without it, slot-delivered watts would
simply be missing from the total).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import MeasurementError

__all__ = ["Channel", "RailSet", "atx_cpu_rails", "gpu_rails"]


@dataclass(frozen=True, slots=True)
class Channel:
    """One monitored rail.

    Attributes
    ----------
    name:
        Label, e.g. ``"ATX 12V (8-pin)"``.
    nominal_voltage:
        Rail voltage (V); true voltage regulates within a fraction of a
        percent of this.
    share:
        Fraction of *residual* device power carried by this rail (after
        capacity-limited rails take their cut).
    max_watts:
        Optional capacity limit; this rail carries
        ``min(share-weighted residual, max_watts)`` and the remainder
        cascades to later rails.
    """

    name: str
    nominal_voltage: float
    share: float
    max_watts: float | None = None

    def __post_init__(self) -> None:
        if self.nominal_voltage <= 0:
            raise MeasurementError(f"nominal_voltage must be positive: {self.name}")
        if not 0.0 <= self.share <= 1.0:
            raise MeasurementError(f"share must be in [0, 1]: {self.name}")
        if self.max_watts is not None and self.max_watts <= 0:
            raise MeasurementError(f"max_watts must be positive: {self.name}")


@dataclass(frozen=True)
class RailSet:
    """An ordered set of channels that jointly carry a device's power.

    Power is distributed front-to-back: each capacity-limited channel
    takes ``share × remaining`` up to its cap; the final channel absorbs
    whatever is left (its ``share`` is ignored), guaranteeing the rails
    always sum to the true total — conservation the tests verify.
    """

    name: str
    channels: tuple[Channel, ...]

    def __post_init__(self) -> None:
        if len(self.channels) < 1:
            raise MeasurementError("a rail set needs at least one channel")
        names = [c.name for c in self.channels]
        if len(set(names)) != len(names):
            raise MeasurementError(f"duplicate channel names: {names}")

    def __len__(self) -> int:
        return len(self.channels)

    def split_power(self, total_power: np.ndarray) -> list[np.ndarray]:
        """Distribute total power across rails (vectorised over samples).

        Returns per-channel power arrays; their sum equals ``total_power``
        exactly.
        """
        total = np.asarray(total_power, dtype=float)
        if np.any(total < 0):
            raise MeasurementError("total power must be non-negative")
        remaining = total.copy()
        powers: list[np.ndarray] = []
        for channel in self.channels[:-1]:
            p = channel.share * remaining
            if channel.max_watts is not None:
                p = np.minimum(p, channel.max_watts)
            powers.append(p)
            remaining = remaining - p
        powers.append(remaining)
        return powers

    def true_currents(self, total_power: np.ndarray) -> list[np.ndarray]:
        """Per-channel true current ``I = P_rail / V_nominal`` (A)."""
        return [
            p / c.nominal_voltage
            for p, c in zip(self.split_power(total_power), self.channels)
        ]


def atx_cpu_rails() -> RailSet:
    """The CPU rig: ATX 20-pin (3.3/5/12 V) + 4-pin 12 V CPU connector.

    Share fractions are representative of a Nehalem desktop under load:
    the 4-pin 12 V feeds the CPU VRM and dominates; the last rail (20-pin
    12 V) absorbs the residual.
    """
    return RailSet(
        name="ATX (CPU rig)",
        channels=(
            Channel("ATX 3.3V", 3.3, share=0.08),
            Channel("ATX 5V", 5.0, share=0.12),
            Channel("ATX 4-pin 12V (CPU)", 12.0, share=0.60),
            Channel("ATX 20-pin 12V", 12.0, share=1.0),
        ),
    )


def gpu_rails() -> RailSet:
    """The GPU rig: PCIe slot rails (interposer) + 8-pin and 6-pin aux.

    The slot rails carry PCIe-specified maxima (66 W on 12 V, 9.9 W on
    3.3 V); load above those caps shifts to the auxiliary connectors.
    The 8-pin absorbs the residual beyond the 6-pin's 75 W rating.
    """
    return RailSet(
        name="GPU (interposer + aux)",
        channels=(
            Channel("PCIe slot 3.3V", 3.3, share=0.02, max_watts=9.9),
            Channel("PCIe slot 12V", 12.0, share=0.25, max_watts=66.0),
            Channel("PCIe 6-pin 12V", 12.0, share=0.40, max_watts=75.0),
            Channel("PCIe 8-pin 12V", 12.0, share=1.0),
        ),
    )

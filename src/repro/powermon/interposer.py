"""The PCIe interposer: slot-power interception for GPU isolation.

High-power GPUs draw from *both* auxiliary PSU connectors and the
motherboard slot.  PSU-side monitoring alone therefore undercounts GPU
power by up to the slot budget (75 W).  The paper's custom interposer
sits between card and slot and taps the 12 V and 3.3 V slot pins so the
full draw is observable.

This module quantifies that: given a rail set with and without the slot
channels, how many watts (and what fraction of energy) would be missed.
It exists mostly for the measurement-infrastructure tests and the
documentation example showing *why* the interposer matters — the actual
splitting logic lives in :class:`repro.powermon.channels.RailSet`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import MeasurementError
from repro.powermon.channels import RailSet

__all__ = ["PCIeInterposer"]

#: PCI Express slot power budget (25 W + 41 W on 12 V, 9.9 W on 3.3 V ≈ 75 W
#: for a x16 graphics slot; we use the spec's rail maxima).
SLOT_12V_MAX_W = 66.0
SLOT_33V_MAX_W = 9.9


@dataclass(frozen=True)
class PCIeInterposer:
    """Analysis wrapper around a GPU rail set's slot channels.

    ``slot_channel_names`` identifies which channels of the rail set are
    only observable because the interposer exists.
    """

    rails: RailSet
    slot_channel_names: tuple[str, ...] = ("PCIe slot 3.3V", "PCIe slot 12V")

    def __post_init__(self) -> None:
        names = {c.name for c in self.rails.channels}
        missing = set(self.slot_channel_names) - names
        if missing:
            raise MeasurementError(
                f"rail set {self.rails.name!r} lacks slot channels {sorted(missing)}"
            )

    def slot_power(self, total_power: np.ndarray) -> np.ndarray:
        """Watts flowing through the slot at each sample."""
        split = self.rails.split_power(np.asarray(total_power, dtype=float))
        slot = np.zeros_like(np.asarray(total_power, dtype=float))
        for power, channel in zip(split, self.rails.channels):
            if channel.name in self.slot_channel_names:
                slot = slot + power
        return slot

    def undercount_fraction(self, total_power: np.ndarray) -> float:
        """Average fraction of power invisible without the interposer.

        This is the systematic error a PSU-only measurement of this trace
        would commit — the motivation for building the interposer.
        """
        total = np.asarray(total_power, dtype=float)
        if total.size == 0:
            raise MeasurementError("need at least one sample")
        total_sum = float(np.sum(total))
        if total_sum == 0:
            return 0.0
        return float(np.sum(self.slot_power(total))) / total_sum

    def slot_within_spec(self, total_power: np.ndarray) -> bool:
        """Whether slot draw stays inside the PCIe budget at every sample."""
        split = self.rails.split_power(np.asarray(total_power, dtype=float))
        for power, channel in zip(split, self.rails.channels):
            if channel.name == "PCIe slot 12V" and np.any(power > SLOT_12V_MAX_W + 1e-9):
                return False
            if channel.name == "PCIe slot 3.3V" and np.any(power > SLOT_33V_MAX_W + 1e-9):
                return False
        return True

"""PowerMon 2: the multi-channel sampler with its hardware limits.

The real device monitors up to eight channels at up to 1024 Hz each with
an aggregate ceiling of 3072 Hz, emitting time-stamped V/I readings.
:class:`PowerMon2` enforces exactly those limits, samples a ground-truth
:class:`~repro.simulator.trace.PowerTrace` through per-channel ADCs, and
returns a :class:`SampleSet` that computes power and energy the paper's
way: per-sample ``Σ V·I`` over channels, averaged, times duration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import (
    POWERMON_MAX_AGGREGATE_HZ,
    POWERMON_MAX_CHANNELS,
    POWERMON_MAX_CHANNEL_HZ,
)
from repro.exceptions import SamplingError
from repro.powermon.adc import ADCModel
from repro.powermon.channels import RailSet
from repro.simulator.trace import PowerTrace

__all__ = ["SampleSet", "PowerMon2"]


@dataclass(frozen=True)
class SampleSet:
    """Time-stamped multi-channel V/I readings from one acquisition.

    Arrays are shaped ``(n_channels, n_samples)``.  Every derived
    quantity below uses only the readings — never the ground truth —
    mirroring what the real instrument delivers.
    """

    timestamps: np.ndarray
    voltages: np.ndarray
    currents: np.ndarray
    channel_names: tuple[str, ...]
    sample_hz: float

    def __post_init__(self) -> None:
        if self.voltages.shape != self.currents.shape:
            raise SamplingError("voltage and current arrays must match in shape")
        n_ch, n_s = self.voltages.shape
        if self.timestamps.shape != (n_s,):
            raise SamplingError("timestamps must have one entry per sample")
        if len(self.channel_names) != n_ch:
            raise SamplingError("need one name per channel")

    @property
    def n_samples(self) -> int:
        return int(self.timestamps.size)

    @property
    def n_channels(self) -> int:
        return len(self.channel_names)

    def instantaneous_power(self) -> np.ndarray:
        """Per-sample total power: ``Σ_channels V·I`` (W)."""
        return np.sum(self.voltages * self.currents, axis=0)

    def channel_power(self, name: str) -> np.ndarray:
        """Per-sample power on one named channel (W)."""
        try:
            idx = self.channel_names.index(name)
        except ValueError as exc:
            raise SamplingError(
                f"no channel {name!r}; have {self.channel_names}"
            ) from exc
        return self.voltages[idx] * self.currents[idx]

    def average_power(self) -> float:
        """Mean of instantaneous power over all samples (W)."""
        if self.n_samples == 0:
            raise SamplingError("no samples acquired")
        return float(np.mean(self.instantaneous_power()))

    def span(self) -> float:
        """Acquisition duration covered by the samples (s).

        One sample period per sample — each reading represents the
        interval until the next, so energy integrates as a left Riemann
        sum.
        """
        return self.n_samples / self.sample_hz

    def total_energy(self) -> float:
        """The paper's energy computation: average power × total time (J)."""
        return self.average_power() * self.span()


class PowerMon2:
    """The simulated 8-channel power monitor.

    Parameters
    ----------
    adc:
        Conversion model applied to every reading.
    """

    MAX_CHANNELS = POWERMON_MAX_CHANNELS
    MAX_CHANNEL_HZ = POWERMON_MAX_CHANNEL_HZ
    MAX_AGGREGATE_HZ = POWERMON_MAX_AGGREGATE_HZ

    def __init__(self, adc: ADCModel | None = None):
        self.adc = adc or ADCModel()

    def validate_rates(self, n_channels: int, sample_hz: float) -> None:
        """Raise :class:`SamplingError` if the acquisition exceeds hardware.

        Mirrors the real device: ≤8 channels, ≤1024 Hz per channel,
        ≤3072 Hz summed over channels.
        """
        if n_channels < 1:
            raise SamplingError("need at least one channel")
        if n_channels > self.MAX_CHANNELS:
            raise SamplingError(
                f"PowerMon 2 supports at most {self.MAX_CHANNELS} channels, "
                f"got {n_channels}"
            )
        if sample_hz <= 0:
            raise SamplingError("sample rate must be positive")
        if sample_hz > self.MAX_CHANNEL_HZ:
            raise SamplingError(
                f"per-channel rate {sample_hz} Hz exceeds "
                f"{self.MAX_CHANNEL_HZ} Hz limit"
            )
        aggregate = sample_hz * n_channels
        if aggregate > self.MAX_AGGREGATE_HZ:
            raise SamplingError(
                f"aggregate rate {aggregate} Hz exceeds "
                f"{self.MAX_AGGREGATE_HZ} Hz limit"
            )

    def acquire(
        self,
        trace: PowerTrace,
        rails: RailSet,
        *,
        sample_hz: float,
        rng: np.random.Generator,
        start: float = 0.0,
        duration: float | None = None,
    ) -> SampleSet:
        """Sample a power trace through the rail set and ADCs.

        Samples land at ``start + k/sample_hz`` for ``k = 0..n-1`` over
        ``duration`` (default: the rest of the trace).  All channels
        sample synchronously, as the real device's aggregate scan does.
        """
        self.validate_rates(len(rails), sample_hz)
        if duration is None:
            duration = trace.duration - start
        if duration <= 0:
            raise SamplingError(f"sampling window must be positive, got {duration}")
        n = int(np.floor(duration * sample_hz))
        if n < 1:
            raise SamplingError(
                f"window of {duration:.4g}s yields no samples at {sample_hz} Hz; "
                "lengthen the run or raise the rate"
            )
        times = start + np.arange(n) / sample_hz
        total_power = trace.power_at(times)
        true_currents = rails.true_currents(total_power)

        voltages = np.empty((len(rails), n))
        currents = np.empty((len(rails), n))
        for i, (channel, current) in enumerate(zip(rails.channels, true_currents)):
            true_v = np.full(n, channel.nominal_voltage)
            voltages[i] = self.adc.read_voltage(true_v, rng)
            currents[i] = self.adc.read_current(current, rng)

        return SampleSet(
            timestamps=times,
            voltages=voltages,
            currents=currents,
            channel_names=tuple(c.name for c in rails.channels),
            sample_hz=sample_hz,
        )

"""ADC model: what a digital power monitor does to a true V/I value.

PowerMon 2 reads each channel through a digital power-monitor IC; every
reading carries quantisation (finite ADC resolution over a full-scale
range), a multiplicative gain error (shunt/divider tolerance, identical
for all samples on one channel), and additive Gaussian noise.  These
imperfections are the reason the paper's fitted coefficients carry
standard errors at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import NoiseProfile
from repro.exceptions import MeasurementError

__all__ = ["ADCModel"]


@dataclass(frozen=True, slots=True)
class ADCModel:
    """Converts true channel values into noisy, quantised readings.

    Parameters
    ----------
    full_scale_voltage:
        Largest representable voltage (V); readings clip here.
    full_scale_current:
        Largest representable current (A).
    noise:
        Noise magnitudes (relative sigmas, bit depth, gain error).
    """

    full_scale_voltage: float = 16.0
    full_scale_current: float = 40.0
    noise: NoiseProfile = NoiseProfile()

    def __post_init__(self) -> None:
        if self.full_scale_voltage <= 0 or self.full_scale_current <= 0:
            raise MeasurementError("full-scale ranges must be positive")

    @property
    def voltage_lsb(self) -> float:
        """Voltage quantisation step (V)."""
        return self.full_scale_voltage / (2**self.noise.adc_bits)

    @property
    def current_lsb(self) -> float:
        """Current quantisation step (A)."""
        return self.full_scale_current / (2**self.noise.adc_bits)

    def _convert(
        self,
        true_values: np.ndarray,
        *,
        sigma: float,
        lsb: float,
        full_scale: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        values = np.asarray(true_values, dtype=float)
        if np.any(values < 0):
            raise MeasurementError("true channel values must be non-negative")
        gained = values * (1.0 + self.noise.gain_error)
        if sigma > 0:
            gained = gained * (1.0 + rng.normal(0.0, sigma, size=gained.shape))
        quantised = np.round(gained / lsb) * lsb
        return np.clip(quantised, 0.0, full_scale)

    def read_voltage(
        self, true_volts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample voltages through the ADC."""
        return self._convert(
            true_volts,
            sigma=self.noise.voltage_sigma,
            lsb=self.voltage_lsb,
            full_scale=self.full_scale_voltage,
            rng=rng,
        )

    def read_current(
        self, true_amps: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample currents through the ADC."""
        return self._convert(
            true_amps,
            sigma=self.noise.current_sigma,
            lsb=self.current_lsb,
            full_scale=self.full_scale_current,
            rng=rng,
        )

    def worst_case_power_error(self, voltage: float, current: float) -> float:
        """Upper bound on per-sample power error from quantisation alone (W).

        ``|ΔP| <= V·ΔI + I·ΔV + ΔV·ΔI`` with half-LSB deltas.  Useful for
        ablation benches relating bit depth to energy accuracy.
        """
        dv = 0.5 * self.voltage_lsb
        di = 0.5 * self.current_lsb
        return voltage * di + current * dv + dv * di

"""The full measurement protocol of §IV-A, end to end.

A :class:`MeasurementSession` binds a simulated device to a PowerMon and
a rail set, and measures kernels exactly the way the paper does:

1. execute the kernel ``repetitions`` times back-to-back (a warm-up pass
   is discarded first);
2. sample every rail at the protocol rate for the whole active window;
3. instantaneous power per sample = Σ over rails of V·I;
4. average power = mean over samples; total energy = average power ×
   wall time; per-run values divide by the repetition count;
5. wall time comes from a (slightly jittered) timer, independent of the
   power samples.

The output :class:`Measurement` carries ``(W, Q, T, E, R)`` — the exact
4-tuple-plus-energy the eq. (9) regression consumes — and keeps the raw
sample set for power-trace analyses (Fig. 5).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.config import DEFAULT_SEED, MeasurementProtocol, NoiseProfile
from repro.core.fitting import EnergySample
from repro.exceptions import MeasurementError
from repro.powermon.adc import ADCModel
from repro.powermon.channels import RailSet
from repro.powermon.device import PowerMon2, SampleSet
from repro.simulator.device import ExecutionResult, SimulatedDevice
from repro.simulator.kernel import KernelSpec, Precision
from repro.units import (
    GIGA,
    bytes_per_second_to_gbytes,
    flops_per_second_to_gflops,
    to_milliseconds,
)

__all__ = ["Measurement", "MeasurementSession"]

#: Relative sigma of the wall-clock timer (gettimeofday-class jitter).
_TIMER_SIGMA = 1e-4


@dataclass(frozen=True)
class Measurement:
    """One measured kernel: observables plus (test-only) ground truth.

    ``time``/``energy``/``average_power`` are *per repetition* and come
    from the measurement chain.  ``truth`` is the simulator's hidden
    result — production analyses must not use it; tests use it to bound
    measurement error.
    """

    kernel: KernelSpec
    repetitions: int
    time: float
    energy: float
    average_power: float
    samples: SampleSet
    truth: ExecutionResult

    @property
    def achieved_gflops(self) -> float:
        """Measured arithmetic throughput (GFLOP/s)."""
        return flops_per_second_to_gflops(self.kernel.work / self.time)

    @property
    def achieved_bandwidth_gbytes(self) -> float:
        """Measured DRAM bandwidth (GB/s)."""
        return bytes_per_second_to_gbytes(self.kernel.traffic / self.time)

    @property
    def gflops_per_joule(self) -> float:
        """Measured energy efficiency (GFLOP/J)."""
        return self.kernel.work / self.energy / GIGA

    def to_energy_sample(self) -> EnergySample:
        """The eq. (9) regression row for this measurement."""
        return EnergySample(
            work=self.kernel.work,
            traffic=self.kernel.traffic,
            time=self.time,
            energy=self.energy,
            double_precision=self.kernel.precision is Precision.DOUBLE,
        )


class MeasurementSession:
    """Runs the §IV-A protocol against a simulated device."""

    def __init__(
        self,
        device: SimulatedDevice,
        rails: RailSet,
        *,
        protocol: MeasurementProtocol | None = None,
        noise: NoiseProfile | None = None,
        seed: int | Sequence[int] = DEFAULT_SEED,
    ):
        self.device = device
        self.rails = rails
        self.protocol = protocol or MeasurementProtocol()
        self.noise = noise if noise is not None else NoiseProfile()
        self.powermon = PowerMon2(ADCModel(noise=self.noise))
        self._timer_noisy = self.noise.voltage_sigma > 0
        self.rng = np.random.default_rng(seed)
        # Fail fast: the protocol must be within the instrument's limits.
        self.powermon.validate_rates(len(rails), self.protocol.sample_hz)

    def measure(
        self,
        kernel: KernelSpec,
        *,
        cache_traffic: float = 0.0,
        efficiency: float | None = None,
    ) -> Measurement:
        """Measure one kernel per the protocol; returns per-run values.

        Raises :class:`MeasurementError` when the active window is too
        short to collect at least one sample per repetition on average —
        the practical "size your benchmark for the sampler" constraint
        real PowerMon users face.
        """
        protocol = self.protocol
        truth = self.device.execute(
            kernel, cache_traffic=cache_traffic, efficiency=efficiency
        )
        trace = self.device.trace(
            truth, repetitions=protocol.repetitions, ramp=1e-3, lead=0.0
        )
        samples_expected = trace.active_duration * protocol.sample_hz
        if samples_expected < protocol.repetitions:
            raise MeasurementError(
                f"kernel {kernel.name!r} runs {to_milliseconds(truth.time):.3g} ms/rep: "
                f"{samples_expected:.1f} samples over {protocol.repetitions} reps "
                f"at {protocol.sample_hz} Hz is too sparse; increase work"
            )

        samples = self.powermon.acquire(
            trace,
            self.rails,
            sample_hz=protocol.sample_hz,
            rng=self.rng,
            start=trace.t_plateau_start,
            duration=trace.active_duration,
        )

        wall = trace.active_duration
        if self._timer_noisy:
            wall *= 1.0 + float(self.rng.normal(0.0, _TIMER_SIGMA))
        energy_total = samples.average_power() * wall

        return Measurement(
            kernel=kernel,
            repetitions=protocol.repetitions,
            time=wall / protocol.repetitions,
            energy=energy_total / protocol.repetitions,
            average_power=samples.average_power(),
            samples=samples,
            truth=truth,
        )

    def measure_many(
        self,
        kernels: list[KernelSpec],
        *,
        cache_traffic: list[float] | None = None,
    ) -> list[Measurement]:
        """Measure a batch of kernels (e.g. an intensity sweep)."""
        if cache_traffic is None:
            cache_traffic = [0.0] * len(kernels)
        if len(cache_traffic) != len(kernels):
            raise MeasurementError(
                "cache_traffic must have one entry per kernel"
            )
        return [
            self.measure(kernel, cache_traffic=traffic)
            for kernel, traffic in zip(kernels, cache_traffic)
        ]

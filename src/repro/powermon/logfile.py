"""PowerMon 2 log format: formatted, time-stamped measurement records.

The real PowerMon 2 "reports formatted and time-stamped measurements
without the need for additional software" (§IV-A).  This module defines
the reproduction's equivalent on-disk format — a self-describing text
log — with a writer and a strict parser, so measurement sessions can be
archived and re-analysed offline (e.g. fed back into ``energy-roofline
fit`` pipelines or external tooling).

Format (version 1)::

    # powermon2-log v1
    # sample_hz: 128.0
    # channels: 4
    # channel 0: PCIe slot 3.3V
    # channel 1: PCIe slot 12V
    ...
    # columns: time_s ch0_V ch0_A ch1_V ch1_A ...
    0.0000000 3.3008 0.9871 12.0013 1.0231 ...

Header lines start with ``#``; data rows are whitespace-separated
floats, one row per synchronous scan.  The parser validates structure
aggressively — a truncated or reordered file fails loudly rather than
yielding silently wrong energy numbers.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.exceptions import MeasurementError
from repro.powermon.device import SampleSet

__all__ = ["write_log", "read_log", "dumps", "loads"]

_MAGIC = "# powermon2-log v1"


def dumps(samples: SampleSet) -> str:
    """Serialise a :class:`SampleSet` to the v1 text format."""
    out = io.StringIO()
    out.write(_MAGIC + "\n")
    out.write(f"# sample_hz: {samples.sample_hz!r}\n")
    out.write(f"# channels: {samples.n_channels}\n")
    for i, name in enumerate(samples.channel_names):
        if "\n" in name or "\r" in name:
            raise MeasurementError(f"channel name contains a newline: {name!r}")
        out.write(f"# channel {i}: {name}\n")
    columns = ["time_s"]
    for i in range(samples.n_channels):
        columns += [f"ch{i}_V", f"ch{i}_A"]
    out.write("# columns: " + " ".join(columns) + "\n")
    for j in range(samples.n_samples):
        row = [f"{samples.timestamps[j]:.7f}"]
        for i in range(samples.n_channels):
            row.append(f"{samples.voltages[i, j]:.6f}")
            row.append(f"{samples.currents[i, j]:.6f}")
        out.write(" ".join(row) + "\n")
    return out.getvalue()


def loads(text: str) -> SampleSet:
    """Parse the v1 text format back into a :class:`SampleSet`.

    Raises :class:`MeasurementError` on any structural defect: wrong
    magic, missing headers, inconsistent column counts, or non-numeric
    cells.
    """
    lines = text.splitlines()
    if not lines or lines[0].strip() != _MAGIC:
        raise MeasurementError(
            f"not a powermon2-log v1 file (first line {lines[0]!r})"
            if lines
            else "empty log"
        )
    sample_hz: float | None = None
    n_channels: int | None = None
    names: dict[int, str] = {}
    data_start: int | None = None

    for idx, line in enumerate(lines[1:], start=1):
        stripped = line.strip()
        if not stripped.startswith("#"):
            data_start = idx
            break
        body = stripped[1:].strip()
        if body.startswith("sample_hz:"):
            sample_hz = float(body.split(":", 1)[1])
        elif body.startswith("channels:"):
            n_channels = int(body.split(":", 1)[1])
        elif body.startswith("channel "):
            head, name = body.split(":", 1)
            names[int(head.split()[1])] = name.strip()
        elif body.startswith("columns:"):
            pass  # informational
        else:
            raise MeasurementError(f"unrecognised header line: {line!r}")

    if sample_hz is None or n_channels is None:
        raise MeasurementError("missing sample_hz or channels header")
    if sorted(names) != list(range(n_channels)):
        raise MeasurementError(
            f"channel names {sorted(names)} do not cover 0..{n_channels - 1}"
        )
    if data_start is None:
        raise MeasurementError("log contains no data rows")

    expected_cols = 1 + 2 * n_channels
    rows: list[list[float]] = []
    for line_no, line in enumerate(lines[data_start:], start=data_start + 1):
        if not line.strip():
            continue
        cells = line.split()
        if len(cells) != expected_cols:
            raise MeasurementError(
                f"line {line_no}: expected {expected_cols} columns, "
                f"got {len(cells)}"
            )
        try:
            rows.append([float(c) for c in cells])
        except ValueError as exc:
            raise MeasurementError(f"line {line_no}: non-numeric cell") from exc
    if not rows:
        raise MeasurementError("log contains no data rows")

    data = np.asarray(rows)
    timestamps = data[:, 0]
    voltages = data[:, 1::2].T.copy()
    currents = data[:, 2::2].T.copy()
    return SampleSet(
        timestamps=timestamps,
        voltages=voltages,
        currents=currents,
        channel_names=tuple(names[i] for i in range(n_channels)),
        sample_hz=sample_hz,
    )


def write_log(samples: SampleSet, path: str | Path) -> Path:
    """Write a sample set to disk; returns the path."""
    target = Path(path)
    target.write_text(dumps(samples))
    return target


def read_log(path: str | Path) -> SampleSet:
    """Read a sample set from disk."""
    return loads(Path(path).read_text())

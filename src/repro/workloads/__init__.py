"""Phase-structured applications for whole-program time/energy analysis.

Real applications are sequences of kernels with very different
intensities — exactly where the balance-gap analysis earns its keep: a
program can be compute-bound in time overall yet spend most of its
*energy* in its memory-bound phases.  This package provides the phase
algebra (:mod:`repro.workloads.phases`) and a library of canonical
applications (:mod:`repro.workloads.library`) built from the
:mod:`repro.core.algorithm` profiles.
"""

from repro.workloads.library import (
    cg_solver,
    fft_poisson_solver,
    fmm_pipeline,
    jacobi_heat_solver,
)
from repro.workloads.phases import Application, Phase, PhaseReport

__all__ = [
    "Phase",
    "Application",
    "PhaseReport",
    "cg_solver",
    "fmm_pipeline",
    "fft_poisson_solver",
    "jacobi_heat_solver",
]

"""Canonical phase-structured applications.

Four applications spanning the intensity spectrum, built from the
symbolic profiles of :mod:`repro.core.algorithm`:

* :func:`cg_solver` — conjugate gradients: an SpMV-dominated,
  bandwidth-bound iteration with low-intensity vector phases;
* :func:`fmm_pipeline` — the fast multipole method: a low-intensity
  tree/communication stage feeding the compute-bound U-list phase
  (the paper's §V-C kernel) and a moderate far-field stage;
* :func:`fft_poisson_solver` — spectral Poisson: two FFTs around a
  streaming pointwise scale;
* :func:`jacobi_heat_solver` — stencil relaxation with a periodic
  reduction (convergence check).

Operation counts follow the standard literature conventions already
documented on the underlying profiles.
"""

from __future__ import annotations

from repro.core.algorithm import (
    AlgorithmProfile,
    dot_product_profile,
    fft_profile,
    fmm_ulist_profile,
    reduction_profile,
    spmv_profile,
    stencil_profile,
    stream_triad_profile,
)
from repro.exceptions import ProfileError
from repro.units import BYTES_PER_DOUBLE
from repro.workloads.phases import Application, Phase

__all__ = ["cg_solver", "fmm_pipeline", "fft_poisson_solver", "jacobi_heat_solver"]


def cg_solver(
    n: int, *, nnz_per_row: float = 27.0, iterations: int = 100
) -> Application:
    """Conjugate gradients on an ``n``-row sparse system.

    Per iteration: one SpMV, two dot products, three AXPYs (the
    textbook operation schedule).  Everything is bandwidth-bound; the
    SpMV dominates both time and energy, making CG the clean contrast
    case to the FMM.
    """
    if iterations < 1:
        raise ProfileError("iterations must be >= 1")
    axpy = stream_triad_profile(n)  # y = y + a*x has the triad's shape
    return Application(
        name=f"cg(n={n}, it={iterations})",
        phases=(
            Phase("spmv", spmv_profile(n, nnz_per_row), repeats=iterations),
            Phase("dot-products", dot_product_profile(n).scaled(2.0), repeats=iterations),
            Phase("axpys", AlgorithmProfile(
                work=3 * axpy.work, traffic=3 * axpy.traffic, name="3x axpy"
            ), repeats=iterations),
        ),
    )


def fmm_pipeline(
    n_points: int, *, leaf_size: int = 128, multipole_terms: int = 16
) -> Application:
    """A fast multipole method evaluation, end to end.

    * **tree+comm** — building/traversing the octree: pointer chasing,
      ~a few flops per word moved (intensity well under any balance);
    * **u-list** — the §V-C near-field phase: ``O(q)`` intensity,
      strongly compute-bound;
    * **far-field** — multipole-to-local translations: dense
      ``p² × p²``-term operators per interacting cell pair, moderate
      intensity.
    """
    if multipole_terms < 1:
        raise ProfileError("multipole_terms must be >= 1")
    n_leaves = max(1, n_points // leaf_size)
    word = 4  # single precision throughout, as in §V-C

    tree_traffic = float(n_points * 4 * word * 3)  # 3 passes over point data
    tree_phase = AlgorithmProfile(
        work=2.0 * n_points,  # index arithmetic counted as useful ops
        traffic=tree_traffic,
        name="tree build",
    )

    p2 = multipole_terms**2
    # 189 M2L translations per leaf-level cell (the standard interaction
    # list size), each a p^2 x p^2 matrix-vector product.
    m2l_work = float(n_leaves * 189 * 2 * p2 * p2)
    m2l_traffic = float(n_leaves * 189 * (p2 * word * 2))
    farfield = AlgorithmProfile(work=m2l_work, traffic=m2l_traffic, name="m2l")

    return Application(
        name=f"fmm(n={n_points}, q={leaf_size}, p^2={p2})",
        phases=(
            Phase("tree+comm", tree_phase),
            Phase("u-list", fmm_ulist_profile(n_points, leaf_size)),
            Phase("far-field", farfield),
        ),
    )


def fft_poisson_solver(n: int, *, fast_bytes: float = 1 << 20) -> Application:
    """Spectral Poisson solve: FFT → pointwise scale → inverse FFT."""
    fft = fft_profile(n, fast_bytes)
    scale = AlgorithmProfile(
        work=float(2 * n),  # one complex scale per mode
        traffic=float(2 * n * 2 * BYTES_PER_DOUBLE),
        name="pointwise scale",
    )
    return Application(
        name=f"fft-poisson(n={n})",
        phases=(
            Phase("forward-fft", fft),
            Phase("scale", scale),
            Phase("inverse-fft", AlgorithmProfile(
                work=fft.work, traffic=fft.traffic, name="ifft"
            )),
        ),
    )


def jacobi_heat_solver(
    n: int, *, sweeps: int = 200, check_every: int = 10
) -> Application:
    """Jacobi relaxation on an ``n³`` heat problem with residual checks."""
    if check_every < 1:
        raise ProfileError("check_every must be >= 1")
    checks = max(1, sweeps // check_every)
    return Application(
        name=f"jacobi(n={n}^3, sweeps={sweeps})",
        phases=(
            Phase("stencil-sweeps", stencil_profile(n, points=7), repeats=sweeps),
            Phase("residual-norms", reduction_profile(n**3), repeats=checks),
        ),
    )

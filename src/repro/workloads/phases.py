"""Phase algebra: applications as sequences of (repeated) kernels.

A :class:`Phase` is a kernel profile plus a repeat count; an
:class:`Application` is an ordered list of phases.  Phases run
back-to-back (no overlap *between* phases — each phase internally enjoys
eq. (3)'s compute/memory overlap), so application time and energy are
sums of per-phase values.

The interesting outputs are the *breakdowns*: which phase dominates
time, which dominates energy — they differ whenever phases straddle the
machine's balance structure — and the application's aggregate intensity
versus its phasewise behaviour (aggregates mislead; the report shows
both).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.algorithm import AlgorithmProfile
from repro.core.energy_model import EnergyModel
from repro.core.params import MachineModel
from repro.core.time_model import TimeModel
from repro.units import to_milliseconds
from repro.exceptions import ProfileError

__all__ = ["Phase", "PhaseReport", "Application"]


@dataclass(frozen=True, slots=True)
class Phase:
    """One stage of an application: a kernel run ``repeats`` times."""

    name: str
    profile: AlgorithmProfile
    repeats: int = 1

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise ProfileError(f"repeats must be >= 1, got {self.repeats}")

    @property
    def total_profile(self) -> AlgorithmProfile:
        """The phase's aggregate (W, Q) across all repeats."""
        return self.profile.scaled(float(self.repeats))


@dataclass(frozen=True, slots=True)
class PhaseReport:
    """One phase's share of an application's cost on a machine."""

    name: str
    intensity: float
    time: float
    energy: float
    time_fraction: float
    energy_fraction: float

    @property
    def power(self) -> float:
        """The phase's average power (W)."""
        return self.energy / self.time


@dataclass(frozen=True)
class Application:
    """An ordered sequence of phases."""

    name: str
    phases: tuple[Phase, ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise ProfileError("an application needs at least one phase")
        names = [p.name for p in self.phases]
        if len(set(names)) != len(names):
            raise ProfileError(f"duplicate phase names: {names}")

    # ------------------------------------------------------------------

    @property
    def total_profile(self) -> AlgorithmProfile:
        """Aggregate (W, Q) over the whole application.

        Note the aggregate intensity is a harmonic-style blend — it can
        sit in a regime none of the phases occupies, which is why
        :meth:`report` is per-phase.
        """
        total = self.phases[0].total_profile
        for phase in self.phases[1:]:
            total = total + phase.total_profile
        return AlgorithmProfile(
            work=total.work, traffic=total.traffic, name=self.name
        )

    def time(self, machine: MachineModel) -> float:
        """Total time: sum of per-phase eq. (3) times (s)."""
        model = TimeModel(machine)
        return sum(model.time(p.total_profile) for p in self.phases)

    def energy(self, machine: MachineModel) -> float:
        """Total energy: sum of per-phase eq. (4) energies (J)."""
        model = EnergyModel(machine)
        return sum(model.energy(p.total_profile) for p in self.phases)

    def average_power(self, machine: MachineModel) -> float:
        """Whole-run average power (W)."""
        return self.energy(machine) / self.time(machine)

    def report(self, machine: MachineModel) -> list[PhaseReport]:
        """Per-phase costs and shares, in phase order."""
        time_model = TimeModel(machine)
        energy_model = EnergyModel(machine)
        rows = [
            (
                p,
                time_model.time(p.total_profile),
                energy_model.energy(p.total_profile),
            )
            for p in self.phases
        ]
        total_t = sum(t for _, t, _ in rows)
        total_e = sum(e for _, _, e in rows)
        return [
            PhaseReport(
                name=p.name,
                intensity=p.profile.intensity,
                time=t,
                energy=e,
                time_fraction=t / total_t,
                energy_fraction=e / total_e,
            )
            for p, t, e in rows
        ]

    def time_bottleneck(self, machine: MachineModel) -> PhaseReport:
        """The phase with the largest time share."""
        return max(self.report(machine), key=lambda r: r.time_fraction)

    def energy_bottleneck(self, machine: MachineModel) -> PhaseReport:
        """The phase with the largest energy share.

        Can differ from the time bottleneck when phases straddle the
        balance gap — the actionable output for energy tuning.
        """
        return max(self.report(machine), key=lambda r: r.energy_fraction)

    def describe(self, machine: MachineModel) -> str:
        """Aligned per-phase cost table plus totals."""
        rows = self.report(machine)
        lines = [
            f"{self.name} on {machine.name}:",
            f"{'phase':<22}{'I (F/B)':>9}{'time':>12}{'T%':>7}"
            f"{'energy':>12}{'E%':>7}{'power':>9}",
        ]
        for r in rows:
            lines.append(
                f"{r.name[:21]:<22}{r.intensity:>9.3f}{to_milliseconds(r.time):>10.2f}ms"
                f"{r.time_fraction:>7.1%}{r.energy:>11.3f}J"
                f"{r.energy_fraction:>7.1%}{r.power:>8.1f}W"
            )
        lines.append(
            f"{'TOTAL':<22}{self.total_profile.intensity:>9.3f}"
            f"{to_milliseconds(self.time(machine)):>10.2f}ms{'':>7}"
            f"{self.energy(machine):>11.3f}J{'':>7}"
            f"{self.average_power(machine):>8.1f}W"
        )
        return "\n".join(lines)

"""Exact batched true-LRU simulation over whole address streams.

The scalar :meth:`~repro.cachesim.cache.CacheLevel.access` walks one
Python list per access.  This module reproduces its hit/miss decisions
*bit-identically* for an entire stream at once, using the classic
stack-distance characterisation of LRU:

    an access to line ``a`` hits iff the number of **distinct** lines of
    the same set touched since the previous access to ``a`` is smaller
    than the associativity (``ways``); a first touch is a cold miss.

Because a set's accesses keep their relative order under a stable sort
by set index, each stack-distance query becomes "count distinct values
in a window of the set-grouped stream".  Every repeat access is located
by a stable sort by address (consecutive entries of one address group
are consecutive occurrences of that line), and its window is the open
interval between the two occurrences' set-grouped positions.  Distinct
counting is answered exactly with an OR-sparse-table over per-set line
bitmasks:

* every distinct line gets a bit position (its rank among the distinct
  lines of *its own set* — windows never cross sets, so sets can share
  bit positions);
* level ``k`` of the table ORs masks over spans of ``2**k``; because OR
  is idempotent, two overlapping spans cover any window ``[s, e)`` with
  ``2**k <= e - s < 2**(k+1)`` exactly;
* the popcount of the covering OR is the distinct-line count.

The table uses the narrowest lane type the per-set footprint permits
(8/16/32/64-bit); lines beyond 64 distinct per set spill into
additional 64-bit lanes — windows stay within one set, so a foreign
lane contributes zero.  Deep windows (rare in cache streams: a long
window almost always holds ``ways`` distinct lines early) are not
served by deep table levels; the table is capped where the query
histogram's tail thins out and deeper windows are swept with
overlapping capped spans, dropping each as a proven miss the moment a
partial cover reaches ``ways`` distinct lines.

Two exact shortcuts carry most streams:

* a window shorter than ``ways`` cannot hold ``ways`` distinct lines —
  a *free hit*, no counting needed;
* a set whose **total** distinct-line footprint fits its ways never
  evicts, so every non-cold access to it hits.  When that holds for
  every set (the usual case for a roomy outer level), the whole window
  machinery is skipped.

Everything is numpy; the only Python-level loops are over table levels
(``<= log2(stream)``), bitmask lanes (usually one), deep-sweep rounds
(each ends in one round for typical cache geometries), and touched sets
when rebuilding the final LRU stacks.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.exceptions import SimulationError

__all__ = ["batch_lru"]

_LANE_BITS = 64

# Sort plans memoised per immutable stream: the address-sort structure
# (and, per set count, the set-grouped positions) depend only on the
# stream itself, never on the associativity, so repeated simulations of
# one compiled trace — the §V-C study hammers each geometry's stream
# through the same hierarchy for many variants — skip both full-stream
# argsorts after the first call.  Keyed by array identity, guarded by a
# weakref so a collected stream cannot alias a recycled id.
_PLAN_CACHE: dict[int, tuple[weakref.ref, dict]] = {}


def _plan_for(stream: np.ndarray) -> dict:
    """The mutable sort-plan dict for ``stream``.

    Only arrays that own their data and are marked read-only (the
    compiled-trace contract) are memoised — anything else gets a
    throwaway per-call dict, since a writable stream may change between
    calls.
    """
    if stream.flags.writeable or stream.base is not None:
        return {}
    key = id(stream)
    entry = _PLAN_CACHE.get(key)
    if entry is not None and entry[0]() is stream:
        return entry[1]
    plan: dict = {}
    ref = weakref.ref(stream, lambda _r, key=key: _PLAN_CACHE.pop(key, None))
    _PLAN_CACHE[key] = (ref, plan)
    return plan


def _smallest_uint(max_value: int) -> np.dtype:
    """Narrowest unsigned dtype holding ``max_value`` (sort-key shrink)."""
    for dtype in (np.uint8, np.uint16, np.uint32):
        if max_value <= np.iinfo(dtype).max:
            return np.dtype(dtype)
    return np.dtype(np.uint64)


def _set_keys(full: np.ndarray, n_sets: int) -> np.ndarray:
    """``addr % n_sets`` as the narrowest sort key.

    For power-of-two set counts the mod is a bit-mask, which also
    matches Python's floored ``%`` for negative addresses.
    """
    dtype = _smallest_uint(n_sets - 1)
    if n_sets & (n_sets - 1) == 0:
        return (full & (n_sets - 1)).astype(dtype)
    return (full % n_sets).astype(dtype)


def _floor_log2(values: np.ndarray) -> np.ndarray:
    """Exact ``floor(log2(v))`` for positive integers ``v``.

    Reads the IEEE exponent field directly; the float conversion is
    exact below the mantissa width, so the exponent *is* the floor.
    """
    if int(values.max()) < (1 << 24):
        bits = values.astype(np.float32).view(np.uint32)
        return (bits >> np.uint32(23)).astype(np.int16) - np.int16(127)
    bits = values.astype(np.float64).view(np.uint64)
    return (bits >> np.uint64(52)).astype(np.int16) - np.int16(1023)


def _as_int_stream(values: np.ndarray) -> np.ndarray:
    """A 1-D contiguous integer view/copy of an address array.

    Integer dtypes pass through untouched (an int32 stream stays int32
    — half the memory traffic of a forced widening); anything else is
    cast to int64 as before.
    """
    arr = np.ascontiguousarray(values)
    if not np.issubdtype(arr.dtype, np.integer):
        arr = arr.astype(np.int64)
    return arr


def batch_lru(
    line_addrs: np.ndarray,
    n_sets: int,
    ways: int,
    *,
    prefix: np.ndarray | None = None,
) -> tuple[np.ndarray, dict[int, list[int]]]:
    """Simulate one true-LRU level over a whole line-address stream.

    Parameters
    ----------
    line_addrs:
        1-D integer array of line addresses, in access order.
    n_sets, ways:
        Level geometry; the set of an address is ``addr % n_sets``.
    prefix:
        Optional warm-start replay: the level's current contents as a
        flat address array, each set's resident lines in LRU→MRU order
        (concatenation order across sets is irrelevant).  Replaying at
        most ``ways`` distinct lines per set into a cold cache restores
        the exact pre-existing state; the replay's hit flags are
        discarded.

    Returns
    -------
    (hits, stacks):
        ``hits[i]`` is the scalar oracle's hit/miss decision for
        ``line_addrs[i]``; ``stacks`` maps every *touched* set index to
        its final resident lines in LRU→MRU order (untouched sets keep
        whatever state the caller holds for them).
    """
    addrs = _as_int_stream(line_addrs)
    if addrs.ndim != 1:
        raise SimulationError("line address stream must be one-dimensional")
    n_batch = addrs.size
    if prefix is not None and len(prefix):
        full = np.concatenate([_as_int_stream(prefix), addrs])
    else:
        full = addrs
    n = full.size
    if n == 0:
        return np.zeros(0, dtype=bool), {}
    pos_dtype = np.int32 if n < (1 << 31) else np.int64

    plan = _plan_for(full)
    if "addr_order" not in plan:
        # Same-line chains: a stable sort by address groups the
        # occurrences of each line, consecutive within a group in trace
        # order.  The key only needs to *separate* distinct addresses,
        # so shift to zero and take the narrowest dtype that still
        # holds the range.
        lo = int(full.min())
        key_dtype = _smallest_uint(int(full.max()) - lo)
        if lo == 0:
            addr_keys = full.astype(key_dtype)
        else:
            addr_keys = (full - lo).astype(key_dtype)
        addr_order = np.argsort(addr_keys, kind="stable").astype(
            pos_dtype, copy=False
        )
        sorted_keys = addr_keys[addr_order]
        same_as_prev = sorted_keys[1:] == sorted_keys[:-1]
        # Distinct lines: first/last occurrence of each address group.
        first_idx = np.append(0, np.flatnonzero(~same_as_prev) + 1)
        last_idx = np.append(first_idx[1:] - 1, n - 1)
        plan["addr_order"] = addr_order
        plan["same_as_prev"] = same_as_prev
        plan["group_sizes"] = np.diff(np.append(first_idx, n))
        plan["first_at"] = addr_order[first_idx]  # first trace position
        plan["last_seen"] = addr_order[last_idx]  # per line
        plan["unique_addrs"] = full[plan["first_at"]]
    addr_order = plan["addr_order"]
    same_as_prev = plan["same_as_prev"]
    group_sizes = plan["group_sizes"]
    first_at = plan["first_at"]
    last_seen = plan["last_seen"]
    unique_addrs = plan["unique_addrs"]

    n_lines = unique_addrs.size
    line_sets = (
        unique_addrs & (n_sets - 1)
        if n_sets & (n_sets - 1) == 0
        else unique_addrs % n_sets
    )
    by_set = np.argsort(line_sets, kind="stable")
    set_sorted = line_sets[by_set]
    set_start_mask = np.empty(n_lines, dtype=bool)
    set_start_mask[0] = True
    set_start_mask[1:] = set_sorted[1:] != set_sorted[:-1]
    set_starts = np.flatnonzero(set_start_mask)
    set_counts = np.diff(np.append(set_starts, n_lines))

    max_footprint = int(set_counts.max())
    if max_footprint <= ways:
        # No set can ever evict: every non-cold access hits — i.e.
        # everything except each line's first occurrence.  The whole
        # window machinery (including the set-grouped sort and even the
        # repeat-position arrays) is skipped.
        hits = np.ones(n, dtype=bool)
        hits[first_at] = False
    else:
        # Set-grouped order: a stable sort by set keeps each set's
        # accesses in trace order, so stack-distance windows are
        # contiguous runs.  Everything past the two full-stream sorts
        # works on adjacent *pairs* of the address-sorted stream — pair
        # ``p`` joins sorted entries ``p`` and ``p + 1``, which are
        # consecutive occurrences of one line exactly where
        # ``same_as_prev[p]`` holds; cold misses are already decided.
        grouped_key = ("grouped", n_sets)
        if grouped_key not in plan:
            order = np.argsort(_set_keys(full, n_sets), kind="stable")
            g_pos = np.empty(n, dtype=pos_dtype)
            g_pos[order] = np.arange(n, dtype=pos_dtype)
            del order
            grouped_of_sorted = g_pos[addr_order]
            # A repeat's window is the open interval between the pair's
            # grouped positions: ``gap - 1`` accesses of the same set.
            plan[grouped_key] = (
                grouped_of_sorted,
                grouped_of_sorted[1:] - grouped_of_sorted[:-1],
            )
        grouped_of_sorted, gap = plan[grouped_key]
        hit_pair = gap <= ways  # window < ways: free hits
        if int(set_counts.min()) <= ways:
            # Mixed footprints: accesses to never-evicting sets hit
            # regardless of window length; decide them here.
            small_line = np.empty(n_lines, dtype=bool)
            small_line[by_set] = np.repeat(set_counts <= ways, set_counts)
            hit_pair |= np.repeat(small_line, group_sizes)[1:]
        hit_pair &= same_as_prev
        query = np.flatnonzero(same_as_prev & ~hit_pair)  # pair indices

        if query.size:
            q_start = grouped_of_sorted[query] + 1
            q_end = grouped_of_sorted[query + 1]
            levels = _floor_log2(gap[query] - 1)
            max_level = int(levels.max())
            if max_footprint > _LANE_BITS:
                lane_bits, lanes = _LANE_BITS, -(-max_footprint // _LANE_BITS)
                table_dtype = np.dtype(np.uint64)
            else:
                lane_bits, lanes = _LANE_BITS, 1
                table_dtype = _smallest_uint((1 << max_footprint) - 1)
            # Deep windows are rare; instead of building table levels
            # for them, cap the table where the level histogram's tail
            # gets thin and sweep deep windows with capped spans below.
            if lanes == 1 and max_level > 2:
                tail = query.size - np.cumsum(np.bincount(levels))
                thin = np.flatnonzero(tail <= query.size // 8)
                cap = max(2, min(int(thin[0]), max_level)) if thin.size else max_level
            else:
                cap = max_level
            # Bucket queries by table level so each level is one gather.
            level_order = np.argsort(levels.astype(np.uint8), kind="stable")
            level_sorted = levels[level_order]
            bounds = np.searchsorted(level_sorted, np.arange(cap + 2, dtype=np.int64))
            deep = level_order[bounds[cap + 1] :]
            distinct = np.zeros(query.size, dtype=np.int32)
            rank_sorted = np.arange(n_lines, dtype=np.int64) - np.repeat(
                set_starts, set_counts
            )
            rank = np.empty(n_lines, dtype=np.int64)
            rank[by_set] = rank_sorted
            one = table_dtype.type(1)
            table = np.empty(n, dtype=table_dtype)
            spare = np.empty(n, dtype=table_dtype)
            for lane in range(lanes):
                if lanes == 1:
                    # ranks < lane width, so a truncating cast is exact
                    # even if the shift promoted to a wider type.
                    lane_masks = (one << rank.astype(table_dtype)).astype(
                        table_dtype, copy=False
                    )
                else:
                    lane_masks = np.where(
                        (rank // lane_bits) == lane,
                        one << (rank % lane_bits).astype(table_dtype),
                        table_dtype.type(0),
                    )
                # Level-0 table: each grouped position's line-bit.
                table[grouped_of_sorted] = np.repeat(lane_masks, group_sizes)
                size = n
                for level in range(cap + 1):
                    selected = level_order[bounds[level] : bounds[level + 1]]
                    if selected.size:
                        span = np.int64(1) << level
                        covering = (
                            table[q_start[selected]]
                            | table[q_end[selected] - span]
                        )
                        distinct[selected] += np.bitwise_count(
                            covering
                        ).astype(np.int32)
                    if level < cap:
                        width = 1 << level
                        size -= width
                        np.bitwise_or(
                            table[:size], table[width : size + width],
                            out=spare[:size],
                        )
                        table, spare = spare, table
                if deep.size:
                    # Sweep each deep window with overlapping capped
                    # spans (OR is idempotent, so overlap is harmless);
                    # a partial cover already holding `ways` distinct
                    # lines proves a miss — drop it early.
                    span = np.int64(1) << cap
                    d_start = q_start[deep].astype(np.int64)
                    d_end = q_end[deep].astype(np.int64)
                    live = np.arange(deep.size, dtype=np.int64)
                    cover = table[d_start]
                    nxt = d_start + span
                    while live.size:
                        counts = np.bitwise_count(cover).astype(np.int32)
                        done = (counts >= ways) | (nxt >= d_end)
                        if done.any():
                            distinct[deep[live[done]]] = counts[done]
                            keep = ~done
                            live = live[keep]
                            cover = cover[keep]
                            nxt = nxt[keep]
                            d_end = d_end[keep]
                        if not live.size:
                            break
                        cover = cover | table[np.minimum(nxt, d_end - span)]
                        nxt = nxt + span
            hit_pair[query[distinct < ways]] = True
        # Back to trace order: sorted entry 0 is a first occurrence
        # (cold), entry p + 1 hits iff its incoming pair does.
        hit_sorted = np.empty(n, dtype=bool)
        hit_sorted[0] = False
        hit_sorted[1:] = hit_pair
        hits = np.empty(n, dtype=bool)
        hits[addr_order] = hit_sorted

    # Final LRU stacks: a line is resident iff it is among its set's
    # `ways` most recently used distinct lines; stack order (LRU→MRU)
    # is ascending last-occurrence.
    by_recency = np.lexsort((last_seen, line_sets))
    recency_sets = line_sets[by_recency]
    group_ends = np.append(
        np.flatnonzero(recency_sets[1:] != recency_sets[:-1]) + 1, n_lines
    )
    group_starts = np.append(0, group_ends[:-1])
    addr_list = unique_addrs[by_recency].tolist()  # Python ints, one pass
    set_list = recency_sets[group_starts].tolist()
    stacks: dict[int, list[int]] = {}
    for set_index, start, end in zip(
        set_list, group_starts.tolist(), group_ends.tolist()
    ):
        stacks[set_index] = addr_list[max(start, end - ways) : end]

    return hits[n - n_batch :], stacks

"""A small set-associative cache simulator.

The FMM study's traffic counters (:mod:`repro.fmm.counters`) are an
analytic model of what a profiler would report.  This package provides
the ground-check: an actual LRU cache hierarchy simulated over the
U-list phase's real address stream, so the counter model's *shape
assumptions* — DRAM re-fetch falling with block size, the L1→L2 refill
ratio growing with the working-set footprint, cache traffic scaling
with interaction pairs — can be validated against a mechanism instead
of asserted.

* :mod:`repro.cachesim.cache` — set-associative LRU levels and a
  two-level hierarchy with per-level byte counters;
* :mod:`repro.cachesim.fmmtrace` — the reference U-list variant's
  address stream and its simulation harness.
"""

from repro.cachesim.cache import CacheHierarchy, CacheLevel, HierarchyCounters
from repro.cachesim.fmmtrace import TraceResult, simulate_ulist_traffic

__all__ = [
    "CacheLevel",
    "CacheHierarchy",
    "HierarchyCounters",
    "simulate_ulist_traffic",
    "TraceResult",
]

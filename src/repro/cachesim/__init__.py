"""A small set-associative cache simulator.

The FMM study's traffic counters (:mod:`repro.fmm.counters`) are an
analytic model of what a profiler would report.  This package provides
the ground-check: an actual LRU cache hierarchy simulated over the
U-list phase's real address stream, so the counter model's *shape
assumptions* — DRAM re-fetch falling with block size, the L1→L2 refill
ratio growing with the working-set footprint, cache traffic scaling
with interaction pairs — can be validated against a mechanism instead
of asserted.

* :mod:`repro.cachesim.cache` — set-associative LRU levels and a
  two-level hierarchy with per-level byte counters, each with a scalar
  per-access path and a batched whole-stream path;
* :mod:`repro.cachesim.batchlru` — the exact array-LRU engine behind
  the batched path (stack distances via an OR-sparse-table);
* :mod:`repro.cachesim.fmmtrace` — the reference U-list variant's
  address stream (compiled or replayed) and its simulation harness.
"""

from repro.cachesim.batchlru import batch_lru
from repro.cachesim.cache import CacheHierarchy, CacheLevel, HierarchyCounters
from repro.cachesim.fmmtrace import (
    CompiledTrace,
    TraceResult,
    compile_ulist_trace,
    simulate_ulist_traffic,
)

__all__ = [
    "CacheLevel",
    "CacheHierarchy",
    "HierarchyCounters",
    "CompiledTrace",
    "batch_lru",
    "compile_ulist_trace",
    "simulate_ulist_traffic",
    "TraceResult",
]

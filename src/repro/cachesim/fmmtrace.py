"""The U-list phase's address stream, simulated through real caches.

Memory layout (matching §V-C's single-precision data):

* source records: 16 B each (x, y, z, density), packed in point order;
* potentials: 4 B each, in a separate region.

Access pattern of the reference variant (plain cached loads, no
register blocking): target leaves are processed block-by-block
(``targets_per_block`` points per block); for each source leaf in the
target leaf's U-list, every *warp* of the block streams all of that
leaf's source records (one coalesced access per record per warp — 32
threads reading the same record broadcast).  Each target's potential is
read once at block start and written once at block end.

:func:`simulate_ulist_traffic` runs that stream through a
:class:`~repro.cachesim.cache.CacheHierarchy` and reports the measured
per-level traffic next to the analytic counter model's estimate for the
same geometry — the validation the tests and the ablation bench lean on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cachesim.cache import CacheHierarchy, HierarchyCounters
from repro.exceptions import SimulationError
from repro.fmm.counters import POINT_BYTES, TrafficCounters, count_traffic
from repro.fmm.tree import Octree
from repro.fmm.variants import MemoryPath, Variant

__all__ = ["TraceResult", "simulate_ulist_traffic"]

_WARP = 32
_PHI_BYTES = 4


@dataclass(frozen=True)
class TraceResult:
    """Measured (simulated) versus modelled traffic for one variant."""

    variant: Variant
    measured: HierarchyCounters
    modelled: TrafficCounters
    pairs: int

    @property
    def measured_l1_bytes_per_pair(self) -> float:
        return self.measured.l1_bytes / self.pairs

    @property
    def modelled_l1_bytes_per_pair(self) -> float:
        return self.modelled.q_l1 / self.pairs

    @property
    def measured_refill_ratio(self) -> float:
        """L2-served over L1-served bytes — the l2_refill_ratio analogue."""
        if self.measured.l1_bytes == 0:
            return 0.0
        return self.measured.l2_bytes / self.measured.l1_bytes


def simulate_ulist_traffic(
    tree: Octree,
    ulist: list[list[int]],
    variant: Variant,
    *,
    hierarchy: CacheHierarchy | None = None,
) -> TraceResult:
    """Run one L1/L2-path variant's address stream through real caches.

    Only the plain cached path is meaningful here (shared/texture
    variants move their reuse outside L1/L2 by construction).
    """
    if variant.path is not MemoryPath.L1L2:
        raise SimulationError(
            "cache-trace validation applies to L1/L2-path variants only"
        )
    caches = hierarchy or CacheHierarchy.gtx580_like()
    caches.reset()

    n = tree.n_points
    phi_base = n * POINT_BYTES  # potentials live after the point records

    pairs = 0
    tpb = variant.targets_per_block
    for leaf in tree.leaves:
        targets = leaf.points
        for block_start in range(0, len(targets), tpb):
            block = targets[block_start : block_start + tpb]
            warps = math.ceil(len(block) / _WARP)
            # Read each target's running potential once per block.
            for t in block:
                caches.access_bytes(phi_base + int(t) * _PHI_BYTES, _PHI_BYTES)
            for source_leaf_index in ulist[leaf.index]:
                source_points = tree.leaves[source_leaf_index].points
                for _ in range(warps):
                    for s in source_points:
                        caches.access_bytes(int(s) * POINT_BYTES, POINT_BYTES)
                pairs += len(block) * len(source_points)
            # Write back the potentials (modelled as a read-for-ownership).
            for t in block:
                caches.access_bytes(phi_base + int(t) * _PHI_BYTES, _PHI_BYTES)

    return TraceResult(
        variant=variant,
        measured=caches.counters(),
        modelled=count_traffic(tree, ulist, variant),
        pairs=pairs,
    )

"""The U-list phase's address stream, simulated through real caches.

Memory layout (matching §V-C's single-precision data):

* source records: 16 B each (x, y, z, density), packed in point order;
* potentials: 4 B each, in a separate region.

Access pattern of the reference variant (plain cached loads, no
register blocking): target leaves are processed block-by-block
(``targets_per_block`` points per block); for each source leaf in the
target leaf's U-list, every *warp* of the block streams all of that
leaf's source records (one coalesced access per record per warp — 32
threads reading the same record broadcast).  Each target's potential is
read once at block start and written once at block end.

Two engines produce the same counters:

* ``engine="scalar"`` replays the stream one ``access_bytes`` call at a
  time — the oracle the property tests trust;
* ``engine="batch"`` (default) *compiles* the stream into one int64
  line-address array (:func:`compile_ulist_trace`) and pushes it
  through :meth:`~repro.cachesim.cache.CacheHierarchy.simulate`, the
  array-LRU fast path — bit-identical counters at a fraction of the
  cost.

:func:`simulate_ulist_traffic` reports the measured per-level traffic
next to the analytic counter model's estimate for the same geometry —
the validation the tests and the ablation bench lean on.
"""

from __future__ import annotations

import math
import weakref
from dataclasses import dataclass

import numpy as np

from repro.cachesim.cache import CacheHierarchy, HierarchyCounters
from repro.exceptions import SimulationError
from repro.fmm.counters import POINT_BYTES, TrafficCounters, count_traffic
from repro.fmm.tree import Octree
from repro.fmm.variants import MemoryPath, Variant

__all__ = [
    "CompiledTrace",
    "TraceResult",
    "compile_ulist_trace",
    "simulate_ulist_traffic",
]

_WARP = 32
_PHI_BYTES = 4


@dataclass(frozen=True)
class TraceResult:
    """Measured (simulated) versus modelled traffic for one variant."""

    variant: Variant
    measured: HierarchyCounters
    modelled: TrafficCounters
    pairs: int

    @property
    def measured_l1_bytes_per_pair(self) -> float:
        return self.measured.l1_bytes / self.pairs

    @property
    def modelled_l1_bytes_per_pair(self) -> float:
        return self.modelled.q_l1 / self.pairs

    @property
    def measured_refill_ratio(self) -> float:
        """L2-served over L1-served bytes — the l2_refill_ratio analogue."""
        if self.measured.l1_bytes == 0:
            return 0.0
        return self.measured.l2_bytes / self.measured.l1_bytes


@dataclass(frozen=True)
class CompiledTrace:
    """One variant's U-list stream as a flat line-address array.

    ``line_addrs`` holds one entry per cache-line touch, in exact access
    order — the same order the scalar engine's ``access_bytes`` calls
    produce.  ``pairs`` is the interaction-pair count of the traversal.
    """

    line_addrs: np.ndarray
    pairs: int

    @property
    def n_accesses(self) -> int:
        return int(self.line_addrs.size)


def _check_variant(variant: Variant) -> None:
    if variant.path is not MemoryPath.L1L2:
        raise SimulationError(
            "cache-trace validation applies to L1/L2-path variants only"
        )


def _ragged_arange(counts: np.ndarray, dtype=np.int64) -> np.ndarray:
    """``concatenate([arange(c) for c in counts])`` without the loop."""
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=dtype)
    starts = (np.cumsum(counts) - counts).astype(dtype, copy=False)
    return np.arange(total, dtype=dtype) - np.repeat(starts, counts)


def _expand_lines(
    byte_addrs: np.ndarray, sizes: np.ndarray, line_bytes: int
) -> np.ndarray:
    """Expand sized reads to the line touches each range spans."""
    first = byte_addrs // line_bytes
    last = (byte_addrs + sizes - 1) // line_bytes
    counts = last - first + 1
    return np.repeat(first, counts) + _ragged_arange(counts)


#: Per-tree flat geometry (leaf sizes, CSR point storage, U-list CSR).
#: These are variant-independent, so a study compiling many variants on
#: one tree pays the Python-side list flattening once.  Keyed by tree
#: identity with a weakref eviction callback (trees are unhashable);
#: the entry pins the ulist it was built from and is rebuilt if a
#: different ulist object arrives for the same tree.
_GEOMETRY_CACHE: dict[int, tuple] = {}


def _flat_geometry(tree: Octree, ulist: list[list[int]]) -> tuple:
    """Flat geometry plus the entry's compiled-trace memo dict."""
    key = id(tree)
    entry = _GEOMETRY_CACHE.get(key)
    if entry is not None:
        tree_ref, cached_ulist, geometry, traces = entry
        if tree_ref() is tree and cached_ulist is ulist:
            return geometry, traces

    leaves = tree.leaves
    n_leaves = len(leaves)
    # Point indices stay well inside int32 for any tree this package
    # can build; positions within one trace are checked per call.
    point_dtype = np.int32 if tree.n_points < (1 << 31) else np.int64

    # Leaf geometry as flat arrays: sizes, CSR point-index storage.
    sizes = np.array([leaf.points.size for leaf in leaves], dtype=np.int64)
    points = (
        np.concatenate([leaf.points for leaf in leaves]).astype(point_dtype)
        if n_leaves
        else np.zeros(0, dtype=point_dtype)
    )
    offsets = np.append(0, np.cumsum(sizes))

    # U-list as CSR: neighbour leaf indices plus, per leaf, the total
    # source-point count of one sweep over its whole U-list.
    nbr_counts = np.array([len(u) for u in ulist], dtype=np.int64)
    neighbours = (
        np.concatenate([np.asarray(u, dtype=np.int64) for u in ulist])
        if int(nbr_counts.sum())
        else np.zeros(0, dtype=np.int64)
    )
    nbr_offsets = np.append(0, np.cumsum(nbr_counts))
    sweep_cumsum = np.append(0, np.cumsum(sizes[neighbours]))
    sweep_len = sweep_cumsum[nbr_offsets[1:]] - sweep_cumsum[nbr_offsets[:-1]]

    geometry = (sizes, points, offsets, nbr_counts, neighbours, nbr_offsets, sweep_len)
    traces: dict[tuple[int, int], CompiledTrace] = {}
    _GEOMETRY_CACHE[key] = (
        weakref.ref(tree, lambda _, key=key: _GEOMETRY_CACHE.pop(key, None)),
        ulist,
        geometry,
        traces,
    )
    return geometry, traces


def compile_ulist_trace(
    tree: Octree,
    ulist: list[list[int]],
    variant: Variant,
    *,
    line_bytes: int = 128,
) -> CompiledTrace:
    """Emit one variant's full U-list address stream as a line array.

    The stream is identical — access for access — to the scalar replay
    in :func:`simulate_ulist_traffic`'s ``engine="scalar"`` path: per
    target block, the φ reads, then per U-list source leaf ``warps``
    sweeps over its records, then the φ writes; sized reads expand to
    every line their byte range spans.  The per-access arrays use the
    narrowest index type the trace permits (int32 for any realistic
    geometry) — the streams are memory-bound to build, so width is
    speed.

    The stream depends on the variant only through its target-block
    size, so compiled traces are memoised per ``(tree, ulist,
    targets_per_block, line_bytes)`` — the §V-C study's 160 L1/L2
    variants compile just five distinct traces.  The returned arrays
    are marked read-only because they are shared between calls.
    """
    _check_variant(variant)
    if len(ulist) != tree.n_leaves:
        raise SimulationError(
            f"ulist has {len(ulist)} entries for {tree.n_leaves} leaves"
        )
    if line_bytes <= 0:
        raise SimulationError("line size must be positive")

    n_leaves = tree.n_leaves
    phi_base = tree.n_points * POINT_BYTES
    tpb = variant.targets_per_block
    geometry, traces = _flat_geometry(tree, ulist)
    cached = traces.get((tpb, line_bytes))
    if cached is not None:
        return cached
    sizes, points, offsets, nbr_counts, neighbours, nbr_offsets, sweep_len = geometry

    # Target blocks: ceil(leaf size / tpb) per leaf, last one ragged.
    blocks_per_leaf = -(-sizes // tpb)
    n_blocks = int(blocks_per_leaf.sum())
    if n_blocks == 0:
        return CompiledTrace(np.zeros(0, dtype=np.int64), 0)
    block_leaf = np.repeat(np.arange(n_leaves, dtype=np.int64), blocks_per_leaf)
    block_index = _ragged_arange(blocks_per_leaf)
    block_start = block_index * tpb
    block_size = np.minimum(sizes[block_leaf] - block_start, tpb)
    block_warps = -(-block_size // _WARP)

    # Segment layout per block: φ reads | source sweeps | φ writes.
    src_len = block_warps * sweep_len[block_leaf]
    seg_offsets = np.append(0, np.cumsum(2 * block_size + src_len))
    total = int(seg_offsets[-1])
    max_addr = phi_base + tree.n_points * _PHI_BYTES
    idx = np.int32 if max(total, max_addr) < (1 << 31) else np.int64
    # Per-block bases, pre-narrowed so the big expansions stay narrow.
    seg_base = seg_offsets[:-1].astype(idx)
    bsize = block_size.astype(idx)
    bsrc = src_len.astype(idx)
    byte_addrs = np.empty(total, dtype=idx)

    # φ reads and writes: the block's target points, in leaf order.
    phi_block = np.repeat(np.arange(n_blocks, dtype=idx), block_size)
    phi_within = _ragged_arange(block_size, dtype=idx)
    phi_targets = points[
        (offsets[block_leaf] + block_start).astype(idx)[phi_block] + phi_within
    ]
    phi_addr = (phi_base + phi_targets * _PHI_BYTES).astype(idx, copy=False)
    read_pos = seg_base[phi_block] + phi_within
    write_pos = read_pos + bsize[phi_block] + bsrc[phi_block]
    byte_addrs[read_pos] = phi_addr
    byte_addrs[write_pos] = phi_addr

    # Source sweeps: for every (block, neighbour) pair, `warps` copies
    # of the neighbour leaf's point records, in point order.  All the
    # repeats preserve generation order, so the emissions land in the
    # exact scalar iteration order.
    pair_count = nbr_counts[block_leaf]
    pair_block = np.repeat(np.arange(n_blocks, dtype=idx), pair_count)
    pair_within = _ragged_arange(pair_count, dtype=idx)
    pair_source = neighbours[
        nbr_offsets[:-1][block_leaf].astype(idx)[pair_block] + pair_within
    ]
    sweep_of_pair = np.repeat(
        np.arange(pair_block.size, dtype=idx), block_warps[pair_block]
    )
    sweep_source = pair_source[sweep_of_pair]
    emit_counts = sizes[sweep_source]
    src_total = int(emit_counts.sum())
    # Emission index k of sweep s reads point `offsets[leaf(s)] + k -
    # emit_start(s)`: one per-sweep base shift replaces per-emission
    # sweep-id and within-sweep index arrays.
    emit_shift = (offsets[sweep_source] - (np.cumsum(emit_counts) - emit_counts)).astype(idx)
    source_points = points[
        np.repeat(emit_shift, emit_counts) + np.arange(src_total, dtype=idx)
    ]
    # Likewise emission k of block b lands at stream position
    # `seg_base[b] + bsize[b] + k - src_start(b)`.
    src_shift = seg_base + bsize - (np.cumsum(src_len) - src_len).astype(idx)
    src_pos = np.repeat(src_shift, src_len) + np.arange(src_total, dtype=idx)
    byte_addrs[src_pos] = (source_points * POINT_BYTES).astype(idx, copy=False)

    pairs = int(np.sum(block_size * sweep_len[block_leaf]))

    if line_bytes % POINT_BYTES == 0:
        # 16 B records and 4 B potentials never straddle such a line:
        # one touch per access (a shift when the line size is a power
        # of two — addresses are non-negative, so it is the floor div).
        if line_bytes & (line_bytes - 1) == 0:
            line_addrs = byte_addrs >> (line_bytes.bit_length() - 1)
        else:
            line_addrs = byte_addrs // line_bytes
    else:
        is_source = np.zeros(total, dtype=bool)
        is_source[src_pos] = True
        access_sizes = np.where(is_source, POINT_BYTES, _PHI_BYTES)
        line_addrs = _expand_lines(byte_addrs, access_sizes, line_bytes)
    line_addrs.setflags(write=False)
    trace = CompiledTrace(line_addrs=line_addrs, pairs=pairs)
    traces[(tpb, line_bytes)] = trace
    return trace


def _replay_scalar(
    tree: Octree,
    ulist: list[list[int]],
    variant: Variant,
    caches: CacheHierarchy,
) -> int:
    """The original per-access Python loop (the oracle); returns pairs."""
    phi_base = tree.n_points * POINT_BYTES
    pairs = 0
    tpb = variant.targets_per_block
    for leaf in tree.leaves:
        targets = leaf.points
        for block_start in range(0, len(targets), tpb):
            block = targets[block_start : block_start + tpb]
            warps = math.ceil(len(block) / _WARP)
            # Read each target's running potential once per block.
            for t in block:
                caches.access_bytes(phi_base + int(t) * _PHI_BYTES, _PHI_BYTES)
            for source_leaf_index in ulist[leaf.index]:
                source_points = tree.leaves[source_leaf_index].points
                for _ in range(warps):
                    for s in source_points:
                        caches.access_bytes(int(s) * POINT_BYTES, POINT_BYTES)
                pairs += len(block) * len(source_points)
            # Write back the potentials (modelled as a read-for-ownership).
            for t in block:
                caches.access_bytes(phi_base + int(t) * _PHI_BYTES, _PHI_BYTES)
    return pairs


def simulate_ulist_traffic(
    tree: Octree,
    ulist: list[list[int]],
    variant: Variant,
    *,
    hierarchy: CacheHierarchy | None = None,
    engine: str = "batch",
) -> TraceResult:
    """Run one L1/L2-path variant's address stream through real caches.

    Only the plain cached path is meaningful here (shared/texture
    variants move their reuse outside L1/L2 by construction).  The
    default ``engine="batch"`` compiles the stream and simulates it
    with the array-LRU path; ``engine="scalar"`` replays it one access
    at a time.  Both produce identical counters.
    """
    _check_variant(variant)
    if engine not in ("batch", "scalar"):
        raise SimulationError(f"unknown trace engine {engine!r}")
    caches = hierarchy or CacheHierarchy.gtx580_like()
    caches.reset()

    if engine == "batch":
        compiled = compile_ulist_trace(
            tree, ulist, variant, line_bytes=caches.l1.line_bytes
        )
        caches.simulate(compiled.line_addrs)
        pairs = compiled.pairs
    else:
        pairs = _replay_scalar(tree, ulist, variant, caches)

    return TraceResult(
        variant=variant,
        measured=caches.counters(),
        modelled=count_traffic(tree, ulist, variant),
        pairs=pairs,
    )

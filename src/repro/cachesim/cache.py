"""Set-associative LRU caches with exact byte accounting.

Deliberately simple and exact: one :class:`CacheLevel` is ``sets ×
ways`` tag slots with true-LRU replacement; a :class:`CacheHierarchy`
chains levels (inclusive, read-only modelling — adequate for the FMM
source stream, which is read-dominated).  Counters report, per level,
how many accesses and bytes it served, plus the bytes that fell through
to memory — the quantities the analytic traffic model estimates.

Each level offers two equivalent access paths: the scalar
:meth:`CacheLevel.access` (one Python call per touch — the oracle the
property tests trust) and the batched :meth:`CacheLevel.access_lines` /
:meth:`CacheHierarchy.simulate` (whole address streams at once through
:mod:`repro.cachesim.batchlru`).  Both update the same counters and the
same per-set LRU state, bit-identically, and may be interleaved freely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cachesim.batchlru import batch_lru
from repro.exceptions import SimulationError

__all__ = ["CacheLevel", "HierarchyCounters", "CacheHierarchy"]


class CacheLevel:
    """One set-associative, true-LRU cache level."""

    def __init__(self, name: str, *, size_bytes: int, ways: int, line_bytes: int):
        if size_bytes <= 0 or ways <= 0 or line_bytes <= 0:
            raise SimulationError("cache geometry must be positive")
        if size_bytes % (ways * line_bytes) != 0:
            raise SimulationError(
                f"{name}: size {size_bytes} not divisible by ways*line "
                f"({ways}*{line_bytes})"
            )
        self.name = name
        self.line_bytes = line_bytes
        self.ways = ways
        self.n_sets = size_bytes // (ways * line_bytes)
        # Per-set LRU stacks: most-recently-used at the end.
        self._sets: list[list[int]] = [[] for _ in range(self.n_sets)]
        self.accesses = 0
        self.hits = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def size_bytes(self) -> int:
        return self.n_sets * self.ways * self.line_bytes

    def access(self, line_addr: int) -> bool:
        """Touch one line (address already line-aligned); True on hit."""
        self.accesses += 1
        index = line_addr % self.n_sets
        stack = self._sets[index]
        if line_addr in stack:
            self.hits += 1
            stack.remove(line_addr)
            stack.append(line_addr)
            return True
        if len(stack) >= self.ways:
            stack.pop(0)  # evict LRU
        stack.append(line_addr)
        return False

    def access_lines(self, line_addrs: np.ndarray) -> np.ndarray:
        """Touch a whole line-address stream at once; hit flag per access.

        Bit-identical to calling :meth:`access` in a loop — counters and
        the per-set LRU stacks end up in exactly the same state — but
        runs as a handful of array operations.  Pre-existing contents
        are honoured by replaying each set's current stack as a warm-up
        prefix (exact: at most ``ways`` distinct lines per set replay
        into an empty cache without evicting).
        """
        addrs = np.ascontiguousarray(line_addrs)
        if addrs.ndim != 1:
            raise SimulationError("line address stream must be one-dimensional")
        if addrs.size == 0:
            return np.zeros(0, dtype=bool)
        resident = [line for stack in self._sets for line in stack]
        prefix = np.array(resident, dtype=np.int64) if resident else None
        hits, stacks = batch_lru(addrs, self.n_sets, self.ways, prefix=prefix)
        self.accesses += addrs.size
        self.hits += int(np.count_nonzero(hits))
        for set_index, stack in stacks.items():
            self._sets[set_index] = stack
        return hits

    def reset(self) -> None:
        """Clear contents and counters."""
        self._sets = [[] for _ in range(self.n_sets)]
        self.accesses = 0
        self.hits = 0


@dataclass(frozen=True, slots=True)
class HierarchyCounters:
    """Byte accounting after a simulated trace.

    ``l1_bytes``/``l2_bytes`` are bytes *served by* each level (an
    access touches L1 always; L2 only on an L1 miss); ``dram_bytes``
    are line fills from memory.  These mirror the profiler counters the
    analytic model estimates.
    """

    accesses: int
    l1_bytes: float
    l2_bytes: float
    dram_bytes: float
    l1_hit_rate: float
    l2_hit_rate: float


class CacheHierarchy:
    """An inclusive two-level (L1 → L2) read hierarchy over DRAM."""

    def __init__(self, l1: CacheLevel, l2: CacheLevel):
        if l1.line_bytes != l2.line_bytes:
            raise SimulationError("levels must share a line size (simplification)")
        if l2.size_bytes <= l1.size_bytes:
            raise SimulationError("L2 must be larger than L1")
        self.l1 = l1
        self.l2 = l2
        self.dram_lines = 0

    @classmethod
    def gtx580_like(cls) -> "CacheHierarchy":
        """Per-SM L1 (16 KB, 4-way) over a 768 KB 16-way L2, 128 B lines."""
        return cls(
            CacheLevel("L1", size_bytes=16 * 1024, ways=4, line_bytes=128),
            CacheLevel("L2", size_bytes=768 * 1024, ways=16, line_bytes=128),
        )

    def access_line(self, line_addr: int) -> None:
        """One line-granular read through the hierarchy."""
        if not self.l1.access(line_addr):
            if not self.l2.access(line_addr):
                self.dram_lines += 1

    def simulate(self, line_addrs: np.ndarray) -> HierarchyCounters:
        """Run a whole line-address stream through the hierarchy at once.

        Equivalent — counter for counter, stack for stack — to calling
        :meth:`access_line` per address: every access touches L1, the
        L1 misses flow to L2 *in their original order* (L2's decisions
        are independent of when L1 hits interleave), and L2 misses fill
        from memory.  Continues from the current cache state; callers
        wanting a cold simulation should :meth:`reset` first.
        """
        addrs = np.ascontiguousarray(line_addrs)
        if addrs.ndim != 1:
            raise SimulationError("line address stream must be one-dimensional")
        l1_hits = self.l1.access_lines(addrs)
        misses = addrs[~l1_hits]
        l2_hits = self.l2.access_lines(misses)
        self.dram_lines += int(misses.size - np.count_nonzero(l2_hits))
        return self.counters()

    def access_bytes(self, addr: int, size: int) -> None:
        """A sized read: touches every line the range spans."""
        if size <= 0:
            raise SimulationError("access size must be positive")
        line = self.l1.line_bytes
        first = addr // line
        last = (addr + size - 1) // line
        for line_addr in range(first, last + 1):
            self.access_line(line_addr)

    def counters(self) -> HierarchyCounters:
        """Snapshot the byte accounting."""
        line = self.l1.line_bytes
        return HierarchyCounters(
            accesses=self.l1.accesses,
            l1_bytes=float(self.l1.accesses * line),
            l2_bytes=float(self.l2.accesses * line),
            dram_bytes=float(self.dram_lines * line),
            l1_hit_rate=(self.l1.hits / self.l1.accesses) if self.l1.accesses else 0.0,
            l2_hit_rate=(self.l2.hits / self.l2.accesses) if self.l2.accesses else 0.0,
        )

    def reset(self) -> None:
        self.l1.reset()
        self.l2.reset()
        self.dram_lines = 0

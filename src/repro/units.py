"""Unit helpers for the energy-roofline model.

The paper's quantities span ~15 orders of magnitude: picojoules per flop,
gigaflops per second, watts, nanoseconds.  Internally the library works in
**strict SI base units** — seconds, joules, watts, flops, bytes — and this
module provides the conversion constants and formatting helpers used at API
boundaries.  Keeping all internal math in SI avoids the classic unit-mixing
bugs (pJ vs J, GB/s vs B/s) that plague energy-model implementations.

Conventions
-----------
* ``tau``-style parameters (time per op) are seconds per flop / per byte.
* ``epsilon``-style parameters (energy per op) are joules per flop / per byte.
* Rates (``GFLOP/s``, ``GB/s``) convert via :data:`GIGA`.
* Intensity is flops per byte throughout, matching the paper's figures.
"""

from __future__ import annotations

import math
from typing import Final

# ---------------------------------------------------------------------------
# SI prefixes
# ---------------------------------------------------------------------------

FEMTO: Final[float] = 1e-15
PICO: Final[float] = 1e-12
NANO: Final[float] = 1e-9
MICRO: Final[float] = 1e-6
MILLI: Final[float] = 1e-3
KILO: Final[float] = 1e3
MEGA: Final[float] = 1e6
GIGA: Final[float] = 1e9
TERA: Final[float] = 1e12
PETA: Final[float] = 1e15

#: Bytes per word used when a profile is expressed in words (double precision).
BYTES_PER_DOUBLE: Final[int] = 8
#: Bytes per single-precision word.
BYTES_PER_SINGLE: Final[int] = 4


def gflops_to_flops_per_second(gflops: float) -> float:
    """Convert a GFLOP/s rate to flop/s."""
    return gflops * GIGA


def flops_per_second_to_gflops(rate: float) -> float:
    """Convert a flop/s rate to GFLOP/s."""
    return rate / GIGA


def gbytes_to_bytes_per_second(gbs: float) -> float:
    """Convert a GB/s bandwidth to B/s."""
    return gbs * GIGA


def bytes_per_second_to_gbytes(rate: float) -> float:
    """Convert a B/s bandwidth to GB/s."""
    return rate / GIGA


def time_per_flop_from_gflops(gflops: float) -> float:
    """Peak throughput (GFLOP/s) -> seconds per flop (``tau_flop``).

    This is the paper's Table II derivation: a 515 GFLOP/s device has
    ``tau_flop = (515e9)**-1 ~= 1.9 ps`` per flop.
    """
    if gflops <= 0:
        raise ValueError(f"throughput must be positive, got {gflops}")
    return 1.0 / gflops_to_flops_per_second(gflops)


def time_per_byte_from_gbytes(gbs: float) -> float:
    """Peak bandwidth (GB/s) -> seconds per byte (``tau_mem``)."""
    if gbs <= 0:
        raise ValueError(f"bandwidth must be positive, got {gbs}")
    return 1.0 / gbytes_to_bytes_per_second(gbs)


def picojoules(pj: float) -> float:
    """Convert picojoules to joules."""
    return pj * PICO


def to_picojoules(joules: float) -> float:
    """Convert joules to picojoules."""
    return joules / PICO


def to_picoseconds(seconds: float) -> float:
    """Convert seconds to picoseconds (Table II's ``tau`` display unit)."""
    return seconds / PICO


def milliseconds(ms: float) -> float:
    """Convert milliseconds to seconds (CLI/protocol boundary helper)."""
    return ms * MILLI


def to_milliseconds(seconds: float) -> float:
    """Convert seconds to milliseconds (latency/phase display unit)."""
    return seconds / MILLI


#: Divisor between a percentage and its dimensionless ratio.
PERCENT: Final[float] = 100.0


def percent(pct: float) -> float:
    """Convert a percentage to a dimensionless ratio (CLI boundary helper)."""
    return pct / PERCENT


def to_percent(ratio: float) -> float:
    """Convert a dimensionless ratio to a percentage (display unit)."""
    return ratio * PERCENT


def joules_per_flop_to_gflops_per_joule(epsilon: float) -> float:
    """Energy per flop (J) -> energy efficiency (GFLOP/J).

    The reciprocal relationship used on the paper's arch-line y-axes:
    e.g. 829 pJ/flop -> ~1.2 GFLOP/J (GTX 580 double precision).
    """
    if epsilon <= 0:
        raise ValueError(f"energy per flop must be positive, got {epsilon}")
    return 1.0 / (epsilon * GIGA)


def format_si(value: float, unit: str, *, digits: int = 3) -> str:
    """Render ``value`` with an auto-selected SI prefix.

    >>> format_si(1.9e-12, 's')
    '1.9 ps'
    >>> format_si(5.15e11, 'FLOP/s')
    '515 GFLOP/s'
    """
    if value == 0:
        return f"0 {unit}"
    if not math.isfinite(value):
        return f"{value} {unit}"
    prefixes = [
        (1e12, "T"),
        (1e9, "G"),
        (1e6, "M"),
        (1e3, "k"),
        (1.0, ""),
        (1e-3, "m"),
        (1e-6, "u"),
        (1e-9, "n"),
        (1e-12, "p"),
        (1e-15, "f"),
    ]
    mag = abs(value)
    for scale, prefix in prefixes:
        if mag >= scale:
            scaled = value / scale
            return f"{scaled:.{digits}g} {prefix}{unit}"
    scale, prefix = prefixes[-1]
    return f"{value / scale:.{digits}g} {prefix}{unit}"


def log2_grid(lo: float, hi: float, points_per_octave: int = 8) -> list[float]:
    """Logarithmically spaced grid between ``lo`` and ``hi`` (inclusive).

    Used to sample intensity axes, which the paper plots in log base 2.
    """
    if lo <= 0 or hi <= 0:
        raise ValueError("grid bounds must be positive")
    if hi < lo:
        raise ValueError(f"hi ({hi}) must be >= lo ({lo})")
    if points_per_octave < 1:
        raise ValueError("points_per_octave must be >= 1")
    lo_l, hi_l = math.log2(lo), math.log2(hi)
    n = max(2, int(round((hi_l - lo_l) * points_per_octave)) + 1)
    step = (hi_l - lo_l) / (n - 1)
    return [2.0 ** (lo_l + i * step) for i in range(n)]

"""Hardware spec sheets — the paper's Table III.

A :class:`HardwareSpec` records the manufacturer-claimed peaks: single- and
double-precision throughput, memory bandwidth, and the chip-only TDP.  Time
cost coefficients (``τ_flop``, ``τ_mem``) derive from these; energy
coefficients do not (no vendor publishes them), which is why the paper
fits them from measurements (Table IV, :mod:`repro.core.fitting`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ParameterError
from repro.units import time_per_byte_from_gbytes, time_per_flop_from_gflops

__all__ = ["HardwareSpec", "GTX580_SPEC", "I7_950_SPEC", "PLATFORM_TABLE"]


@dataclass(frozen=True, slots=True)
class HardwareSpec:
    """Manufacturer peaks for one platform (Table III row).

    Attributes
    ----------
    device:
        ``"CPU"`` or ``"GPU"``.
    model:
        Marketing name.
    peak_sp_gflops, peak_dp_gflops:
        Peak single/double-precision throughput, GFLOP/s.
    bandwidth_gbytes:
        Peak memory bandwidth, GB/s.
    tdp_watts:
        Chip-only thermal design power / maximum rating, watts.
    """

    device: str
    model: str
    peak_sp_gflops: float
    peak_dp_gflops: float
    bandwidth_gbytes: float
    tdp_watts: float

    def __post_init__(self) -> None:
        for attr in ("peak_sp_gflops", "peak_dp_gflops", "bandwidth_gbytes", "tdp_watts"):
            if getattr(self, attr) <= 0:
                raise ParameterError(f"{attr} must be positive")
        if self.peak_dp_gflops > self.peak_sp_gflops:
            raise ParameterError(
                "double-precision peak cannot exceed single-precision peak"
            )

    def tau_flop(self, *, double_precision: bool) -> float:
        """Seconds per flop at the selected precision."""
        peak = self.peak_dp_gflops if double_precision else self.peak_sp_gflops
        return time_per_flop_from_gflops(peak)

    @property
    def tau_mem(self) -> float:
        """Seconds per byte of DRAM traffic."""
        return time_per_byte_from_gbytes(self.bandwidth_gbytes)

    def b_tau(self, *, double_precision: bool) -> float:
        """Time-balance at the selected precision (flops per byte)."""
        peak = self.peak_dp_gflops if double_precision else self.peak_sp_gflops
        return peak / self.bandwidth_gbytes

    def table_row(self) -> str:
        """One Table III-style text row."""
        return (
            f"{self.device:<5}{self.model:<26}{self.peak_sp_gflops:>9.2f} "
            f"({self.peak_dp_gflops:.2f})  {self.bandwidth_gbytes:>7.1f}  "
            f"{self.tdp_watts:>6.0f}"
        )


#: Intel Core i7-950 (quad-core Nehalem) — Table III first row.
I7_950_SPEC = HardwareSpec(
    device="CPU",
    model="Intel Core i7-950",
    peak_sp_gflops=106.56,
    peak_dp_gflops=53.28,
    bandwidth_gbytes=25.6,
    tdp_watts=130.0,
)

#: NVIDIA GeForce GTX 580 (Fermi consumer part) — Table III second row.
#: The 244 W figure is NVIDIA's maximum graphics-card power for the part,
#: which §V-B uses as the power cap that clips the single-precision
#: powerline.
GTX580_SPEC = HardwareSpec(
    device="GPU",
    model="NVIDIA GeForce GTX 580",
    peak_sp_gflops=1581.06,
    peak_dp_gflops=197.63,
    bandwidth_gbytes=192.4,
    tdp_watts=244.0,
)

#: Table III in row order.
PLATFORM_TABLE: tuple[HardwareSpec, ...] = (I7_950_SPEC, GTX580_SPEC)

"""Machine catalog: the paper's platforms as ready-made model instances.

* :mod:`repro.machines.specs` — spec-sheet data (Table III) as
  :class:`~repro.machines.specs.HardwareSpec`.
* :mod:`repro.machines.catalog` — named :class:`~repro.core.params.MachineModel`
  instances combining Table III peaks with Table IV fitted energy
  coefficients (and the Table II Keckler-Fermi estimates).
"""

from repro.machines.catalog import (
    MACHINES,
    get_machine,
    gtx580_double,
    gtx580_single,
    i7_950_double,
    i7_950_single,
    keckler_fermi,
    list_machines,
)
from repro.machines.specs import (
    GTX580_SPEC,
    I7_950_SPEC,
    HardwareSpec,
)

__all__ = [
    "HardwareSpec",
    "GTX580_SPEC",
    "I7_950_SPEC",
    "MACHINES",
    "get_machine",
    "list_machines",
    "keckler_fermi",
    "gtx580_single",
    "gtx580_double",
    "i7_950_single",
    "i7_950_double",
]

"""Named machine models combining Tables II, III, and IV.

Four device-precision combinations drive the paper's Figs. 4–5:

=====================  ==========  ==========  ==========  =======
 machine                ε_flop      ε_mem       π0          cap
=====================  ==========  ==========  ==========  =======
 ``gtx580-single``      99.7 pJ     513 pJ/B    122 W       244 W
 ``gtx580-double``      212 pJ      513 pJ/B    122 W       244 W
 ``i7-950-single``      371 pJ      795 pJ/B    122 W       130 W
 ``i7-950-double``      670 pJ      795 pJ/B    122 W       130 W
=====================  ==========  ==========  ==========  =======

plus the Table II "Keckler-Fermi" literature estimate (515 GFLOP/s,
144 GB/s, 25 pJ/flop, 360 pJ/B, π0 = 0) used in the theoretical Fig. 2.
"""

from __future__ import annotations

from repro.core.params import MachineModel
from repro.exceptions import ParameterError
from repro.machines.specs import GTX580_SPEC, I7_950_SPEC
from repro.units import picojoules

__all__ = [
    "keckler_fermi",
    "gtx580_single",
    "gtx580_double",
    "i7_950_single",
    "i7_950_double",
    "MACHINES",
    "get_machine",
    "list_machines",
    "resolve_machine",
]

# Table IV fitted energy coefficients (ground truth for our simulator).
_GTX580_EPS_SINGLE = picojoules(99.7)
_GTX580_EPS_DOUBLE = picojoules(212.0)
_GTX580_EPS_MEM = picojoules(513.0)
_I7_EPS_SINGLE = picojoules(371.0)
_I7_EPS_DOUBLE = picojoules(670.0)
_I7_EPS_MEM = picojoules(795.0)
#: "As it happens, the π0 coefficients turned out to be identical to three
#: digits on the two platforms." (Table IV caption.)
_PI0 = 122.0


def keckler_fermi() -> MachineModel:
    """Table II: the NVIDIA Fermi estimates from Keckler et al. [14].

    π0 = 0 by the paper's assumption in §II-C; balance points work out to
    ``Bτ ≈ 3.6`` and ``Bε = 14.4`` flops per byte, the dashed verticals of
    Fig. 2.
    """
    return MachineModel.from_peaks(
        "Keckler-Fermi (Table II, double)",
        gflops=515.0,
        gbytes_per_s=144.0,
        eps_flop=picojoules(25.0),
        eps_mem=picojoules(360.0),
        pi0=0.0,
    )


def gtx580_single() -> MachineModel:
    """GTX 580 at single precision (Tables III + IV)."""
    return MachineModel(
        name="NVIDIA GTX 580 (single)",
        tau_flop=GTX580_SPEC.tau_flop(double_precision=False),
        tau_mem=GTX580_SPEC.tau_mem,
        eps_flop=_GTX580_EPS_SINGLE,
        eps_mem=_GTX580_EPS_MEM,
        pi0=_PI0,
        power_cap=GTX580_SPEC.tdp_watts,
    )


def gtx580_double() -> MachineModel:
    """GTX 580 at double precision (Tables III + IV)."""
    return MachineModel(
        name="NVIDIA GTX 580 (double)",
        tau_flop=GTX580_SPEC.tau_flop(double_precision=True),
        tau_mem=GTX580_SPEC.tau_mem,
        eps_flop=_GTX580_EPS_DOUBLE,
        eps_mem=_GTX580_EPS_MEM,
        pi0=_PI0,
        power_cap=GTX580_SPEC.tdp_watts,
    )


def i7_950_single() -> MachineModel:
    """Core i7-950 at single precision (Tables III + IV)."""
    return MachineModel(
        name="Intel i7-950 (single)",
        tau_flop=I7_950_SPEC.tau_flop(double_precision=False),
        tau_mem=I7_950_SPEC.tau_mem,
        eps_flop=_I7_EPS_SINGLE,
        eps_mem=_I7_EPS_MEM,
        pi0=_PI0,
        power_cap=None,
    )


def i7_950_double() -> MachineModel:
    """Core i7-950 at double precision (Tables III + IV)."""
    return MachineModel(
        name="Intel i7-950 (double)",
        tau_flop=I7_950_SPEC.tau_flop(double_precision=True),
        tau_mem=I7_950_SPEC.tau_mem,
        eps_flop=_I7_EPS_DOUBLE,
        eps_mem=_I7_EPS_MEM,
        pi0=_PI0,
        power_cap=None,
    )


#: Registry of catalog machines by CLI-friendly key.
MACHINES: dict[str, "_MachineFactory"] = {}


class _MachineFactory:
    """Lazy machine constructor with a docstring-derived description."""

    def __init__(self, key: str, builder):
        self.key = key
        self.builder = builder
        doc = (builder.__doc__ or "").strip().splitlines()
        self.description = doc[0] if doc else key

    def __call__(self) -> MachineModel:
        return self.builder()


for _key, _builder in (
    ("keckler-fermi", keckler_fermi),
    ("gtx580-single", gtx580_single),
    ("gtx580-double", gtx580_double),
    ("i7-950-single", i7_950_single),
    ("i7-950-double", i7_950_double),
):
    MACHINES[_key] = _MachineFactory(_key, _builder)


def get_machine(key: str) -> MachineModel:
    """Construct a catalog machine by key.

    Raises :class:`~repro.exceptions.ParameterError` for unknown keys,
    listing the valid ones.
    """
    try:
        factory = MACHINES[key]
    except KeyError:
        raise ParameterError(
            f"unknown machine {key!r}; available: {', '.join(sorted(MACHINES))}"
        ) from None
    return factory()


def list_machines() -> list[tuple[str, str]]:
    """(key, description) pairs for every catalog machine."""
    return [(key, MACHINES[key].description) for key in sorted(MACHINES)]


def resolve_machine(key_or_path: str) -> MachineModel:
    """Resolve a machine reference: catalog key, or path to a JSON file.

    This is the single lookup path shared by the CLI and the serving
    layer.  A value ending in ``.json`` (or naming an existing file)
    loads via :func:`repro.machines.io.load_machine`; anything else is a
    catalog key.  Every failure mode — unknown key, missing file,
    malformed JSON, invalid parameters — raises
    :class:`~repro.exceptions.ParameterError` so callers can turn it
    into one clean diagnostic instead of a traceback.
    """
    from pathlib import Path

    candidate = Path(key_or_path)
    if key_or_path.endswith(".json") or candidate.is_file():
        from json import JSONDecodeError

        from repro.machines.io import load_machine

        try:
            return load_machine(candidate)
        except OSError as exc:
            raise ParameterError(
                f"cannot read machine file {key_or_path!r}: {exc}"
            ) from exc
        except JSONDecodeError as exc:
            raise ParameterError(
                f"machine file {key_or_path!r} is not valid JSON: {exc}"
            ) from exc
    return get_machine(key_or_path)

"""Machine definitions on disk: load and save JSON machine files.

Users characterising their own hardware (`energy-roofline fit`) need a
place to keep the result.  A machine file is a small JSON document:

.. code-block:: json

    {
      "name": "my-accelerator",
      "tau_flop": 2.0e-12,
      "tau_mem": 5.0e-12,
      "eps_flop": 8.0e-11,
      "eps_mem": 4.0e-10,
      "pi0": 60.0,
      "power_cap": 250.0
    }

Alternatively, peaks may be given instead of times (mirroring
:meth:`MachineModel.from_peaks`): ``gflops`` + ``gbytes_per_s`` replace
``tau_flop`` + ``tau_mem``.  Unknown keys are an error — silently
ignoring a typo like ``"eps_flops"`` would corrupt every downstream
analysis.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.params import MachineModel
from repro.exceptions import ParameterError

__all__ = ["machine_from_dict", "machine_to_dict", "load_machine", "save_machine"]

_TIME_KEYS = {"tau_flop", "tau_mem"}
_PEAK_KEYS = {"gflops", "gbytes_per_s"}
_COMMON_KEYS = {"name", "eps_flop", "eps_mem", "pi0", "power_cap"}


def machine_from_dict(data: dict) -> MachineModel:
    """Build a :class:`MachineModel` from a parsed machine document."""
    if not isinstance(data, dict):
        raise ParameterError(f"machine document must be an object, got {type(data)}")
    keys = set(data)
    unknown = keys - _TIME_KEYS - _PEAK_KEYS - _COMMON_KEYS
    if unknown:
        raise ParameterError(
            f"unknown machine keys {sorted(unknown)}; "
            f"allowed: {sorted(_TIME_KEYS | _PEAK_KEYS | _COMMON_KEYS)}"
        )
    missing_common = {"name", "eps_flop", "eps_mem"} - keys
    if missing_common:
        raise ParameterError(f"machine document missing {sorted(missing_common)}")
    has_time = _TIME_KEYS <= keys
    has_peaks = _PEAK_KEYS <= keys
    if has_time == has_peaks:
        raise ParameterError(
            "specify exactly one of (tau_flop + tau_mem) or "
            "(gflops + gbytes_per_s)"
        )
    common = dict(
        eps_flop=float(data["eps_flop"]),
        eps_mem=float(data["eps_mem"]),
        pi0=float(data.get("pi0", 0.0)),
        power_cap=(
            float(data["power_cap"]) if data.get("power_cap") is not None else None
        ),
    )
    if has_time:
        return MachineModel(
            name=str(data["name"]),
            tau_flop=float(data["tau_flop"]),
            tau_mem=float(data["tau_mem"]),
            **common,
        )
    return MachineModel.from_peaks(
        str(data["name"]),
        gflops=float(data["gflops"]),
        gbytes_per_s=float(data["gbytes_per_s"]),
        **common,
    )


def machine_to_dict(machine: MachineModel) -> dict:
    """Serialise a machine to the canonical (time-coefficient) document."""
    doc = {
        "name": machine.name,
        "tau_flop": machine.tau_flop,
        "tau_mem": machine.tau_mem,
        "eps_flop": machine.eps_flop,
        "eps_mem": machine.eps_mem,
        "pi0": machine.pi0,
    }
    if machine.power_cap is not None:
        doc["power_cap"] = machine.power_cap
    return doc


def load_machine(path: str | Path) -> MachineModel:
    """Read a machine JSON file."""
    target = Path(path)
    try:
        data = json.loads(target.read_text())
    except json.JSONDecodeError as exc:
        raise ParameterError(f"{target}: not valid JSON ({exc})") from exc
    return machine_from_dict(data)


def save_machine(machine: MachineModel, path: str | Path) -> Path:
    """Write a machine JSON file; returns the path."""
    target = Path(path)
    target.write_text(json.dumps(machine_to_dict(machine), indent=2) + "\n")
    return target

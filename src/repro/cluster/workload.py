"""Distributed workloads: (W, Q_local, Q_net(p)).

A distributed workload extends the two-level characterisation with a
third traffic class — bytes crossing the network — whose *total volume
depends on the node count*: scaling out usually means communicating
more in aggregate, and that dependence is exactly what decides how far
energy-flat strong scaling reaches.

Canonical instances (communication volumes from the standard
communication-cost literature):

* **SUMMA matmul** — total network volume ``Θ(n²·√p)`` words (each of
  the ``√p × √p`` process grid's rows/columns broadcasts its panels);
* **halo-exchange stencil** — volume ``Θ(n²·p^{1/3})`` per sweep for a
  3-D domain decomposition (surface-to-volume);
* **allreduce** — volume ``Θ(n·p)`` total for a vector reduction
  (``2·n`` words per node in a bandwidth-optimal ring).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.core.algorithm import AlgorithmProfile
from repro.exceptions import ProfileError
from repro.units import BYTES_PER_DOUBLE

__all__ = [
    "DistributedWorkload",
    "summa_matmul_workload",
    "stencil_halo_workload",
    "allreduce_workload",
]


@dataclass(frozen=True)
class DistributedWorkload:
    """A divisible workload with a p-dependent network volume.

    Attributes
    ----------
    name:
        Label for reports.
    work:
        Total useful operations across the whole run (flops).
    local_traffic:
        Total node-local slow-memory traffic across all nodes (bytes);
        assumed to split evenly (weak assumption, standard for
        well-balanced codes).
    net_traffic:
        ``p -> total network bytes``; must return 0 for ``p = 1``.
    """

    name: str
    work: float
    local_traffic: float
    net_traffic: Callable[[int], float]

    def __post_init__(self) -> None:
        if self.work <= 0:
            raise ProfileError(f"work must be positive, got {self.work}")
        if self.local_traffic < 0:
            raise ProfileError("local_traffic must be non-negative")
        # replint: ignore[RL005] -- structural contract: builders emit an exact 0.0 for p=1, nothing is computed
        if self.net_traffic(1) != 0.0:
            raise ProfileError("a single node must need no network traffic")

    def node_profile(self, p: int) -> AlgorithmProfile:
        """The per-node (W, Q_local) share at node count ``p``."""
        if p < 1:
            raise ProfileError(f"p must be >= 1, got {p}")
        return AlgorithmProfile(
            work=self.work / p,
            traffic=self.local_traffic / p,
            name=f"{self.name}/node(p={p})",
        )

    def net_bytes_per_node(self, p: int) -> float:
        """Network bytes each node sends/receives at node count ``p``."""
        if p < 1:
            raise ProfileError(f"p must be >= 1, got {p}")
        total = self.net_traffic(p)
        if total < 0:
            raise ProfileError(f"net_traffic({p}) returned a negative volume")
        return total / p


def summa_matmul_workload(
    n: int, *, word_bytes: int = BYTES_PER_DOUBLE
) -> DistributedWorkload:
    """SUMMA ``n×n`` matrix multiply.

    ``W = 2n³``; node-local traffic per the blocked single-node profile
    (each node streams its panels through its own memory ~twice); total
    network volume ``2·n²·√p`` words (panel broadcasts along both grid
    dimensions).
    """
    if n < 1:
        raise ProfileError("n must be >= 1")
    return DistributedWorkload(
        name=f"summa({n})",
        work=2.0 * n**3,
        local_traffic=4.0 * n * n * word_bytes,
        net_traffic=lambda p: (
            0.0 if p == 1 else 2.0 * n * n * math.sqrt(p) * word_bytes
        ),
    )


def stencil_halo_workload(
    n: int, *, sweeps: int = 1, word_bytes: int = BYTES_PER_DOUBLE
) -> DistributedWorkload:
    """7-point stencil on an ``n³`` grid with 3-D domain decomposition.

    Per sweep: 14 flops and 16 bytes per cell locally; each node's halo
    is ``6·(n/p^{1/3})²`` cells, so the total network volume is
    ``6·n²·p^{1/3}`` words per sweep.
    """
    if n < 1 or sweeps < 1:
        raise ProfileError("n and sweeps must be >= 1")
    cells = float(n) ** 3
    return DistributedWorkload(
        name=f"stencil-halo({n}^3 x{sweeps})",
        work=14.0 * cells * sweeps,
        local_traffic=16.0 * cells * sweeps,
        net_traffic=lambda p: (
            0.0
            if p == 1
            else 6.0 * n * n * p ** (1.0 / 3.0) * word_bytes * sweeps
        ),
    )


def allreduce_workload(
    n: int, *, word_bytes: int = BYTES_PER_DOUBLE
) -> DistributedWorkload:
    """Global sum of a length-``n`` distributed vector.

    ``W = n`` additions; local traffic one read per element.  A
    bandwidth-optimal ring allreduce sends ``2·n·(p−1)/p`` words per
    node (reduce-scatter + allgather), so the total network volume is
    ``2·n·(p−1)`` words — growing linearly in ``p``: the workload whose
    energy-flat scaling range collapses fastest.
    """
    if n < 1:
        raise ProfileError("n must be >= 1")
    return DistributedWorkload(
        name=f"allreduce({n})",
        work=float(n),
        local_traffic=float(n * word_bytes),
        net_traffic=lambda p: 2.0 * n * (p - 1) * word_bytes if p > 1 else 0.0,
    )

"""Distributed-memory extension: energy rooflines at cluster scale.

The paper's closest relative (§VI) is Demmel, Gearhart, Schwartz &
Lipshitz's *"Perfect strong scaling using no additional energy"*: on a
distributed machine, running ``p`` times more nodes can cut time by
``p`` while leaving total energy *flat* — until communication energy
catches up.  This package reproduces that analysis inside our model:

* :mod:`repro.cluster.workload` — distributed workloads: per-run work,
  node-local memory traffic, and a network-volume function of ``p``
  (SUMMA matmul, halo-exchange stencils, allreduce);
* :mod:`repro.cluster.model` — the cluster time/energy model: a node
  :class:`~repro.core.params.MachineModel` replicated ``p`` ways plus an
  interconnect with its own bandwidth and energy-per-byte, and the
  strong-scaling analyses (speedup, energy ratio, the energy-flat
  range and its breakdown point);
* :mod:`repro.cluster.iso` — iso-energy-efficiency curves ``n*(p)``
  (the Song-et-al. thread of §VI, made algorithm-explicit).
"""

from repro.cluster.iso import IsoEfficiencyAnalyzer, IsoPoint
from repro.cluster.model import ClusterModel, ScalingPoint
from repro.cluster.workload import (
    DistributedWorkload,
    allreduce_workload,
    stencil_halo_workload,
    summa_matmul_workload,
)

__all__ = [
    "ClusterModel",
    "IsoEfficiencyAnalyzer",
    "IsoPoint",
    "ScalingPoint",
    "DistributedWorkload",
    "summa_matmul_workload",
    "stencil_halo_workload",
    "allreduce_workload",
]

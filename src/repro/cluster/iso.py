"""Iso-energy-efficiency analysis (§VI: Song, Grove & Cameron).

The iso-efficiency idea, energy flavour: as a machine scales out, a
fixed problem's energy efficiency decays (communication and idle
constant power grow); to *hold* efficiency at a target level, the
problem must grow with the node count.  The function ``n*(p)`` — the
smallest problem size sustaining a target efficiency on ``p`` nodes —
is the workload's **iso-energy-efficiency curve**, and its growth rate
is the scalability verdict.  Unlike the original systems-centric model,
ours derives the curve from algorithmic quantities (the workload's
``W(n)``, ``Q(n)``, ``Q_net(n, p)``), which was the paper's complaint
about that line of work ("not explicit about algorithmic features").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cluster.model import ClusterModel
from repro.cluster.workload import DistributedWorkload
from repro.exceptions import ParameterError

__all__ = ["IsoPoint", "IsoEfficiencyAnalyzer"]


@dataclass(frozen=True, slots=True)
class IsoPoint:
    """One node count's minimum problem size for the target efficiency."""

    p: int
    n: int
    efficiency: float


class IsoEfficiencyAnalyzer:
    """Find problem sizes that sustain a target energy efficiency.

    Parameters
    ----------
    cluster:
        The machine.
    workload_family:
        ``n -> DistributedWorkload`` — a parametric algorithm
        (e.g. ``summa_matmul_workload``).
    """

    def __init__(
        self,
        cluster: ClusterModel,
        workload_family: Callable[[int], DistributedWorkload],
    ):
        self.cluster = cluster
        self.workload_family = workload_family

    # ------------------------------------------------------------------

    def efficiency(self, n: int, p: int) -> float:
        """Energy efficiency at ``(n, p)``, as a fraction of the node's
        flops-only ideal ``1/ε̂_flop`` — the arch line's normalisation
        lifted to cluster scale (so 1.0 is unreachable and 0.5 plays the
        role of the effective balance crossing)."""
        workload = self.workload_family(n)
        point = self.cluster.evaluate(workload, p)
        achieved = workload.work / point.energy
        return achieved * self.cluster.node.eps_flop_hat

    def iso_size(
        self,
        p: int,
        *,
        target: float,
        n_lo: int = 64,
        n_hi: int = 1 << 20,
    ) -> IsoPoint | None:
        """Smallest ``n`` in ``[n_lo, n_hi]`` with efficiency ≥ target.

        Returns ``None`` when even ``n_hi`` falls short.  Efficiency is
        monotone non-decreasing in ``n`` for the library's workload
        families (bigger problems amortise communication and idle
        energy), so bisection applies; the assumption is validated by a
        guard on the bracketing evaluations.
        """
        if not 0.0 < target < 1.0:
            raise ParameterError(f"target must be in (0, 1), got {target}")
        if n_lo < 1 or n_hi <= n_lo:
            raise ParameterError("need 1 <= n_lo < n_hi")
        eff_lo = self.efficiency(n_lo, p)
        eff_hi = self.efficiency(n_hi, p)
        if eff_hi < eff_lo - 1e-9:
            raise ParameterError(
                "efficiency is not non-decreasing in n for this family; "
                "iso-size bisection does not apply"
            )
        if eff_lo >= target:
            return IsoPoint(p=p, n=n_lo, efficiency=eff_lo)
        if eff_hi < target:
            return None
        lo, hi = n_lo, n_hi
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self.efficiency(mid, p) >= target:
                hi = mid
            else:
                lo = mid
        return IsoPoint(p=p, n=hi, efficiency=self.efficiency(hi, p))

    def curve(
        self, node_counts: list[int], *, target: float, n_hi: int = 1 << 20
    ) -> list[IsoPoint | None]:
        """The iso-efficiency curve ``n*(p)`` over several node counts."""
        if not node_counts:
            raise ParameterError("need at least one node count")
        return [
            self.iso_size(p, target=target, n_hi=n_hi)
            for p in sorted(set(node_counts))
        ]

    def describe(
        self, node_counts: list[int], *, target: float
    ) -> str:
        """Render the curve as a table."""
        points = self.curve(node_counts, target=target)
        lines = [
            f"iso-energy-efficiency: hold {target:.0%} of the flops-only "
            f"ideal on {self.cluster.node.name} nodes",
            f"{'p':>6}{'n*':>10}{'eff at n*':>11}",
        ]
        for p, point in zip(sorted(set(node_counts)), points):
            if point is None:
                lines.append(f"{p:>6}{'unreachable':>10}")
            else:
                lines.append(f"{point.p:>6}{point.n:>10}{point.efficiency:>11.3f}")
        return "\n".join(lines)

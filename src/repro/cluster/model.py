"""The cluster time/energy model and strong-scaling analysis.

A cluster is ``p`` identical nodes (each a
:class:`~repro.core.params.MachineModel`) joined by an interconnect with
per-node injection bandwidth ``net_bandwidth`` and energy cost
``eps_net`` per byte.  Per run:

* **time** — per-node, with overlap across all three resources
  (the eq. (3) philosophy extended one level):
  ``T(p) = max(W/p·τ_flop, Q_loc/p·τ_mem, Q_node_net(p)/net_bw)``;
* **energy** — nothing overlaps, everything sums (eq. (4) extended):
  ``E(p) = W·ε_flop + Q_loc·ε_mem + Q_net(p)·ε_net + p·π0·T(p)``.

The Demmel-et-al. observation falls straight out: while the computation
stays compute-bound, ``T(p) = T(1)/p`` so ``p·π0·T(p)`` is *constant* —
and dynamic compute/memory energy never depended on ``p`` — leaving
network energy as the only growth term.  Strong scaling is energy-flat
exactly until communication (energy or time) catches up, and
:meth:`ClusterModel.energy_flat_limit` finds that breakdown node count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.workload import DistributedWorkload
from repro.core.params import MachineModel
from repro.exceptions import ParameterError

__all__ = ["ScalingPoint", "ClusterModel"]


@dataclass(frozen=True, slots=True)
class ScalingPoint:
    """One node count's outcome for a workload."""

    p: int
    time: float
    energy: float
    energy_net: float
    energy_constant: float

    @property
    def power(self) -> float:
        """Whole-cluster average power (W)."""
        return self.energy / self.time


class ClusterModel:
    """``p`` replicated nodes plus an interconnect."""

    def __init__(
        self,
        node: MachineModel,
        *,
        net_bandwidth: float,
        eps_net: float,
        max_nodes: int = 1 << 20,
    ):
        if net_bandwidth <= 0:
            raise ParameterError("net_bandwidth must be positive (B/s per node)")
        if eps_net < 0:
            raise ParameterError("eps_net must be non-negative (J/B)")
        if max_nodes < 1:
            raise ParameterError("max_nodes must be >= 1")
        self.node = node
        self.net_bandwidth = net_bandwidth
        self.eps_net = eps_net
        self.max_nodes = max_nodes

    # ------------------------------------------------------------------

    def time(self, workload: DistributedWorkload, p: int) -> float:
        """Overlapped per-run time at node count ``p`` (s)."""
        self._check_p(p)
        share = workload.node_profile(p)
        t_flops = share.work * self.node.tau_flop
        t_mem = share.traffic * self.node.tau_mem
        t_net = workload.net_bytes_per_node(p) / self.net_bandwidth
        return max(t_flops, t_mem, t_net)

    def evaluate(self, workload: DistributedWorkload, p: int) -> ScalingPoint:
        """Time and full energy accounting at node count ``p``."""
        t = self.time(workload, p)
        e_net = workload.net_traffic(p) * self.eps_net
        e_const = p * self.node.pi0 * t
        energy = (
            workload.work * self.node.eps_flop
            + workload.local_traffic * self.node.eps_mem
            + e_net
            + e_const
        )
        return ScalingPoint(
            p=p, time=t, energy=energy, energy_net=e_net, energy_constant=e_const
        )

    # ------------------------------------------------------------------

    def strong_scaling(
        self, workload: DistributedWorkload, node_counts: list[int]
    ) -> list[ScalingPoint]:
        """Evaluate a list of node counts (need not be contiguous)."""
        if not node_counts:
            raise ParameterError("need at least one node count")
        return [self.evaluate(workload, p) for p in sorted(set(node_counts))]

    def speedup(self, workload: DistributedWorkload, p: int) -> float:
        """``T(1)/T(p)`` — at most ``p``; exactly ``p`` while
        communication stays hidden."""
        return self.time(workload, 1) / self.time(workload, p)

    def energy_ratio(self, workload: DistributedWorkload, p: int) -> float:
        """``E(p)/E(1)`` — 1.0 is the perfect-strong-scaling ideal."""
        return self.evaluate(workload, p).energy / self.evaluate(workload, 1).energy

    def energy_flat_limit(
        self,
        workload: DistributedWorkload,
        *,
        tolerance: float = 0.10,
    ) -> int:
        """Largest ``p ≤ max_nodes`` with ``E(p) ≤ (1 + tol)·E(1)``.

        Scans powers of two then bisects the breakdown octave.  Energy
        is monotone non-decreasing in ``p`` for the workloads here
        (network volume grows, the constant term can only grow once
        speedup saturates), making the bisection sound.
        """
        if tolerance <= 0:
            raise ParameterError("tolerance must be positive")
        budget = (1.0 + tolerance) * self.evaluate(workload, 1).energy

        if self.evaluate(workload, self.max_nodes).energy <= budget:
            return self.max_nodes
        lo = 1  # E(1) <= budget by construction
        hi = 2
        while self.evaluate(workload, hi).energy <= budget:
            lo = hi
            hi = min(hi * 2, self.max_nodes)
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self.evaluate(workload, mid).energy <= budget:
                lo = mid
            else:
                hi = mid
        return lo

    def describe_scaling(
        self, workload: DistributedWorkload, node_counts: list[int]
    ) -> str:
        """Strong-scaling table: speedup, energy ratio, component shares."""
        rows = self.strong_scaling(workload, node_counts)
        base = rows[0]
        lines = [
            f"strong scaling: {workload.name} on {self.node.name} nodes",
            f"{'p':>6}{'time':>12}{'speedup':>9}{'E(p)/E(1)':>11}"
            f"{'net %':>8}{'const %':>9}",
        ]
        for point in rows:
            lines.append(
                f"{point.p:>6}{point.time:>11.4g}s"
                f"{base.time / point.time:>9.1f}"
                f"{point.energy / base.energy:>11.3f}"
                f"{point.energy_net / point.energy:>8.1%}"
                f"{point.energy_constant / point.energy:>9.1%}"
            )
        return "\n".join(lines)

    def _check_p(self, p: int) -> None:
        if not 1 <= p <= self.max_nodes:
            raise ParameterError(
                f"p must be in [1, {self.max_nodes}], got {p}"
            )

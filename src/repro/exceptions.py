"""Typed exception hierarchy for the energy-roofline library.

All library-raised errors derive from :class:`ReproError` so callers can
catch model-level failures without masking programming errors.  Input
validation raises the most specific subclass available; ``ValueError`` and
``TypeError`` from the standard library are reserved for trivially local
argument checks (e.g. a negative count passed to a pure helper).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ParameterError(ReproError, ValueError):
    """A machine or algorithm parameter is out of its physical domain.

    Examples: negative time-per-flop, zero memory traffic with nonzero
    intensity requested, constant power below zero.
    """


class ProfileError(ReproError, ValueError):
    """An algorithm profile (W, Q) is inconsistent or unsupported."""


class FittingError(ReproError, RuntimeError):
    """Linear-regression fitting failed (rank deficiency, too few points)."""


class MeasurementError(ReproError, RuntimeError):
    """A simulated measurement session was misconfigured or failed."""


class SamplingError(MeasurementError):
    """Sampling-rate or channel configuration violates device limits.

    PowerMon 2 supports at most 1024 Hz per channel and 3072 Hz aggregate;
    exceeding either raises this error, mirroring the real device's limits.
    """


class SimulationError(ReproError, RuntimeError):
    """The device simulator was asked to execute an invalid kernel."""


class AutotuneError(ReproError, RuntimeError):
    """The microbenchmark auto-tuner could not find a feasible configuration."""


class ExperimentError(ReproError, RuntimeError):
    """An experiment in :mod:`repro.experiments` failed or is unknown."""


class TreeError(ReproError, ValueError):
    """FMM spatial-tree construction received invalid geometry."""


class ServiceError(ReproError, RuntimeError):
    """A model-serving request failed (see :mod:`repro.service`).

    Carries the wire-protocol error ``code`` (e.g. ``"bad_request"``,
    ``"overloaded"``, ``"deadline_exceeded"``) so programmatic clients
    can branch on the failure class without parsing the message, and
    the envelope's ``retriable`` hint so retry layers (client helper,
    scale-out router) can decide whether resending is safe.
    """

    #: Default for errors that don't say; subclasses may override.
    retriable: bool = False

    def __init__(self, code: str, message: str, *, retriable: bool | None = None):
        super().__init__(message)
        self.code = code
        self.message = message
        if retriable is not None:
            # Only pin an instance attribute when stated explicitly, so
            # subclasses that declare a class-level default (e.g. the
            # worker-crash error, always retriable) keep it.
            self.retriable = retriable

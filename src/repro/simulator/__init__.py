"""Simulated execution substrate standing in for the paper's testbed.

The paper measures real silicon (GTX 580, i7-950) with external power
instrumentation.  We have neither, so this package provides a *device
simulator* whose hidden ground truth is the paper's own fitted
coefficients (Table IV) plus the non-idealities the paper reports:
achieved-fraction limits on throughput and bandwidth, launch-parameter
tuning effects, and sustained power caps.

The crucial property: everything downstream (the PowerMon sampler, the
regression fitting, the figure harness) observes only what the authors
could observe — wall time and sampled instantaneous power — and must
*recover* the hidden coefficients.  That keeps the reproduction honest.

Modules
-------
* :mod:`repro.simulator.kernel` — kernel descriptions and launch configs.
* :mod:`repro.simulator.nonideal` — achieved fractions + tuning model.
* :mod:`repro.simulator.device` — the simulated device itself.
* :mod:`repro.simulator.trace` — ground-truth power-vs-time traces.
"""

from repro.simulator.device import (
    DeviceTruth,
    ExecutionResult,
    SimulatedDevice,
    gtx580_truth,
    i7_950_truth,
)
from repro.simulator.kernel import KernelSpec, LaunchConfig, Precision
from repro.simulator.nonideal import NonIdealities, TuningModel
from repro.simulator.trace import PowerTrace

__all__ = [
    "Precision",
    "LaunchConfig",
    "KernelSpec",
    "NonIdealities",
    "TuningModel",
    "DeviceTruth",
    "SimulatedDevice",
    "ExecutionResult",
    "PowerTrace",
    "gtx580_truth",
    "i7_950_truth",
]

"""The simulated device: hidden ground truth + execution engine.

:class:`DeviceTruth` bundles everything the real hardware "knows" and the
experimenter does not: true per-op energy costs (we seed them with the
paper's Table IV fits), constant and idle power, the sustained power cap,
achieved-fraction ceilings, and the launch-tuning landscape.

:class:`SimulatedDevice.execute` turns a :class:`KernelSpec` into an
:class:`ExecutionResult` with wall time and true energy:

1. throughput-limited time from the roofline with achieved fractions and
   tuning efficiency applied;
2. dynamic energy ``W·ε_flop + Q·ε_mem + Q_cache·ε_cache`` — spent
   regardless of speed;
3. power-cap throttling: if converting that dynamic energy over the ideal
   time would exceed the cap, time dilates so sustained power equals the
   cap (§V-B's physical mechanism);
4. total energy adds ``π0 × (actual time)``.

The result also carries the ground-truth :class:`PowerTrace` that the
PowerMon simulator samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.exceptions import SimulationError
from repro.machines.specs import GTX580_SPEC, I7_950_SPEC, HardwareSpec
from repro.simulator.kernel import KernelSpec, Precision
from repro.simulator.nonideal import NonIdealities, TuningModel
from repro.simulator.trace import PowerTrace
from repro.units import (
    bytes_per_second_to_gbytes,
    flops_per_second_to_gflops,
    picojoules,
)

__all__ = ["DeviceTruth", "ExecutionResult", "SimulatedDevice", "gtx580_truth", "i7_950_truth"]


@dataclass(frozen=True, slots=True)
class DeviceTruth:
    """Hidden ground-truth characterisation of a simulated device.

    Energy coefficients are joules; powers are watts.  ``eps_cache`` is
    the per-byte cost of traffic through the on-chip cache hierarchy —
    invisible to the two-level model, and the source of the §V-C
    underestimate.
    """

    name: str
    spec: HardwareSpec
    eps_single: float
    eps_double: float
    eps_mem: float
    eps_cache: float
    pi0: float
    idle_power: float
    power_cap: float | None
    nonideal_single: NonIdealities = field(default_factory=NonIdealities)
    nonideal_double: NonIdealities = field(default_factory=NonIdealities)
    tuning: TuningModel = field(default_factory=TuningModel)

    def __post_init__(self) -> None:
        for attr in ("eps_single", "eps_double", "eps_mem", "eps_cache"):
            if getattr(self, attr) < 0:
                raise SimulationError(f"{attr} must be >= 0")
        if self.pi0 < 0 or self.idle_power < 0:
            raise SimulationError("powers must be >= 0")
        if self.power_cap is not None and self.power_cap <= self.pi0:
            raise SimulationError("power_cap must exceed pi0")

    def eps_flop(self, precision: Precision) -> float:
        """True energy per flop at a precision (J)."""
        return self.eps_single if precision is Precision.SINGLE else self.eps_double

    def nonideal(self, precision: Precision) -> NonIdealities:
        """Achieved-fraction ceilings at a precision."""
        return (
            self.nonideal_single
            if precision is Precision.SINGLE
            else self.nonideal_double
        )

    def peak_flops(self, precision: Precision) -> float:
        """Spec-sheet peak at a precision (flop/s)."""
        return 1.0 / self.spec.tau_flop(
            double_precision=precision is Precision.DOUBLE
        )

    @property
    def peak_bandwidth(self) -> float:
        """Spec-sheet peak bandwidth (B/s)."""
        return 1.0 / self.spec.tau_mem


@dataclass(frozen=True, slots=True)
class ExecutionResult:
    """Outcome of one simulated kernel execution.

    ``time`` and the derived trace are observable; the energy breakdown
    fields are ground truth that only tests and oracles may touch (the
    measurement pipeline must recover energy from sampled power).
    """

    kernel: KernelSpec
    time: float
    energy_flops: float
    energy_mem: float
    energy_cache: float
    energy_constant: float
    throttle_factor: float

    @property
    def energy(self) -> float:
        """True total energy (J)."""
        return (
            self.energy_flops
            + self.energy_mem
            + self.energy_cache
            + self.energy_constant
        )

    @property
    def average_power(self) -> float:
        """True average power over the run (W)."""
        return self.energy / self.time

    @property
    def achieved_gflops(self) -> float:
        """Achieved arithmetic rate (GFLOP/s)."""
        return flops_per_second_to_gflops(self.kernel.work / self.time)

    @property
    def achieved_bandwidth_gbytes(self) -> float:
        """Achieved DRAM bandwidth (GB/s)."""
        return bytes_per_second_to_gbytes(self.kernel.traffic / self.time)

    @property
    def flops_per_joule(self) -> float:
        """Achieved energy efficiency (flop/J)."""
        return self.kernel.work / self.energy

    @property
    def throttled(self) -> bool:
        """Whether the power cap extended this run."""
        return self.throttle_factor > 1.0


class SimulatedDevice:
    """Executes kernels against a :class:`DeviceTruth`."""

    def __init__(self, truth: DeviceTruth):
        self.truth = truth

    # ------------------------------------------------------------------

    def effective_rates(
        self, kernel: KernelSpec, *, efficiency: float | None = None
    ) -> tuple[float, float]:
        """(flop rate, bandwidth) after fractions and tuning (per second).

        Tuning efficiency multiplies both pipelines: a badly launched
        kernel underutilises memory as much as arithmetic.  Pass
        ``efficiency`` to substitute a caller-supplied utilisation (used
        by code — like the FMM variant space — whose efficiency model
        lives outside the launch-parameter landscape).
        """
        truth = self.truth
        frac = truth.nonideal(kernel.precision)
        if efficiency is None:
            efficiency = truth.tuning.efficiency(kernel.launch)
        elif not 0.0 < efficiency <= 1.0:
            raise SimulationError(f"efficiency must be in (0, 1], got {efficiency}")
        flop_rate = truth.peak_flops(kernel.precision) * frac.flop_fraction * efficiency
        bandwidth = truth.peak_bandwidth * frac.bandwidth_fraction * efficiency
        return flop_rate, bandwidth

    def execute(
        self,
        kernel: KernelSpec,
        *,
        cache_traffic: float = 0.0,
        efficiency: float | None = None,
    ) -> ExecutionResult:
        """Run a kernel; returns time and (hidden) true energy.

        ``cache_traffic`` is the bytes moved through the on-chip cache
        hierarchy (beyond DRAM traffic) — zero for the streaming
        microbenchmarks, substantial for the FMM U-list variants.
        ``efficiency`` overrides the launch-derived tuning efficiency.
        """
        if cache_traffic < 0 or not math.isfinite(cache_traffic):
            raise SimulationError(f"cache_traffic must be >= 0, got {cache_traffic}")
        truth = self.truth
        flop_rate, bandwidth = self.effective_rates(kernel, efficiency=efficiency)

        t_flops = kernel.work / flop_rate
        t_mem = kernel.traffic / bandwidth if kernel.traffic else 0.0
        t_ideal = max(t_flops, t_mem)

        e_flops = kernel.work * truth.eps_flop(kernel.precision)
        e_mem = kernel.traffic * truth.eps_mem
        e_cache = cache_traffic * truth.eps_cache
        e_dynamic = e_flops + e_mem + e_cache

        throttle = 1.0
        time = t_ideal
        if truth.power_cap is not None:
            budget = truth.power_cap - truth.pi0
            demanded = e_dynamic / t_ideal
            if demanded > budget:
                throttle = demanded / budget
                time = e_dynamic / budget

        return ExecutionResult(
            kernel=kernel,
            time=time,
            energy_flops=e_flops,
            energy_mem=e_mem,
            energy_cache=e_cache,
            energy_constant=truth.pi0 * time,
            throttle_factor=throttle,
        )

    def trace(
        self,
        result: ExecutionResult,
        *,
        repetitions: int = 1,
        ramp: float = 1e-3,
        lead: float = 0.0,
    ) -> PowerTrace:
        """Ground-truth power trace for back-to-back repetitions of a run.

        Back-to-back repetitions share one plateau at the run's average
        power (constant power is part of the plateau level; idle power
        appears only outside the active window).
        """
        if repetitions < 1:
            raise SimulationError("repetitions must be >= 1")
        return PowerTrace(
            idle_power=self.truth.idle_power,
            active_power=result.average_power,
            active_duration=result.time * repetitions,
            ramp=ramp,
            lead=lead,
        )


# ---------------------------------------------------------------------------
# Catalog device truths — the paper's two platforms
# ---------------------------------------------------------------------------


def gtx580_truth() -> DeviceTruth:
    """GTX 580 ground truth: Table IV energies + §IV-B achieved fractions.

    ``eps_cache`` is the *blended* per-byte on-chip price; the hidden L1
    (0.3×) and L2 (2.4×) level ratios live in :mod:`repro.fmm.estimator`.
    Fitting one coefficient through the reference FMM variant's L1+L2 mix
    recovers ≈190 pJ/B — the experiment-side analogue of the paper's
    187 pJ/B.  Idle power is the measured 39.6 W.  The sustained-power cap is 280 W — the paper's
    Fig. 5b shows measured draw *exceeding* the 244 W rating at high
    intensities (their microbenchmark "already begins to exceed" it), so
    the card's enforcement point sits above the rating; throttling is
    observed only near the balance point where the uncapped model demands
    ~387 W.  280 W reproduces both behaviours: full 1398 GFLOP/s at high
    intensity, roofline departure near ``Bτ``.
    """
    return DeviceTruth(
        name="NVIDIA GTX 580 (simulated)",
        spec=GTX580_SPEC,
        eps_single=picojoules(99.7),
        eps_double=picojoules(212.0),
        eps_mem=picojoules(513.0),
        eps_cache=picojoules(165.0),
        pi0=122.0,
        idle_power=39.6,
        power_cap=280.0,
        nonideal_single=NonIdealities(flop_fraction=0.884, bandwidth_fraction=0.873),
        nonideal_double=NonIdealities(flop_fraction=0.993, bandwidth_fraction=0.883),
        tuning=TuningModel(best_threads=256, min_blocks=64, best_requests=8, best_unroll=8),
    )


def i7_950_truth() -> DeviceTruth:
    """i7-950 ground truth: Table IV energies + §IV-B achieved fractions.

    The CPU cache-energy cost is not reported by the paper; we reuse a
    plausible SRAM-traffic cost of the same order as the GPU's.  No cap:
    the paper never observes CPU throttling.  Idle power is π0 minus the
    package's gating headroom (a modelling choice; only π0 is fitted).
    """
    return DeviceTruth(
        name="Intel i7-950 (simulated)",
        spec=I7_950_SPEC,
        eps_single=picojoules(371.0),
        eps_double=picojoules(670.0),
        eps_mem=picojoules(795.0),
        eps_cache=picojoules(150.0),
        pi0=122.0,
        idle_power=85.0,
        power_cap=None,
        nonideal_single=NonIdealities(flop_fraction=0.933, bandwidth_fraction=0.731),
        nonideal_double=NonIdealities(flop_fraction=0.933, bandwidth_fraction=0.738),
        tuning=TuningModel(best_threads=8, min_blocks=4, best_requests=4, best_unroll=4),
    )

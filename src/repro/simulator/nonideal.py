"""Non-ideal execution effects: achieved fractions and launch tuning.

Real kernels do not hit spec-sheet peaks.  The paper reports the achieved
fractions its *tuned* microbenchmarks reach (§IV-B):

===============  ==============  ===============
 device            flop fraction   bandwidth frac
===============  ==============  ===============
 GTX 580 double    99.3%           88.3%
 GTX 580 single    88.4%           87.3%
 i7-950 double     93.3%           73.8%
 i7-950 single     93.3%           73.1%
===============  ==============  ===============

Our simulator treats those as the *ceilings* a perfectly tuned kernel
reaches; a :class:`TuningModel` then multiplies in a launch-configuration
efficiency in ``(0, 1]`` that peaks at a device-specific optimum — giving
the auto-tuner (:mod:`repro.microbench.autotune`) a realistic,
deterministic landscape with plateaus, cliffs, and an interior optimum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import SimulationError
from repro.simulator.kernel import LaunchConfig

__all__ = ["NonIdealities", "TuningModel"]


@dataclass(frozen=True, slots=True)
class NonIdealities:
    """Ceilings on achievable throughput as fractions of spec peaks.

    ``flop_fraction`` bounds arithmetic throughput, ``bandwidth_fraction``
    memory bandwidth.  Both in ``(0, 1]``.
    """

    flop_fraction: float = 1.0
    bandwidth_fraction: float = 1.0

    def __post_init__(self) -> None:
        for attr in ("flop_fraction", "bandwidth_fraction"):
            value = getattr(self, attr)
            if not 0.0 < value <= 1.0:
                raise SimulationError(f"{attr} must be in (0, 1], got {value}")


@dataclass(frozen=True, slots=True)
class TuningModel:
    """Deterministic launch-parameter efficiency landscape.

    Efficiency is a product of four independent factors, each in
    ``(0, 1]`` and equal to 1 at the optimum:

    * **occupancy** — peaks when ``threads_per_block`` equals
      ``best_threads``; falls off log-quadratically on either side
      (too few threads: latency exposed; too many: register pressure).
    * **grid utilisation** — saturating in ``blocks``: needs at least
      ``min_blocks`` to fill the machine.
    * **memory-level parallelism** — saturating in ``requests_per_thread``
      with optimum ``best_requests``; beyond it, no further gain but a
      mild cache-thrash penalty.
    * **instruction-level parallelism** — saturating in ``unroll``.

    The landscape is intentionally *not* separable-monotone: greedy
    hill-climbing works but must navigate the occupancy ridge, which is
    what makes the auto-tuner worth testing.
    """

    best_threads: int = 256
    min_blocks: int = 64
    best_requests: int = 8
    best_unroll: int = 8
    occupancy_width: float = 2.0  # octaves of threads_per_block to half-eff.
    floor: float = 0.05

    def __post_init__(self) -> None:
        for attr in ("best_threads", "min_blocks", "best_requests", "best_unroll"):
            if getattr(self, attr) < 1:
                raise SimulationError(f"{attr} must be >= 1")
        if self.occupancy_width <= 0:
            raise SimulationError("occupancy_width must be positive")
        if not 0 < self.floor < 1:
            raise SimulationError("floor must be in (0, 1)")

    # Each factor maps a launch field to (0, 1], hitting 1 at its optimum.

    def occupancy(self, threads_per_block: int) -> float:
        """Log-quadratic ridge centred on ``best_threads``."""
        distance = math.log2(threads_per_block / self.best_threads)
        return max(self.floor, 1.0 / (1.0 + (distance / self.occupancy_width) ** 2))

    def grid_utilization(self, blocks: int) -> float:
        """Saturating ramp: full once ``blocks >= min_blocks``."""
        return min(1.0, blocks / self.min_blocks)

    def mlp(self, requests_per_thread: int) -> float:
        """Saturating in outstanding requests, mild penalty past optimum."""
        if requests_per_thread <= self.best_requests:
            return max(self.floor, requests_per_thread / self.best_requests)
        # Over-subscription: each doubling past the optimum costs 5%.
        excess = math.log2(requests_per_thread / self.best_requests)
        return max(self.floor, 1.0 - 0.05 * excess)

    def ilp(self, unroll: int) -> float:
        """Saturating in unroll factor; no penalty for over-unrolling."""
        return min(1.0, max(self.floor, unroll / self.best_unroll))

    def efficiency(self, launch: LaunchConfig) -> float:
        """Overall tuning efficiency in ``(0, 1]``."""
        return (
            self.occupancy(launch.threads_per_block)
            * self.grid_utilization(launch.blocks)
            * self.mlp(launch.requests_per_thread)
            * self.ilp(launch.unroll)
        )

    @property
    def optimal_launch(self) -> LaunchConfig:
        """The launch configuration with efficiency exactly 1."""
        return LaunchConfig(
            threads_per_block=self.best_threads,
            blocks=max(self.min_blocks, 64),
            requests_per_thread=self.best_requests,
            unroll=self.best_unroll,
        )

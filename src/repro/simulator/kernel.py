"""Kernel descriptions for the simulated devices.

A :class:`KernelSpec` is what the paper's microbenchmarks are: a declared
amount of arithmetic ``W`` and memory traffic ``Q`` at a precision, plus a
:class:`LaunchConfig` — the tunable execution parameters (thread-block
geometry, unrolling, per-thread memory requests) that the paper's §IV-B
auto-tuner explores to reach the roofline.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace

from repro.core.algorithm import AlgorithmProfile
from repro.exceptions import SimulationError

__all__ = ["Precision", "LaunchConfig", "KernelSpec"]


class Precision(enum.Enum):
    """Floating-point precision of a kernel's arithmetic."""

    SINGLE = "single"
    DOUBLE = "double"

    @property
    def word_bytes(self) -> int:
        """Bytes per word at this precision."""
        return 4 if self is Precision.SINGLE else 8

    @property
    def regression_flag(self) -> float:
        """The eq. (9) binary regressor ``R`` (1 for double)."""
        return 1.0 if self is Precision.DOUBLE else 0.0


@dataclass(frozen=True, slots=True)
class LaunchConfig:
    """Tunable launch parameters for a kernel.

    The names follow the GPU microbenchmark's tuning space (§IV-B:
    "number of threads, thread block size, and number of memory requests
    per thread"); the CPU benchmark maps onto the same fields
    (``threads_per_block`` ≈ vector width, ``blocks`` ≈ OpenMP threads).

    Attributes
    ----------
    threads_per_block:
        Threads per block (GPU) / SIMD width multiplier (CPU).
    blocks:
        Grid size (GPU) / worker threads (CPU).
    requests_per_thread:
        Outstanding memory requests per thread — the memory-level
        parallelism knob.
    unroll:
        Inner-loop unroll factor — the instruction-level parallelism knob.
    """

    threads_per_block: int = 256
    blocks: int = 512
    requests_per_thread: int = 4
    unroll: int = 8

    def __post_init__(self) -> None:
        for attr in ("threads_per_block", "blocks", "requests_per_thread", "unroll"):
            value = getattr(self, attr)
            if not isinstance(value, int) or value < 1:
                raise SimulationError(f"{attr} must be a positive int, got {value!r}")
        if self.threads_per_block > 1024:
            raise SimulationError(
                f"threads_per_block must be <= 1024, got {self.threads_per_block}"
            )

    def neighbors(self) -> list["LaunchConfig"]:
        """Configs one tuning step away (for greedy auto-tuning)."""
        out: list[LaunchConfig] = []
        for attr, limit in (
            ("threads_per_block", 1024),
            ("blocks", 65535),
            ("requests_per_thread", 64),
            ("unroll", 64),
        ):
            value = getattr(self, attr)
            if value * 2 <= limit:
                out.append(replace(self, **{attr: value * 2}))
            if value // 2 >= 1:
                out.append(replace(self, **{attr: value // 2}))
        return out


@dataclass(frozen=True, slots=True)
class KernelSpec:
    """A kernel to execute on a simulated device.

    ``work`` in flops, ``traffic`` in bytes.  Zero traffic models a
    register-resident compute kernel (intensity = ∞); zero work is not
    allowed (pure copies are modelled as 1-flop kernels by convention).
    """

    name: str
    work: float
    traffic: float
    precision: Precision = Precision.SINGLE
    launch: LaunchConfig = LaunchConfig()

    def __post_init__(self) -> None:
        if not math.isfinite(self.work) or self.work <= 0:
            raise SimulationError(f"work must be positive, got {self.work}")
        if not math.isfinite(self.traffic) or self.traffic < 0:
            raise SimulationError(f"traffic must be >= 0, got {self.traffic}")

    @property
    def intensity(self) -> float:
        """``W/Q`` in flops per byte (``inf`` for traffic-free kernels)."""
        return self.work / self.traffic if self.traffic else math.inf

    @property
    def profile(self) -> AlgorithmProfile:
        """The kernel as a model-side :class:`AlgorithmProfile`."""
        return AlgorithmProfile(work=self.work, traffic=self.traffic, name=self.name)

    def with_launch(self, launch: LaunchConfig) -> "KernelSpec":
        """Copy of this kernel with a different launch configuration."""
        return replace(self, launch=launch)

    @classmethod
    def from_intensity(
        cls,
        intensity: float,
        *,
        work: float = 2e9,
        precision: Precision = Precision.SINGLE,
        launch: LaunchConfig | None = None,
        name: str | None = None,
    ) -> "KernelSpec":
        """Build an intensity-controlled kernel (the microbenchmark shape)."""
        if not intensity > 0:
            raise SimulationError(f"intensity must be positive, got {intensity}")
        return cls(
            name=name or f"ubench(I={intensity:g}, {precision.value})",
            work=work,
            traffic=work / intensity,
            precision=precision,
            launch=launch or LaunchConfig(),
        )

"""Ground-truth power-vs-time traces for simulated runs.

A measurement session does not see "the energy"; it sees instantaneous
power at sample times.  :class:`PowerTrace` is the hidden continuous
power signal a run produces: idle baseline before and after, a finite
ramp up to the active level (capacitance and control-loop lag), a plateau
while the kernel repetitions execute back-to-back, and a ramp down.

The trace is exactly integrable, so tests can verify that the sampled
estimate converges to the true energy as the sampling rate grows — and
the ablation bench can quantify the error at the paper's 128 Hz.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SimulationError

__all__ = ["PowerTrace"]


@dataclass(frozen=True, slots=True)
class PowerTrace:
    """Piecewise-linear power signal: idle → ramp → plateau → ramp → idle.

    Attributes
    ----------
    idle_power:
        Power drawn when nothing is running (W).  The paper measured
        39.6 W for the GTX 580 — notably *less* than the fitted π0 of
        122 W, since constant power includes always-on structures that
        idle power gating turns off.
    active_power:
        Average power during kernel execution (W).
    active_duration:
        Length of the plateau: repetitions × per-run time (s).
    ramp:
        Rise/fall time between idle and active levels (s).
    lead:
        Idle time recorded before the ramp begins (s).
    """

    idle_power: float
    active_power: float
    active_duration: float
    ramp: float = 1e-3
    lead: float = 0.0

    def __post_init__(self) -> None:
        if self.idle_power < 0 or self.active_power < 0:
            raise SimulationError("powers must be non-negative")
        if self.active_duration <= 0:
            raise SimulationError("active_duration must be positive")
        if self.ramp < 0 or self.lead < 0:
            raise SimulationError("ramp and lead must be non-negative")

    # Segment boundaries ----------------------------------------------------

    @property
    def t_rise_start(self) -> float:
        return self.lead

    @property
    def t_plateau_start(self) -> float:
        return self.lead + self.ramp

    @property
    def t_plateau_end(self) -> float:
        return self.t_plateau_start + self.active_duration

    @property
    def t_fall_end(self) -> float:
        return self.t_plateau_end + self.ramp

    @property
    def duration(self) -> float:
        """Total trace length: lead + ramps + plateau + symmetric tail."""
        return self.t_fall_end + self.lead

    # Evaluation ------------------------------------------------------------

    def power_at(self, t: float | np.ndarray) -> np.ndarray:
        """Instantaneous power at time(s) ``t`` (vectorised)."""
        t = np.asarray(t, dtype=float)
        p = np.full_like(t, self.idle_power)
        delta = self.active_power - self.idle_power
        if self.ramp > 0:
            # Divide only where a ramp is actually in progress: np.where
            # evaluates both branches, so an unguarded division computes
            # (t - t0) / ramp far outside the ramp window too, overflowing
            # for tiny ramps against distant sample times.
            rising = (t >= self.t_rise_start) & (t < self.t_plateau_start)
            frac = np.divide(
                t - self.t_rise_start,
                self.ramp,
                out=np.zeros_like(t),
                where=rising,
            )
            p = np.where(rising, self.idle_power + delta * frac, p)
            falling = (t >= self.t_plateau_end) & (t < self.t_fall_end)
            frac = np.divide(
                t - self.t_plateau_end,
                self.ramp,
                out=np.zeros_like(t),
                where=falling,
            )
            p = np.where(falling, self.active_power - delta * frac, p)
        plateau = (t >= self.t_plateau_start) & (t < self.t_plateau_end)
        p = np.where(plateau, self.active_power, p)
        return p

    def true_energy(self) -> float:
        """Exact integral of power over the whole trace (J).

        Plateau + two triangles-over-idle + idle baseline everywhere.
        """
        delta = self.active_power - self.idle_power
        return (
            self.idle_power * self.duration
            + delta * self.active_duration
            + delta * self.ramp  # two half-ramps
        )

    def active_energy(self) -> float:
        """Energy of the active window only: plateau × active power (J).

        This is the quantity the per-run accounting targets; the ramps and
        idle lead are measurement-session artefacts.
        """
        return self.active_power * self.active_duration

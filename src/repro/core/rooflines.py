"""Curve sampling: rooflines, arch lines, and powerlines as data series.

Charts in the paper (Figs. 2, 4, 5) are intensity sweeps of the three
models.  This module samples those curves on log-2 grids and packages them
as :class:`CurveSeries` — plain arrays plus labels — that the ASCII
renderer, CSV exporters, benchmark harness, and any external plotting tool
can all consume without re-deriving model math.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.energy_model import EnergyModel
from repro.core.params import MachineModel
from repro.core.power_model import PowerModel
from repro.core.powercap import CappedModel
from repro.core.time_model import TimeModel
from repro.exceptions import ParameterError
from repro.units import log2_grid

__all__ = [
    "CurveSeries",
    "roofline_series",
    "archline_series",
    "powerline_series",
    "capped_powerline_series",
    "roofline_vs_archline",
    "vertical_markers",
]


@dataclass(frozen=True)
class CurveSeries:
    """One named curve: intensities (x) against values (y).

    Attributes
    ----------
    label:
        Legend text, e.g. ``"Roofline (GFLOP/s)"``.
    intensities:
        Strictly positive x values (flops per byte).
    values:
        y values; units depend on the producing function.
    units:
        Unit string for the y axis.
    """

    label: str
    intensities: np.ndarray
    values: np.ndarray
    units: str = ""

    def __post_init__(self) -> None:
        x = np.asarray(self.intensities, dtype=float)
        y = np.asarray(self.values, dtype=float)
        if x.ndim != 1 or y.shape != x.shape:
            raise ParameterError("intensities and values must be equal-length 1-D")
        if x.size < 2:
            raise ParameterError("a curve needs at least two points")
        if np.any(x <= 0):
            raise ParameterError("intensities must be positive")
        if np.any(np.diff(x) <= 0):
            raise ParameterError("intensities must be strictly increasing")
        object.__setattr__(self, "intensities", x)
        object.__setattr__(self, "values", y)

    def at(self, intensity: float) -> float:
        """Log-log interpolated value at an arbitrary intensity."""
        x = np.log2(self.intensities)
        with np.errstate(divide="ignore"):
            y = np.log2(self.values)
        out = np.interp(np.log2(intensity), x, y)
        return float(2.0**out)

    def normalized(self, denom: float, label: str | None = None) -> "CurveSeries":
        """Divide values by a constant (e.g. peak) to get a relative curve."""
        if denom <= 0:
            raise ParameterError("normalisation denominator must be positive")
        return CurveSeries(
            label=label or f"{self.label} (normalized)",
            intensities=self.intensities,
            values=self.values / denom,
            units="fraction of peak",
        )

    def as_rows(self) -> list[tuple[float, float]]:
        """The curve as (intensity, value) tuples — CSV-friendly."""
        return [(float(x), float(y)) for x, y in zip(self.intensities, self.values)]


def _grid(
    intensities: Sequence[float] | None,
    lo: float,
    hi: float,
    points_per_octave: int,
) -> np.ndarray:
    if intensities is not None:
        return np.asarray(sorted(intensities), dtype=float)
    return np.asarray(log2_grid(lo, hi, points_per_octave), dtype=float)


def roofline_series(
    machine: MachineModel,
    *,
    intensities: Sequence[float] | None = None,
    lo: float = 0.5,
    hi: float = 512.0,
    points_per_octave: int = 8,
    normalized: bool = True,
) -> CurveSeries:
    """Sample the time roofline (Fig. 2a red curve).

    ``normalized=True`` (default) yields the fraction-of-peak curve
    ``min(1, I/Bτ)``; otherwise absolute GFLOP/s.
    """
    grid = _grid(intensities, lo, hi, points_per_octave)
    model = TimeModel(machine)
    if normalized:
        values = model.normalized_performance_batch(grid)
        return CurveSeries("Roofline (fraction of peak GFLOP/s)", grid, values)
    values = model.attainable_gflops_batch(grid)
    return CurveSeries("Roofline (GFLOP/s)", grid, values, units="GFLOP/s")


def archline_series(
    machine: MachineModel,
    *,
    intensities: Sequence[float] | None = None,
    lo: float = 0.5,
    hi: float = 512.0,
    points_per_octave: int = 8,
    normalized: bool = True,
) -> CurveSeries:
    """Sample the energy arch line (Fig. 2a blue curve)."""
    grid = _grid(intensities, lo, hi, points_per_octave)
    model = EnergyModel(machine)
    if normalized:
        values = model.normalized_efficiency_batch(grid)
        return CurveSeries("Arch line (fraction of peak GFLOP/J)", grid, values)
    values = model.attainable_gflops_per_joule_batch(grid)
    return CurveSeries("Arch line (GFLOP/J)", grid, values, units="GFLOP/J")


def powerline_series(
    machine: MachineModel,
    *,
    intensities: Sequence[float] | None = None,
    lo: float = 0.5,
    hi: float = 512.0,
    points_per_octave: int = 8,
    normalized: bool = True,
) -> CurveSeries:
    """Sample the powerline (Fig. 2b).

    ``normalized=True`` divides by flop-plus-constant power so the
    compute-bound limit is 1 (matching Figs. 2b and 5); otherwise watts.
    """
    grid = _grid(intensities, lo, hi, points_per_octave)
    model = PowerModel(machine)
    if normalized:
        values = model.normalized_power_batch(grid)
        return CurveSeries("Powerline (relative to flop power)", grid, values)
    values = model.power_batch(grid)
    return CurveSeries("Powerline (W)", grid, values, units="W")


def capped_powerline_series(
    machine: MachineModel,
    *,
    intensities: Sequence[float] | None = None,
    lo: float = 0.5,
    hi: float = 512.0,
    points_per_octave: int = 8,
) -> CurveSeries:
    """Powerline with the §V-B cap refinement applied (absolute watts)."""
    grid = _grid(intensities, lo, hi, points_per_octave)
    model = CappedModel(machine)
    values = model.power_batch(grid)
    return CurveSeries("Capped powerline (W)", grid, values, units="W")


def roofline_vs_archline(
    machine: MachineModel,
    *,
    lo: float = 0.5,
    hi: float = 512.0,
    points_per_octave: int = 8,
) -> tuple[CurveSeries, CurveSeries]:
    """The Fig. 2a pair: normalized roofline and arch line on one grid."""
    kwargs = dict(lo=lo, hi=hi, points_per_octave=points_per_octave)
    return (
        roofline_series(machine, normalized=True, **kwargs),
        archline_series(machine, normalized=True, **kwargs),
    )


def vertical_markers(machine: MachineModel) -> dict[str, float]:
    """The dashed vertical lines of the paper's figures.

    Returns a mapping with the time-balance, raw energy-balance
    ("const=0" annotation), and effective energy-balance crossing.
    """
    return {
        "B_tau": machine.b_tau,
        "B_eps (const=0)": machine.b_eps,
        "B_eps effective": machine.effective_balance_crossing,
    }

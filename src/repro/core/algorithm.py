"""Algorithm characterisation: work ``W``, traffic ``Q``, intensity ``I``.

An algorithm, for the purposes of the model, is the pair ``(W, Q)``:

* ``W`` — useful operations ("flops" by convention, but any algorithmic
  unit works: comparisons for sorting, edges for graph traversal);
* ``Q`` — bytes moved between slow and fast memory ("mops").

Their ratio ``I = W/Q`` (flops per byte) is the computational intensity,
the x-axis of every roofline, arch-line, and powerline chart.

Besides the raw :class:`AlgorithmProfile` container, this module provides
*symbolic* profiles for the canonical kernels the paper's §II-A discusses —
array reduction (``I = O(1)``), cache-blocked matrix multiplication
(``I = O(sqrt(Z))``), stencils, FFTs, and the FMM U-list phase — so that
intensity-versus-cache-size behaviour can be explored analytically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.exceptions import ProfileError
from repro.units import BYTES_PER_DOUBLE

__all__ = [
    "AlgorithmProfile",
    "reduction_profile",
    "dot_product_profile",
    "stream_triad_profile",
    "matmul_profile",
    "matmul_max_intensity",
    "stencil_profile",
    "fft_profile",
    "comparison_sort_profile",
    "fmm_ulist_profile",
    "spmv_profile",
]


@dataclass(frozen=True, slots=True)
class AlgorithmProfile:
    """An algorithm abstracted to ``(W, Q)`` with optional provenance.

    Parameters
    ----------
    work:
        Total useful operations ``W`` (flops).
    traffic:
        Total slow-memory traffic ``Q`` in bytes.  May be zero for a
        purely in-cache computation, in which case :attr:`intensity`
        is ``math.inf``.
    name:
        Optional label used in reports.
    """

    work: float
    traffic: float
    name: str = "algorithm"

    def __post_init__(self) -> None:
        if not math.isfinite(self.work) or self.work <= 0:
            raise ProfileError(f"work must be positive and finite, got {self.work}")
        if not math.isfinite(self.traffic) or self.traffic < 0:
            raise ProfileError(
                f"traffic must be non-negative and finite, got {self.traffic}"
            )

    @property
    def intensity(self) -> float:
        """Computational intensity ``I = W / Q`` in flops per byte."""
        if self.traffic == 0:
            return math.inf
        return self.work / self.traffic

    @classmethod
    def from_intensity(
        cls, intensity: float, *, work: float = 1e9, name: str = "synthetic"
    ) -> "AlgorithmProfile":
        """Construct a profile with a prescribed intensity.

        Used throughout the microbenchmark sweeps: fix ``W`` and derive
        ``Q = W / I``.
        """
        if not math.isfinite(intensity) or intensity <= 0:
            raise ProfileError(f"intensity must be positive, got {intensity}")
        return cls(work=work, traffic=work / intensity, name=name)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def scaled(self, factor: float) -> "AlgorithmProfile":
        """Scale both ``W`` and ``Q`` (e.g. to model repeated execution).

        Intensity is invariant under scaling.
        """
        if factor <= 0:
            raise ProfileError(f"scale factor must be positive, got {factor}")
        return replace(self, work=self.work * factor, traffic=self.traffic * factor)

    def with_work_trade(self, f: float, m: float) -> "AlgorithmProfile":
        """The §VII work–communication trade: ``(W, Q) -> (f·W, Q/m)``.

        A transformed algorithm does ``f`` times the work to reduce
        communication by a factor ``m``.  ``f > 1, m > 1`` is the
        "new algorithm" of the paper's trade-off analysis; ``f = m = 1``
        is the identity.
        """
        if f <= 0 or m <= 0:
            raise ProfileError(f"trade factors must be positive, got f={f}, m={m}")
        return AlgorithmProfile(
            work=self.work * f,
            traffic=self.traffic / m,
            name=f"{self.name} (f={f:g}, m={m:g})",
        )

    def __add__(self, other: "AlgorithmProfile") -> "AlgorithmProfile":
        """Sequential composition: work and traffic add."""
        if not isinstance(other, AlgorithmProfile):
            return NotImplemented
        return AlgorithmProfile(
            work=self.work + other.work,
            traffic=self.traffic + other.traffic,
            name=f"{self.name}+{other.name}",
        )


# ---------------------------------------------------------------------------
# Canonical symbolic profiles (§II-A examples)
# ---------------------------------------------------------------------------


def _require_positive(**kwargs: float) -> None:
    for key, value in kwargs.items():
        if value <= 0:
            raise ProfileError(f"{key} must be positive, got {value}")


def reduction_profile(n: int, word_bytes: int = BYTES_PER_DOUBLE) -> AlgorithmProfile:
    """Summing an ``n``-element array: ``W = n − 1``, ``Q = n`` words.

    Intensity is ``O(1)`` — independent of problem size and of cache size
    ``Z`` — the paper's example of an algorithm that cannot benefit from a
    bigger fast memory.
    """
    _require_positive(n=n, word_bytes=word_bytes)
    if n < 2:
        raise ProfileError("reduction needs at least two elements")
    return AlgorithmProfile(
        work=float(n - 1), traffic=float(n * word_bytes), name=f"reduction(n={n})"
    )


def dot_product_profile(n: int, word_bytes: int = BYTES_PER_DOUBLE) -> AlgorithmProfile:
    """Dot product of two ``n``-vectors: ``W = 2n``, ``Q = 2n`` words."""
    _require_positive(n=n, word_bytes=word_bytes)
    return AlgorithmProfile(
        work=2.0 * n, traffic=2.0 * n * word_bytes, name=f"dot(n={n})"
    )


def stream_triad_profile(n: int, word_bytes: int = BYTES_PER_DOUBLE) -> AlgorithmProfile:
    """STREAM triad ``a[i] = b[i] + s*c[i]``: ``W = 2n``, ``Q = 3n`` words."""
    _require_positive(n=n, word_bytes=word_bytes)
    return AlgorithmProfile(
        work=2.0 * n, traffic=3.0 * n * word_bytes, name=f"triad(n={n})"
    )


def matmul_max_intensity(fast_bytes: float, word_bytes: int = BYTES_PER_DOUBLE) -> float:
    """Upper bound on matmul intensity (flops per byte) for ``Z`` bytes of cache.

    Hong & Kung's red–blue pebble game result: no schedule of the classical
    ``n^3`` algorithm moves fewer than ``Θ(n^3 / sqrt(Z))`` words, so
    ``I = O(sqrt(Z))``.  We use the standard blocked-algorithm constant:
    a ``b×b`` block fits three operands when ``3·b²`` words ≤ ``Z``, giving
    ``I ≈ 2·b / 3`` flops per word — doubling ``Z`` buys only ``sqrt(2)``.
    """
    _require_positive(fast_bytes=fast_bytes, word_bytes=word_bytes)
    words = fast_bytes / word_bytes
    block = math.sqrt(words / 3.0)
    return (2.0 * block / 3.0) / word_bytes


def matmul_profile(
    n: int,
    fast_bytes: float,
    word_bytes: int = BYTES_PER_DOUBLE,
) -> AlgorithmProfile:
    """Cache-blocked ``n×n`` matrix multiplication.

    ``W = 2·n³`` flops.  Traffic for a blocked schedule with block size
    ``b = sqrt(Z_words / 3)``:  each of the ``(n/b)³`` block-multiplies
    streams ``2·b²`` input words (the C block stays resident across the
    k-loop, costing a further ``2·n²`` words overall), plus the ``3·n²``
    compulsory traffic.  For ``n² ≫ Z`` this approaches the Hong–Kung
    lower-bound shape ``Q = Θ(n³/sqrt(Z))``.
    """
    _require_positive(n=n, fast_bytes=fast_bytes, word_bytes=word_bytes)
    words = fast_bytes / word_bytes
    block = max(1.0, math.sqrt(words / 3.0))
    block = min(block, float(n))
    blocks_per_dim = n / block
    q_words = (blocks_per_dim**3) * 2.0 * block * block + 2.0 * n * n + 3.0 * n * n
    return AlgorithmProfile(
        work=2.0 * n**3,
        traffic=q_words * word_bytes,
        name=f"matmul(n={n}, Z={fast_bytes:g}B)",
    )


def stencil_profile(
    n: int,
    points: int = 7,
    sweeps: int = 1,
    word_bytes: int = BYTES_PER_DOUBLE,
) -> AlgorithmProfile:
    """``sweeps`` Jacobi sweeps of a ``points``-point stencil on ``n³`` cells.

    Per sweep each cell does ``points`` multiply-adds (``2·points`` flops)
    and streams one read + one write per cell (assuming the planes of the
    stencil neighbourhood fit in fast memory).
    """
    _require_positive(n=n, points=points, sweeps=sweeps, word_bytes=word_bytes)
    cells = float(n) ** 3
    return AlgorithmProfile(
        work=2.0 * points * cells * sweeps,
        traffic=2.0 * cells * sweeps * word_bytes,
        name=f"stencil{points}(n={n}^3, sweeps={sweeps})",
    )


def fft_profile(
    n: int,
    fast_bytes: float,
    word_bytes: int = 2 * BYTES_PER_DOUBLE,
) -> AlgorithmProfile:
    """Out-of-cache radix-2 FFT of ``n`` complex points.

    ``W = 5·n·log2(n)`` flops (the standard FFT operation count).  The
    I/O lower bound is ``Q = Θ(n·log(n)/log(Z))``: each pass through fast
    memory advances ``log2(Z_words)`` butterfly stages.
    """
    _require_positive(n=n, fast_bytes=fast_bytes, word_bytes=word_bytes)
    if n < 2:
        raise ProfileError("fft needs n >= 2")
    words = max(2.0, fast_bytes / word_bytes)
    stages = math.log2(n)
    passes = max(1.0, stages / math.log2(words))
    return AlgorithmProfile(
        work=5.0 * n * stages,
        traffic=2.0 * n * passes * word_bytes,
        name=f"fft(n={n}, Z={fast_bytes:g}B)",
    )


def comparison_sort_profile(
    n: int,
    fast_bytes: float,
    word_bytes: int = BYTES_PER_DOUBLE,
) -> AlgorithmProfile:
    """External merge sort of ``n`` keys; ``W`` counts comparisons.

    ``W = n·log2(n)`` comparisons; merge passes move the whole array once
    per ``log(Z)``-fold reduction in run count:
    ``Q = Θ(n·log(n)/log(Z))`` — same I/O shape as the FFT.
    """
    _require_positive(n=n, fast_bytes=fast_bytes, word_bytes=word_bytes)
    if n < 2:
        raise ProfileError("sort needs n >= 2")
    words = max(2.0, fast_bytes / word_bytes)
    passes = max(1.0, math.log2(n) / math.log2(words))
    return AlgorithmProfile(
        work=n * math.log2(n),
        traffic=2.0 * n * passes * word_bytes,
        name=f"sort(n={n}, Z={fast_bytes:g}B)",
    )


def fmm_ulist_profile(
    n_points: int,
    leaf_size: int,
    neighbors: int = 27,
    word_bytes: int = 4,
    flops_per_pair: int = 11,
) -> AlgorithmProfile:
    """The FMM U-list phase of the paper's §V-C, analytically.

    With ``n`` points in leaves of ``q`` points each and ``u`` neighbouring
    source leaves per target leaf (27 for a uniform octree including self),
    every target point interacts with ``u·q`` sources at 11 flops per pair
    (Algorithm 1, counting ``rsqrt`` as one flop).  DRAM traffic is the
    streaming of source coordinates+density (4 words/point) per target
    leaf plus target reads/writes — giving ``I = O(q)``: compute-bound for
    the typical ``q`` of hundreds.
    """
    _require_positive(
        n_points=n_points,
        leaf_size=leaf_size,
        neighbors=neighbors,
        word_bytes=word_bytes,
        flops_per_pair=flops_per_pair,
    )
    n_leaves = max(1.0, n_points / leaf_size)
    pairs = n_points * neighbors * leaf_size
    # Each target leaf streams u source leaves (4 words per source point:
    # x, y, z, density) and reads+writes its own targets (4 + 1 words).
    q_words = n_leaves * neighbors * leaf_size * 4.0 + n_points * 5.0
    return AlgorithmProfile(
        work=float(flops_per_pair) * pairs,
        traffic=q_words * word_bytes,
        name=f"fmm_ulist(n={n_points}, q={leaf_size})",
    )


def spmv_profile(
    n_rows: int,
    nnz_per_row: float,
    index_bytes: int = 4,
    word_bytes: int = BYTES_PER_DOUBLE,
) -> AlgorithmProfile:
    """CSR sparse matrix–vector multiply: the classic bandwidth-bound kernel.

    ``W = 2·nnz`` flops; traffic streams values + column indices + the
    row pointer array + source/destination vectors.
    """
    _require_positive(n_rows=n_rows, nnz_per_row=nnz_per_row)
    nnz = n_rows * nnz_per_row
    traffic = (
        nnz * (word_bytes + index_bytes)  # values + colidx
        + n_rows * index_bytes  # rowptr
        + 2.0 * n_rows * word_bytes  # x read (best case) + y write
    )
    return AlgorithmProfile(
        work=2.0 * nnz,
        traffic=traffic,
        name=f"spmv(n={n_rows}, nnz/row={nnz_per_row:g})",
    )

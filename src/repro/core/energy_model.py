"""The energy model — eqs. (4)–(6) and the "arch line".

Energy differs from time in two essential ways (§II-B):

1. **Energy does not overlap.**  Every joule spent on arithmetic, memory
   traffic, and baseline (constant) power must be paid — so the energy
   cost is a *sum*, not a max, and the energy "roofline" is a smooth arch
   rather than a sharp-cornered roof.
2. **Constant energy.**  A machine burns constant power ``π0`` for the
   entire duration ``T`` of a computation, coupling the energy model back
   to the time model: slow code costs extra energy just by existing.

The total energy is

    ``E = W·ε_flop + Q·ε_mem + π0·T
       = W·ε̂_flop · (1 + B̂ε(I)/I)``                           (eqs. 4–5)

with the effective energy-balance ``B̂ε(I)`` of eq. (6) folding the
constant-power term into an intensity-dependent communication penalty.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core._array import as_intensity_array, isclose_to_scalar
from repro.core.algorithm import AlgorithmProfile
from repro.core.params import MachineModel
from repro.core.time_model import TimeBound, TimeModel
from repro.exceptions import ParameterError

__all__ = ["EnergyBreakdown", "EnergyModel"]


@dataclass(frozen=True, slots=True)
class EnergyBreakdown:
    """Component energies for one (algorithm, machine) pairing (eq. 2)."""

    flops: float
    mem: float
    constant: float

    @property
    def total(self) -> float:
        """Total energy ``E = E_flops + E_mem + E0`` (J)."""
        return self.flops + self.mem + self.constant

    @property
    def dynamic(self) -> float:
        """Energy excluding the constant term (J)."""
        return self.flops + self.mem

    def fraction(self, component: str) -> float:
        """Fraction of total energy spent on ``'flops'|'mem'|'constant'``."""
        value = getattr(self, component)
        return value / self.total


class EnergyModel:
    """Evaluate eqs. (4)–(6) for a fixed machine.

    The energy model owns a :class:`TimeModel` because the constant-power
    term ``π0·T`` requires execution time; both use the same overlapped
    eq. (3) time.
    """

    def __init__(self, machine: MachineModel):
        self.machine = machine
        self.time_model = TimeModel(machine)

    # ------------------------------------------------------------------
    # Absolute quantities
    # ------------------------------------------------------------------

    def breakdown(self, profile: AlgorithmProfile) -> EnergyBreakdown:
        """Component energies of eq. (2)/(4)."""
        m = self.machine
        t = self.time_model.time(profile)
        return EnergyBreakdown(
            flops=profile.work * m.eps_flop,
            mem=profile.traffic * m.eps_mem,
            constant=m.pi0 * t,
        )

    def energy(self, profile: AlgorithmProfile) -> float:
        """Total energy ``E`` (J), eq. (4)."""
        return self.breakdown(profile).total

    def flops_per_joule(self, profile: AlgorithmProfile) -> float:
        """Achieved energy efficiency ``W / E`` (flop/J)."""
        return profile.work / self.energy(profile)

    # ------------------------------------------------------------------
    # Intensity-parameterised (arch-line) quantities
    # ------------------------------------------------------------------

    def energy_penalty(self, intensity: float) -> float:
        """``B̂ε(I)/I`` — the effective energy communication penalty.

        Unlike the time penalty this is paid *on top of* the ideal
        (``1 + penalty``), because energy does not overlap.
        """
        self._check_intensity(intensity)
        return self.machine.b_eps_hat(intensity) / intensity

    def normalized_efficiency(self, intensity: float) -> float:
        """The arch line ``W·ε̂_flop / E = 1 / (1 + B̂ε(I)/I) ∈ (0, 1)``.

        The smooth blue curve of the paper's Fig. 2a: energy efficiency as
        a fraction of the flop-only ideal.  Crosses 1/2 exactly at
        ``I = B̂ε(I)`` (:attr:`MachineModel.effective_balance_crossing`);
        with ``π0 = 0`` that point is the energy-balance ``Bε``.
        """
        return 1.0 / (1.0 + self.energy_penalty(intensity))

    def attainable_gflops_per_joule(self, intensity: float) -> float:
        """Arch line in absolute units (GFLOP/J, the paper's Fig. 4 axis)."""
        return (
            self.normalized_efficiency(intensity)
            * self.machine.peak_gflops_per_joule
        )

    def energy_per_flop(self, intensity: float) -> float:
        """``E / W`` at this intensity: ``ε̂_flop · (1 + B̂ε(I)/I)`` (J)."""
        self._check_intensity(intensity)
        return self.machine.eps_flop_hat * (1.0 + self.energy_penalty(intensity))

    # ------------------------------------------------------------------
    # Array-native fast path
    # ------------------------------------------------------------------

    def energy_penalty_batch(self, intensities: np.ndarray) -> np.ndarray:
        """Vectorised ``B̂ε(I)/I`` over an intensity array."""
        arr = as_intensity_array(intensities)
        return self.machine.b_eps_hat_batch(arr) / arr

    def normalized_efficiency_batch(self, intensities: np.ndarray) -> np.ndarray:
        """Vectorised arch line ``1/(1 + B̂ε(I)/I)`` over an intensity array."""
        return 1.0 / (1.0 + self.energy_penalty_batch(intensities))

    def attainable_gflops_per_joule_batch(
        self, intensities: np.ndarray
    ) -> np.ndarray:
        """Vectorised arch line in absolute units (GFLOP/J)."""
        return (
            self.normalized_efficiency_batch(intensities)
            * self.machine.peak_gflops_per_joule
        )

    def energy_per_flop_batch(self, intensities: np.ndarray) -> np.ndarray:
        """Vectorised ``E/W`` (joules per flop) over an intensity array."""
        return self.machine.eps_flop_hat * (
            1.0 + self.energy_penalty_batch(intensities)
        )

    def classify(self, intensity: float) -> TimeBound:
        """Memory- vs compute-bound *in energy* at this intensity.

        The threshold is the effective balance crossing ``I = B̂ε(I)``:
        below it, more than half the energy goes to communication plus
        the constant power it forces.  When ``Bτ ≠ Bε`` this can disagree
        with the time classification — the balance-gap phenomenon of §II-D.
        """
        self._check_intensity(intensity)
        crossing = self.machine.effective_balance_crossing
        if math.isclose(intensity, crossing, rel_tol=1e-9):
            return TimeBound.BALANCED
        return TimeBound.COMPUTE if intensity > crossing else TimeBound.MEMORY

    def classify_batch(self, intensities: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`classify`: an object array of :class:`TimeBound`.

        Element-wise identical to the scalar method, including the
        ``math.isclose``-style symmetric test at the balance crossing.
        """
        arr = as_intensity_array(intensities)
        crossing = self.machine.effective_balance_crossing
        out = np.where(arr > crossing, TimeBound.COMPUTE, TimeBound.MEMORY)
        out[isclose_to_scalar(arr, crossing, rel_tol=1e-9)] = TimeBound.BALANCED
        return out

    # ------------------------------------------------------------------
    # Consistency check (used heavily by tests)
    # ------------------------------------------------------------------

    def energy_closed_form(self, profile: AlgorithmProfile) -> float:
        """Eq. (5): ``W·ε̂_flop·(1 + B̂ε(I)/I)``.

        Mathematically identical to :meth:`energy` (which sums eq. 4
        components); kept separate so tests can verify the paper's
        algebraic refactoring eq. (4) -> eq. (5) holds for all parameters.
        """
        return profile.work * self.energy_per_flop(profile.intensity)

    @staticmethod
    def _check_intensity(intensity: float) -> None:
        if not intensity > 0:
            raise ParameterError(f"intensity must be positive, got {intensity}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        m = self.machine
        return (
            f"EnergyModel({m.name!r}, B_eps={m.b_eps:.3g}, "
            f"eta={m.eta_flop:.3g})"
        )

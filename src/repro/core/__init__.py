"""Core analytic models from *A Roofline Model of Energy* (IPDPS 2013).

This package implements the paper's primary contribution:

* :mod:`repro.core.params` — machine characterisation (Table I/II):
  time and energy cost coefficients and every derived balance quantity.
* :mod:`repro.core.algorithm` — algorithm characterisation ``(W, Q, I)``
  plus symbolic profiles for canonical kernels.
* :mod:`repro.core.time_model` — eq. (3), the time roofline.
* :mod:`repro.core.energy_model` — eqs. (4)–(6), the energy "arch line".
* :mod:`repro.core.power_model` — eqs. (7)–(8), the "powerline".
* :mod:`repro.core.balance` — balance gaps and race-to-halt analysis.
* :mod:`repro.core.rooflines` — curve sampling for plots and benches.
* :mod:`repro.core.tradeoff` — eq. (10), work–communication trade-offs.
* :mod:`repro.core.fitting` — eq. (9), coefficient fitting from measurements.
* :mod:`repro.core.powercap` — §V-B extension: explicit power caps.
* :mod:`repro.core.multilevel` — §V-C extension: multi-level memory energy.
* :mod:`repro.core.workdepth` — latency-aware (work-depth) time refinement.
"""

from repro.core.algorithm import AlgorithmProfile
from repro.core.params import MachineModel
from repro.core.time_model import TimeModel
from repro.core.energy_model import EnergyModel
from repro.core.power_model import PowerModel

__all__ = [
    "AlgorithmProfile",
    "MachineModel",
    "TimeModel",
    "EnergyModel",
    "PowerModel",
]

"""Dynamic voltage and frequency scaling on top of the basic model (§VI).

The paper contrasts its algorithmic time-energy trade-off with the DVFS
flavour — superlinear power-vs-frequency scaling that lets systems trade
clock speed for energy.  This module adds that axis to the machine model
so the two interact:

Scaling model (the standard first-order one)
--------------------------------------------
At relative frequency ``s = f/f_nominal``:

* compute throughput scales: ``τ_flop(s) = τ_flop/s``;
* memory bandwidth does not (DRAM clocks separately): ``τ_mem`` fixed;
* supply voltage tracks frequency linearly between ``v_floor`` and 1:
  ``v(s) = v_floor + (1 − v_floor)·s``;
* switching energy per op scales with ``v²``:
  ``ε_flop(s) = ε_flop·v(s)²``; memory energy is unscaled;
* constant power splits into static leakage (unscaled) and a clocked
  part scaling with ``s·v(s)²``:
  ``π0(s) = π0·[σ + (1 − σ)·s·v(s)²]`` with static fraction ``σ``.

What this buys
--------------
:class:`DvfsMachine.machine_at` instantiates the full roofline/arch-line
machinery at any operating point, and :meth:`energy_optimal_setting`
answers the race-to-halt-vs-crawl question *quantitatively*: with high
static power, running flat-out and halting wins (the paper's 2013
reality); with mostly-dynamic constant power and a memory-bound kernel,
slowing the clock to the bandwidth-matched frequency is greener.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.core.algorithm import AlgorithmProfile
from repro.core.energy_model import EnergyModel
from repro.core.params import MachineModel
from repro.core.time_model import TimeModel
from repro.exceptions import ParameterError

__all__ = ["DvfsPolicy", "OperatingPoint", "DvfsMachine"]


@dataclass(frozen=True, slots=True)
class DvfsPolicy:
    """How a machine's costs respond to frequency scaling.

    Attributes
    ----------
    s_min, s_max:
        Relative frequency range (1.0 = nominal).
    v_floor:
        Voltage at ``s -> 0`` as a fraction of nominal — transistors need
        a threshold-ish minimum; typical ~0.6.
    static_fraction:
        Share of constant power that does not scale with the clock
        (leakage, always-on uncore).  The race-to-halt knob.
    """

    s_min: float = 0.4
    s_max: float = 1.0
    v_floor: float = 0.6
    static_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0 < self.s_min <= self.s_max:
            raise ParameterError("need 0 < s_min <= s_max")
        if not 0.0 <= self.v_floor < 1.0:
            raise ParameterError("v_floor must be in [0, 1)")
        if not 0.0 <= self.static_fraction <= 1.0:
            raise ParameterError("static_fraction must be in [0, 1]")

    def voltage(self, s: float) -> float:
        """Relative supply voltage at relative frequency ``s``."""
        return self.v_floor + (1.0 - self.v_floor) * s

    def flop_energy_scale(self, s: float) -> float:
        """``ε_flop`` multiplier: ``v(s)²``."""
        return self.voltage(s) ** 2

    def constant_power_scale(self, s: float) -> float:
        """``π0`` multiplier: static share + clocked share ``s·v(s)²``."""
        return self.static_fraction + (1.0 - self.static_fraction) * s * self.voltage(
            s
        ) ** 2


@dataclass(frozen=True, slots=True)
class OperatingPoint:
    """One DVFS setting's outcome for a specific algorithm."""

    s: float
    time: float
    energy: float

    @property
    def power(self) -> float:
        """Average power at this setting (W)."""
        return self.energy / self.time


class DvfsMachine:
    """A machine plus its frequency-scaling behaviour."""

    def __init__(self, base: MachineModel, policy: DvfsPolicy | None = None):
        self.base = base
        self.policy = policy or DvfsPolicy()

    def machine_at(self, s: float) -> MachineModel:
        """The full :class:`MachineModel` at relative frequency ``s``.

        Every derived quantity — balances, arch lines, powerlines —
        is available at the scaled point; note that ``Bτ`` shrinks with
        ``s`` (slower clock, same bandwidth), moving kernels toward
        compute-bound.
        """
        policy = self.policy
        if not policy.s_min <= s <= policy.s_max:
            raise ParameterError(
                f"s={s} outside the policy range [{policy.s_min}, {policy.s_max}]"
            )
        return replace(
            self.base,
            name=f"{self.base.name} @ {s:.2f}f",
            tau_flop=self.base.tau_flop / s,
            eps_flop=self.base.eps_flop * policy.flop_energy_scale(s),
            pi0=self.base.pi0 * policy.constant_power_scale(s),
        )

    def evaluate(self, profile: AlgorithmProfile, s: float) -> OperatingPoint:
        """Time and energy for an algorithm at one frequency setting."""
        machine = self.machine_at(s)
        return OperatingPoint(
            s=s,
            time=TimeModel(machine).time(profile),
            energy=EnergyModel(machine).energy(profile),
        )

    def sweep(
        self, profile: AlgorithmProfile, *, steps: int = 25
    ) -> list[OperatingPoint]:
        """Evaluate the whole frequency range on a uniform grid."""
        if steps < 2:
            raise ParameterError("need at least 2 steps")
        policy = self.policy
        span = policy.s_max - policy.s_min
        return [
            self.evaluate(profile, policy.s_min + span * i / (steps - 1))
            for i in range(steps)
        ]

    def energy_optimal_setting(
        self, profile: AlgorithmProfile, *, tol: float = 1e-6
    ) -> OperatingPoint:
        """The frequency minimising total energy, by golden-section search.

        ``E(s)`` is unimodal under this scaling model: pushing ``s`` up
        raises per-flop switching energy (``v²``) but shortens the time
        static power burns; the optimum sits where those derivatives
        balance — at ``s_max`` exactly when static power dominates
        (race-to-halt), in the interior when it does not.
        """
        policy = self.policy
        lo, hi = policy.s_min, policy.s_max
        inv_phi = (math.sqrt(5.0) - 1.0) / 2.0
        a, b = lo, hi
        c = b - inv_phi * (b - a)
        d = a + inv_phi * (b - a)
        fc = self.evaluate(profile, c).energy
        fd = self.evaluate(profile, d).energy
        while b - a > tol:
            if fc < fd:
                b, d, fd = d, c, fc
                c = b - inv_phi * (b - a)
                fc = self.evaluate(profile, c).energy
            else:
                a, c, fc = c, d, fd
                d = a + inv_phi * (b - a)
                fd = self.evaluate(profile, d).energy
        s_star = (a + b) / 2.0
        # The optimum may sit on a boundary; compare explicitly.
        candidates = [
            self.evaluate(profile, s) for s in (lo, s_star, hi)
        ]
        return min(candidates, key=lambda p: p.energy)

    def race_to_halt_wins(self, profile: AlgorithmProfile) -> bool:
        """Whether running at full frequency is (weakly) energy-optimal."""
        best = self.energy_optimal_setting(profile)
        full = self.evaluate(profile, self.policy.s_max)
        return full.energy <= best.energy * (1.0 + 1e-9)

    def bandwidth_matched_setting(self, profile: AlgorithmProfile) -> float:
        """The frequency where the kernel becomes exactly balanced.

        For a memory-bound kernel (``I < Bτ`` at nominal), slowing to
        ``s = I/Bτ`` makes compute exactly keep pace with memory — the
        classic DVFS target.  Clamped to the policy range.
        """
        s = profile.intensity / self.base.b_tau
        return min(self.policy.s_max, max(self.policy.s_min, s))

"""The power model — eqs. (7)–(8) and the "powerline".

Average power is just ``P = E / T``; dividing eq. (5) by eq. (3) gives
the closed form

    ``P = (π_flop/η) · [ min(I,Bτ)/Bτ + B̂ε(I)/max(I,Bτ) ]``       (eq. 7)

whose shape (the paper's Fig. 2b "power-line") has three landmarks:

* **compute-bound limit** (``I → ∞``): ``P → π_flop/η = π_flop + π0`` —
  flop power plus constant power;
* **memory-bound limit** (``I → 0``): ``P → π_mem + π0`` where
  ``π_mem = π_flop·Bε/Bτ`` — streaming power;
* **maximum at ``I = Bτ``**: both pipelines saturated simultaneously,
  ``P = π_flop + π_mem + π0 ≤ π_flop(1 + Bε/Bτ) + π0``        (eq. 8).

The peak at the balance point is why power caps bite exactly where the
roofline has its corner — the §V-B observation reproduced by
:mod:`repro.core.powercap`.
"""

from __future__ import annotations

import numpy as np

from repro.core._array import as_intensity_array
from repro.core.algorithm import AlgorithmProfile
from repro.core.energy_model import EnergyModel
from repro.core.params import MachineModel
from repro.core.time_model import TimeModel
from repro.exceptions import ParameterError

__all__ = ["PowerModel"]


class PowerModel:
    """Evaluate eq. (7) for a fixed machine."""

    def __init__(self, machine: MachineModel):
        self.machine = machine
        self.time_model = TimeModel(machine)
        self.energy_model = EnergyModel(machine)

    # ------------------------------------------------------------------
    # Absolute quantities
    # ------------------------------------------------------------------

    def average_power(self, profile: AlgorithmProfile) -> float:
        """Average power ``P = E/T`` (W) for a concrete algorithm."""
        return self.energy_model.energy(profile) / self.time_model.time(profile)

    # ------------------------------------------------------------------
    # Intensity-parameterised (powerline) quantities
    # ------------------------------------------------------------------

    def power(self, intensity: float) -> float:
        """The powerline, eq. (7), in watts."""
        self._check_intensity(intensity)
        m = self.machine
        b_tau = m.b_tau
        b_eps_hat = m.b_eps_hat(intensity)
        return (m.pi_flop / m.eta_flop) * (
            min(intensity, b_tau) / b_tau + b_eps_hat / max(intensity, b_tau)
        )

    def normalized_power(self, intensity: float) -> float:
        """Power relative to flop power.

        With ``π0 = 0`` this is the paper's Fig. 2b axis (relative to
        ``π_flop``); with ``π0 > 0`` the paper's Fig. 5 normalises to
        flop-plus-constant power, ``π_flop + π0``, which is what this
        method uses so that the compute-bound limit is always 1.
        """
        return self.power(intensity) / (self.machine.pi_flop + self.machine.pi0)

    # ------------------------------------------------------------------
    # Array-native fast path
    # ------------------------------------------------------------------

    def power_batch(self, intensities: np.ndarray) -> np.ndarray:
        """Vectorised powerline, eq. (7), in watts."""
        arr = as_intensity_array(intensities)
        m = self.machine
        b_tau = m.b_tau
        b_eps_hat = m.b_eps_hat_batch(arr)
        return (m.pi_flop / m.eta_flop) * (
            np.minimum(arr, b_tau) / b_tau + b_eps_hat / np.maximum(arr, b_tau)
        )

    def normalized_power_batch(self, intensities: np.ndarray) -> np.ndarray:
        """Vectorised power relative to flop-plus-constant power."""
        return self.power_batch(intensities) / (
            self.machine.pi_flop + self.machine.pi0
        )

    def power_ratio_check(self, profile: AlgorithmProfile) -> float:
        """``(E/T) / P(I)`` — identically 1; exposed for test validation.

        Verifies the paper's claim that eq. (7) follows from dividing
        eq. (5) by eq. (3), for any concrete profile.
        """
        return self.average_power(profile) / self.power(profile.intensity)

    # ------------------------------------------------------------------
    # Landmarks
    # ------------------------------------------------------------------

    @property
    def compute_bound_limit(self) -> float:
        """``lim_{I→∞} P = π_flop + π0`` (W)."""
        return self.machine.pi_flop + self.machine.pi0

    @property
    def memory_bound_limit(self) -> float:
        """``lim_{I→0} P = π_mem + π0 = π_flop·Bε/Bτ + π0`` (W).

        The paper's Fig. 2b lower dashed line (y = Bε/Bτ = 4.0 in units of
        π_flop, for the Keckler-Fermi parameters with π0 = 0).
        """
        m = self.machine
        return m.pi_flop * m.b_eps / m.b_tau + m.pi0

    @property
    def max_power(self) -> float:
        """Peak of the powerline, attained at ``I = Bτ`` (eq. 8 + π0).

        ``P_max = π_flop·(1 + Bε/Bτ) + π0`` — both pipelines saturated.
        """
        return self.power(self.machine.b_tau)

    @property
    def argmax_intensity(self) -> float:
        """The intensity of maximum power: the time-balance point ``Bτ``."""
        return self.machine.b_tau

    def exceeds_cap(self, intensity: float) -> bool:
        """Whether eq. (7) demands more than the machine's power cap.

        Returns ``False`` when no cap is configured.  Where this is true,
        the uncapped model over-predicts power and under-predicts time —
        the discrepancy the paper observes for the GTX 580 in single
        precision near ``Bτ`` (needs ~387 W against a 244 W rating).
        """
        cap = self.machine.power_cap
        if cap is None:
            return False
        return self.power(intensity) > cap

    def exceeds_cap_batch(self, intensities: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`exceeds_cap`: a boolean array per intensity.

        All-``False`` (after validation) when no cap is configured,
        matching the scalar method's ``None``-cap behaviour.
        """
        arr = as_intensity_array(intensities)
        cap = self.machine.power_cap
        if cap is None:
            return np.zeros(arr.shape, dtype=bool)
        return self.power_batch(arr) > cap

    @staticmethod
    def _check_intensity(intensity: float) -> None:
        if not intensity > 0:
            raise ParameterError(f"intensity must be positive, got {intensity}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PowerModel({self.machine.name!r}, "
            f"P_max={self.max_power:.3g} W at I={self.argmax_intensity:.3g})"
        )

"""Balance gaps, bound quadrants, and race-to-halt analysis (§II-D, §V-B).

The paper's central qualitative finding is that the relationship between
the time-balance ``Bτ`` and the (effective) energy-balance decides the
*strategy* for saving energy:

* ``B̂ε < Bτ`` — time-efficiency implies energy-efficiency: once code is
  compute-bound in time it is already within 2x of optimal energy
  efficiency.  **Race-to-halt** (run at full speed, then power off) is a
  sound first-order policy.  This is where 2013 hardware sits, largely
  because constant power is high.
* ``B̂ε > Bτ`` — a *balance gap* opens: an algorithm with
  ``Bτ < I < B̂ε`` is compute-bound in time yet memory-bound in energy.
  Optimising for energy is then strictly harder than optimising for time,
  and race-to-halt breaks.

Energy-efficiency implies time-efficiency whenever ``Bε ≥ Bτ``
(``I > Bε ⇒ I > Bτ``) — the paper's argument that energy is "the nobler
goal" if one metric must be chosen.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.energy_model import EnergyModel
from repro.core.params import MachineModel
from repro.core.time_model import TimeBound, TimeModel

__all__ = ["BoundQuadrant", "BalanceReport", "classify_quadrant", "analyze"]


class BoundQuadrant(enum.Enum):
    """Joint time/energy boundedness of an intensity on a machine."""

    MEMORY_MEMORY = "memory-bound in time and energy"
    COMPUTE_MEMORY = "compute-bound in time, memory-bound in energy"
    MEMORY_COMPUTE = "memory-bound in time, compute-bound in energy"
    COMPUTE_COMPUTE = "compute-bound in time and energy"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def classify_quadrant(machine: MachineModel, intensity: float) -> BoundQuadrant:
    """Classify an intensity into the joint time/energy quadrant.

    The energy threshold is the effective balance crossing ``I = B̂ε(I)``
    (the arch line's half-efficiency point), so the classification matches
    what the paper annotates on its Fig. 4 panels.  Exactly-balanced
    intensities count as compute-bound.
    """
    time_compute = TimeModel(machine).classify(intensity) in (
        TimeBound.COMPUTE,
        TimeBound.BALANCED,
    )
    energy_compute = EnergyModel(machine).classify(intensity) in (
        TimeBound.COMPUTE,
        TimeBound.BALANCED,
    )
    if time_compute and energy_compute:
        return BoundQuadrant.COMPUTE_COMPUTE
    if time_compute:
        return BoundQuadrant.COMPUTE_MEMORY
    if energy_compute:
        return BoundQuadrant.MEMORY_COMPUTE
    return BoundQuadrant.MEMORY_MEMORY


@dataclass(frozen=True, slots=True)
class BalanceReport:
    """Summary of a machine's balance structure and its strategic meaning.

    Attributes
    ----------
    machine_name:
        Which machine was analysed.
    b_tau, b_eps, b_eps_effective:
        Time-balance, raw energy-balance (π0-independent), and the
        effective crossing with constant power folded in.
    raw_gap, effective_gap:
        ``Bε/Bτ`` and ``B̂ε*/Bτ``.  An effective gap below 1 is the
        race-to-halt regime.
    race_to_halt_effective:
        True when time-efficiency implies (within 2x) energy-efficiency.
    energy_implies_time:
        True when an algorithm past the energy balance is necessarily past
        the time balance too (``Bε ≥ Bτ``).
    gap_interval:
        The interval of intensities that are compute-bound in time but
        memory-bound in energy, or ``None`` when it is empty.
    """

    machine_name: str
    b_tau: float
    b_eps: float
    b_eps_effective: float
    raw_gap: float
    effective_gap: float
    race_to_halt_effective: bool
    energy_implies_time: bool
    gap_interval: tuple[float, float] | None

    def describe(self) -> str:
        """Human-readable strategy summary."""
        lines = [
            f"balance analysis: {self.machine_name}",
            f"  B_tau = {self.b_tau:.3f} flop/B, B_eps = {self.b_eps:.3f} flop/B, "
            f"effective B_eps = {self.b_eps_effective:.3f} flop/B",
            f"  raw gap       = {self.raw_gap:.3f}",
            f"  effective gap = {self.effective_gap:.3f}",
        ]
        if self.race_to_halt_effective:
            lines.append(
                "  regime: effective B_eps <= B_tau -- time-efficiency implies "
                "energy-efficiency (within 2x); race-to-halt is sound"
            )
        else:
            assert self.gap_interval is not None
            lo, hi = self.gap_interval
            lines.append(
                f"  regime: balance gap open -- intensities in ({lo:.3f}, {hi:.3f}) "
                "are compute-bound in time but memory-bound in energy; "
                "race-to-halt breaks"
            )
        if self.energy_implies_time:
            lines.append(
                "  energy-efficiency implies time-efficiency (B_eps >= B_tau)"
            )
        return "\n".join(lines)


def analyze(machine: MachineModel) -> BalanceReport:
    """Produce the :class:`BalanceReport` for a machine."""
    b_tau = machine.b_tau
    b_eps = machine.b_eps
    crossing = machine.effective_balance_crossing
    race = crossing <= b_tau
    gap_interval = None if race else (b_tau, crossing)
    return BalanceReport(
        machine_name=machine.name,
        b_tau=b_tau,
        b_eps=b_eps,
        b_eps_effective=crossing,
        raw_gap=b_eps / b_tau,
        effective_gap=crossing / b_tau,
        race_to_halt_effective=race,
        energy_implies_time=b_eps >= b_tau,
        gap_interval=gap_interval,
    )

"""Concurrency-limited bandwidth: the latency refinement (§VII limit 1).

The basic model assumes *sufficient concurrency* so that throughput
constants apply.  The paper defers latency effects to Czechowski et
al.'s balance principles (its ref. [1]); this module implements that
refinement's memory side: by Little's law, a code sustaining ``c``
outstanding cache-line requests against a memory latency ``L`` achieves

    ``BW_eff = min(BW_peak, c · line_bytes / L)``

so a low-concurrency kernel sees a *lower personal roofline* whose
balance point shifts left.  Because energy carries ``π0·T``, exposed
latency costs energy too — the same asymmetry as ceilings and depth:
dynamic energy is untouched, constant energy inflates with the stretch.

:class:`ConcurrencyModel` answers the designer's question directly:
how many outstanding misses does this machine *require* before the
bandwidth-bound roofline is real (``c_min = BW_peak·L/line``), and what
do time and energy look like below that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.core.algorithm import AlgorithmProfile
from repro.core.energy_model import EnergyModel
from repro.core.params import MachineModel
from repro.core.time_model import TimeModel
from repro.exceptions import ParameterError

__all__ = ["MemorySubsystem", "ConcurrencyModel"]


@dataclass(frozen=True, slots=True)
class MemorySubsystem:
    """Latency-side description of the memory system.

    ``latency`` in seconds per miss; ``line_bytes`` per transfer.
    Representative 2013 values: ~60-100 ns DRAM latency, 64 B lines
    (CPU) / 128 B sectors (GPU).
    """

    latency: float
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if not math.isfinite(self.latency) or self.latency <= 0:
            raise ParameterError(f"latency must be positive, got {self.latency}")
        if self.line_bytes < 1:
            raise ParameterError("line_bytes must be >= 1")

    def achievable_bandwidth(self, concurrency: float) -> float:
        """Little's law: ``c·line/L`` bytes per second."""
        if concurrency <= 0:
            raise ParameterError(f"concurrency must be positive, got {concurrency}")
        return concurrency * self.line_bytes / self.latency


class ConcurrencyModel:
    """The basic model with a concurrency-limited memory pipe."""

    def __init__(self, machine: MachineModel, memory: MemorySubsystem):
        self.machine = machine
        self.memory = memory

    # ------------------------------------------------------------------

    @property
    def required_concurrency(self) -> float:
        """Outstanding misses needed to saturate peak bandwidth.

        ``c_min = BW_peak · L / line`` — the machine-balance statement of
        Little's law.  A 25.6 GB/s, 80 ns, 64 B system needs 32 misses in
        flight; a 192 GB/s GPU at 400 ns needs ~600 — which is why GPUs
        demand massive thread counts.
        """
        return self.machine.peak_bandwidth * self.memory.latency / self.memory.line_bytes

    def effective_machine(self, concurrency: float) -> MachineModel:
        """The machine this kernel actually experiences.

        Bandwidth capped by Little's law; everything else unchanged.
        At or above :attr:`required_concurrency` this is the machine
        itself.
        """
        bandwidth = min(
            self.machine.peak_bandwidth,
            self.memory.achievable_bandwidth(concurrency),
        )
        return replace(
            self.machine,
            name=f"{self.machine.name} [c={concurrency:g}]",
            tau_mem=1.0 / bandwidth,
        )

    def time(self, profile: AlgorithmProfile, concurrency: float) -> float:
        """Eq. (3) time under the concurrency-limited bandwidth (s)."""
        return TimeModel(self.effective_machine(concurrency)).time(profile)

    def energy(self, profile: AlgorithmProfile, concurrency: float) -> float:
        """Eq. (4) energy; only the π0·T term responds to concurrency (J)."""
        return EnergyModel(self.effective_machine(concurrency)).energy(profile)

    def effective_balance(self, concurrency: float) -> float:
        """The personal time-balance ``Bτ(c)`` (flop/B).

        Grows as concurrency falls: a latency-bound kernel is
        "memory-bound" at intensities where a well-pipelined one is
        compute-bound.
        """
        return self.effective_machine(concurrency).b_tau

    def latency_penalty(
        self, profile: AlgorithmProfile, concurrency: float
    ) -> float:
        """Slowdown versus the fully concurrent ideal (≥ 1)."""
        ideal = TimeModel(self.machine).time(profile)
        return self.time(profile, concurrency) / ideal

    def energy_penalty(
        self, profile: AlgorithmProfile, concurrency: float
    ) -> float:
        """Energy inflation versus the ideal (≥ 1; = 1 when π0 = 0).

        The tests pin the identity: with no constant power, exposed
        latency costs *zero* energy — only time.
        """
        ideal = EnergyModel(self.machine).energy(profile)
        return self.energy(profile, concurrency) / ideal

    def concurrency_for_half_efficiency(self, profile: AlgorithmProfile) -> float:
        """The concurrency below which the kernel loses 2x in time.

        Solves ``latency_penalty = 2`` in closed form.  For a kernel
        memory-bound even at full bandwidth, halving effective bandwidth
        doubles time: ``c = c_sat/2`` where ``c_sat`` saturates *its*
        requirement; for compute-bound kernels the answer is lower —
        bandwidth can degrade until ``Bτ(c) = I`` before time suffers at
        all, then scales.
        """
        ideal = TimeModel(self.machine).time(profile)
        # Time = max(W·tau_flop, Q/BW(c)); penalty 2 ⇒ Q/BW(c) = 2·ideal.
        bw_needed = profile.traffic / (2.0 * ideal)
        return bw_needed * self.memory.latency / self.memory.line_bytes

"""Parameter sensitivity: which machine improvements matter? (§V-B, §VII)

The paper closes on architects' questions: *to what extent will π0 go
toward 0, and to what extent will microarchitectural inefficiencies
reduce?*  — i.e., which cost coefficient most constrains energy
efficiency for a given workload.  This module answers that with exact
elasticities of the energy model.

For ``E = W·ε_flop + Q·ε_mem + π0·T`` the elasticity of ``E`` with
respect to a parameter ``p`` is ``(p/E)·∂E/∂p`` — the fractional energy
change per fractional parameter change.  The three energy elasticities
are simply the component energy fractions (E is linear in each); the
time-cost elasticities act through the ``π0·T`` term and are nonzero
only for the binding time component.  All elasticities are
non-negative and the energy ones sum to 1 — invariants the tests check.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.algorithm import AlgorithmProfile
from repro.core.energy_model import EnergyModel
from repro.core.params import MachineModel
from repro.core.time_model import TimeBound, TimeModel

__all__ = ["EnergySensitivity", "energy_sensitivity", "whatif_pi0_zero"]


@dataclass(frozen=True, slots=True)
class EnergySensitivity:
    """Elasticities of total energy w.r.t. each machine parameter.

    Each value answers: "if this parameter improved by 1%, by what
    percentage would this workload's energy fall?"
    """

    eps_flop: float
    eps_mem: float
    pi0: float
    tau_flop: float
    tau_mem: float

    @property
    def ranked(self) -> list[tuple[str, float]]:
        """Parameters sorted by leverage, biggest first."""
        items = [
            ("eps_flop", self.eps_flop),
            ("eps_mem", self.eps_mem),
            ("pi0", self.pi0),
            ("tau_flop", self.tau_flop),
            ("tau_mem", self.tau_mem),
        ]
        return sorted(items, key=lambda kv: kv[1], reverse=True)

    def describe(self) -> str:
        lines = ["energy elasticities (1% parameter cut -> x% energy cut):"]
        for name, value in self.ranked:
            lines.append(f"  {name:<10} {value:7.4f}")
        return "\n".join(lines)


def energy_sensitivity(
    machine: MachineModel, profile: AlgorithmProfile
) -> EnergySensitivity:
    """Exact elasticities of eq. (4) energy for one workload.

    Derivation: with ``E = W ε_f + Q ε_m + π0 T``,

    * ``∂E/∂ε_f · ε_f/E = E_flops/E`` (and analogously ε_m, π0);
    * ``T = max(W τ_f, Q τ_m)`` depends only on the binding component,
      so ``∂E/∂τ_f · τ_f/E = E_const/E`` when compute-bound in time,
      0 when memory-bound (and vice versa for ``τ_m``).  At the exact
      balance point we attribute the constant term to both sides
      (subgradient choice; measure-zero in practice).
    """
    energy_model = EnergyModel(machine)
    breakdown = energy_model.breakdown(profile)
    total = breakdown.total
    const_share = breakdown.constant / total

    bound = TimeModel(machine).classify(profile.intensity)
    tau_flop_share = const_share if bound in (TimeBound.COMPUTE, TimeBound.BALANCED) else 0.0
    tau_mem_share = const_share if bound in (TimeBound.MEMORY, TimeBound.BALANCED) else 0.0

    return EnergySensitivity(
        eps_flop=breakdown.flops / total,
        eps_mem=breakdown.mem / total,
        pi0=const_share,
        tau_flop=tau_flop_share,
        tau_mem=tau_mem_share,
    )


def whatif_pi0_zero(
    machine: MachineModel, profile: AlgorithmProfile
) -> dict[str, float]:
    """The paper's π0 → 0 thought experiment for one workload.

    Returns the energy saving, the balance-gap change, and whether the
    race-to-halt verdict flips — the Fig. 4a "const=0" scenario made
    quantitative.
    """
    base_energy = EnergyModel(machine).energy(profile)
    zero = machine.with_constant_power(0.0)
    zero_energy = EnergyModel(zero).energy(profile)
    return {
        "energy_saving": 1.0 - zero_energy / base_energy,
        "effective_gap_before": machine.effective_balance_crossing / machine.b_tau,
        "effective_gap_after": zero.effective_balance_crossing / zero.b_tau,
        "race_to_halt_flips": float(
            (machine.effective_balance_crossing <= machine.b_tau)
            != (zero.effective_balance_crossing <= zero.b_tau)
        ),
    }

"""Power-cap refinement of the basic model (§V-B, paper's stated extension).

The basic powerline, eq. (7), peaks at the time-balance point and — on the
GTX 580 in single precision — demands ~387 W against the card's 244 W
rating.  Real hardware throttles instead: sustained power cannot exceed the
cap, so near ``Bτ`` the machine runs *slower* than eq. (3) predicts, which
is exactly the departure from the roofline the paper measures in Fig. 4b.

Model
-----
Dynamic energy is work-determined (``E_dyn = W·ε_flop + Q·ε_mem`` must be
spent regardless of speed), so a cap limits the *rate* at which dynamic
energy can be converted:

    ``T_capped = max(T_roofline, E_dyn / (P_cap − π0))``

Consequences captured here:

* capped time / throughput / normalized-performance curves (the sagging
  roofline of Fig. 4b near ``Bτ``);
* capped powerline: ``min(P_uncapped, P_cap)`` exactly (clipping);
* total energy under the cap *rises* near ``Bτ`` because constant power
  burns for the extended duration — a genuinely non-obvious interaction
  that the capped energy model exposes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core._array import as_intensity_array
from repro.core.algorithm import AlgorithmProfile
from repro.core.energy_model import EnergyModel
from repro.core.params import MachineModel
from repro.core.power_model import PowerModel
from repro.core.time_model import TimeModel
from repro.exceptions import ParameterError

__all__ = ["CapAnalysis", "CappedModel"]


@dataclass(frozen=True, slots=True)
class CapAnalysis:
    """Where and how hard a machine's power cap binds.

    ``interval`` is the intensity range over which the uncapped eq. (7)
    exceeds the cap (``None`` when the cap never binds); ``peak_demand``
    is the uncapped maximum power at ``I = Bτ``; ``worst_slowdown`` the
    largest time dilation factor the cap forces.
    """

    cap: float
    peak_demand: float
    interval: tuple[float, float] | None
    worst_slowdown: float

    @property
    def binds(self) -> bool:
        """True when some intensity is throttled."""
        return self.interval is not None


class CappedModel:
    """Time/energy/power model with an explicit sustained-power cap.

    Falls back to the uncapped models when the machine declares no cap.
    """

    def __init__(self, machine: MachineModel):
        self.machine = machine
        self.time_model = TimeModel(machine)
        self.energy_model = EnergyModel(machine)
        self.power_model = PowerModel(machine)

    # ------------------------------------------------------------------
    # Per-intensity quantities
    # ------------------------------------------------------------------

    def _dynamic_power_budget(self) -> float | None:
        cap = self.machine.power_cap
        if cap is None:
            return None
        return cap - self.machine.pi0

    def slowdown(self, intensity: float) -> float:
        """Time dilation factor ``T_capped / T_roofline`` (≥ 1)."""
        self._check_intensity(intensity)
        budget = self._dynamic_power_budget()
        if budget is None:
            return 1.0
        uncapped = self.power_model.power(intensity)
        dynamic_demand = uncapped - self.machine.pi0
        if dynamic_demand <= budget:
            return 1.0
        return dynamic_demand / budget

    def time_per_flop(self, intensity: float) -> float:
        """``T/W`` with throttling applied (s per flop)."""
        return self.time_model.time_per_flop(intensity) * self.slowdown(intensity)

    def time(self, profile: AlgorithmProfile) -> float:
        """Capped execution time (s)."""
        return profile.work * self.time_per_flop(profile.intensity)

    def normalized_performance(self, intensity: float) -> float:
        """Capped roofline: sags below ``min(1, I/Bτ)`` where the cap binds.

        This is the curve that explains the paper's Fig. 4b single-precision
        GPU measurements departing from the ideal roofline near ``Bτ``.
        """
        return self.time_model.normalized_performance(intensity) / self.slowdown(
            intensity
        )

    def attainable_gflops(self, intensity: float) -> float:
        """Capped roofline in absolute GFLOP/s."""
        return self.normalized_performance(intensity) * self.machine.peak_gflops

    def power(self, intensity: float) -> float:
        """Capped average power: ``min(P_uncapped, P_cap)``.

        Clipping is exact: during throttling the machine runs pinned at the
        cap (dynamic energy spread over the dilated time plus π0 is the cap
        by construction).
        """
        uncapped = self.power_model.power(intensity)
        cap = self.machine.power_cap
        return uncapped if cap is None else min(uncapped, cap)

    def energy_per_flop(self, intensity: float) -> float:
        """``E/W`` including extra constant energy burned while throttled.

        Dynamic energy is unchanged by the cap; only the ``π0·T`` term
        grows with the dilated time.
        """
        self._check_intensity(intensity)
        m = self.machine
        dynamic = m.eps_flop + m.eps_mem / intensity
        return dynamic + m.pi0 * self.time_per_flop(intensity)

    def energy(self, profile: AlgorithmProfile) -> float:
        """Capped total energy (J)."""
        return profile.work * self.energy_per_flop(profile.intensity)

    def normalized_efficiency(self, intensity: float) -> float:
        """Capped arch line (fraction of the *uncapped* flop-only peak)."""
        return self.machine.eps_flop_hat / self.energy_per_flop(intensity)

    # ------------------------------------------------------------------
    # Array-native fast path
    # ------------------------------------------------------------------

    def slowdown_batch(self, intensities: np.ndarray) -> np.ndarray:
        """Vectorised time dilation ``T_capped / T_roofline`` (≥ 1)."""
        arr = as_intensity_array(intensities)
        budget = self._dynamic_power_budget()
        if budget is None:
            return np.ones_like(arr)
        dynamic_demand = self.power_model.power_batch(arr) - self.machine.pi0
        return np.maximum(1.0, dynamic_demand / budget)

    def normalized_performance_batch(self, intensities: np.ndarray) -> np.ndarray:
        """Vectorised capped roofline (fraction of peak)."""
        return self.time_model.normalized_performance_batch(
            intensities
        ) / self.slowdown_batch(intensities)

    def attainable_gflops_batch(self, intensities: np.ndarray) -> np.ndarray:
        """Vectorised capped roofline in absolute GFLOP/s."""
        return (
            self.normalized_performance_batch(intensities)
            * self.machine.peak_gflops
        )

    def time_per_flop_batch(self, intensities: np.ndarray) -> np.ndarray:
        """Vectorised throttled ``T/W`` (seconds per flop)."""
        return self.time_model.time_per_flop_batch(
            intensities
        ) * self.slowdown_batch(intensities)

    def power_batch(self, intensities: np.ndarray) -> np.ndarray:
        """Vectorised capped powerline ``min(P_uncapped, P_cap)`` (W)."""
        uncapped = self.power_model.power_batch(intensities)
        cap = self.machine.power_cap
        return uncapped if cap is None else np.minimum(uncapped, cap)

    def energy_per_flop_batch(self, intensities: np.ndarray) -> np.ndarray:
        """Vectorised capped ``E/W`` (joules per flop)."""
        arr = as_intensity_array(intensities)
        m = self.machine
        dynamic = m.eps_flop + m.eps_mem / arr
        dilated = self.time_model.time_per_flop_batch(arr) * self.slowdown_batch(arr)
        return dynamic + m.pi0 * dilated

    def normalized_efficiency_batch(self, intensities: np.ndarray) -> np.ndarray:
        """Vectorised capped arch line (fraction of the uncapped peak)."""
        return self.machine.eps_flop_hat / self.energy_per_flop_batch(intensities)

    # ------------------------------------------------------------------
    # Cap structure analysis
    # ------------------------------------------------------------------

    def analyze(self, *, lo: float = 1e-3, hi: float = 1e6) -> CapAnalysis:
        """Find the binding interval of the cap in closed form.

        The uncapped powerline is strictly increasing below ``Bτ`` and
        strictly decreasing above, so the set ``{I : P(I) > cap}`` is an
        interval around ``Bτ`` whose endpoints solve ``P(I) = cap`` on each
        monotone branch; we solve each branch analytically.
        """
        m = self.machine
        cap = m.power_cap
        peak = self.power_model.max_power
        if cap is None or peak <= cap:
            return CapAnalysis(
                cap=cap if cap is not None else float("inf"),
                peak_demand=peak,
                interval=None,
                worst_slowdown=1.0,
            )
        scale = m.pi_flop / m.eta_flop  # = pi_flop + pi0
        eta = m.eta_flop
        b_tau, b_eps = m.b_tau, m.b_eps
        # Rising branch (I < Bτ): P = scale*(eta*I/Bτ + eta*Bε/Bτ + (1−eta)).
        lo_root = (cap / scale - (1.0 - eta)) * b_tau / eta - b_eps
        lo_root = max(lo_root, lo)
        # Falling branch (I > Bτ): P = scale*(1 + eta*Bε/I).
        frac = cap / scale - 1.0
        hi_root = hi if frac <= 0 else eta * b_eps / frac
        hi_root = min(hi_root, hi)
        worst = self.slowdown(b_tau)
        return CapAnalysis(
            cap=cap,
            peak_demand=peak,
            interval=(float(lo_root), float(hi_root)),
            worst_slowdown=worst,
        )

    @staticmethod
    def _check_intensity(intensity: float) -> None:
        if not intensity > 0:
            raise ParameterError(f"intensity must be positive, got {intensity}")

"""Roofline ceilings — and their energy arch-line analogues.

The roofline tradition (Williams, Waterman, Patterson) draws *ceilings*
under the peak roof: the performance attainable without SIMD, without
FMA, without enough memory-level parallelism, etc.  A measured point's
band between ceilings diagnoses *which* optimisation is missing.

This module adds the ceilings to the time roofline and — following the
paper's programme of building energy analogues — derives each ceiling's
**arch line**: losing a compute feature stretches ``τ_flop``, which
feeds energy only through the constant-power term ``π0·T``.  The
consequence is itself a finding the tests pin down: on a machine with no
constant power, compute ceilings cost *time but zero energy*, while on
2013-class machines (π0 ≈ 122 W) leaving SIMD unused wastes energy in
direct proportion to the stretched runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.energy_model import EnergyModel
from repro.core.params import MachineModel
from repro.core.time_model import TimeModel
from repro.exceptions import ParameterError

__all__ = ["Ceiling", "CeilingDiagnosis", "RooflineCeilings"]


@dataclass(frozen=True, slots=True)
class Ceiling:
    """One attainability ceiling.

    ``compute_fraction`` scales peak arithmetic throughput;
    ``bandwidth_fraction`` scales peak bandwidth.  A classic CPU ceiling
    stack: no-SIMD = 1/width compute, no-FMA = 1/2 compute, no-NUMA or
    single-stream = fractional bandwidth.
    """

    name: str
    compute_fraction: float = 1.0
    bandwidth_fraction: float = 1.0

    def __post_init__(self) -> None:
        for attr in ("compute_fraction", "bandwidth_fraction"):
            value = getattr(self, attr)
            if not 0.0 < value <= 1.0:
                raise ParameterError(f"{attr} must be in (0, 1], got {value}")


@dataclass(frozen=True, slots=True)
class CeilingDiagnosis:
    """Where a measured point falls in the ceiling stack.

    ``below`` is the tightest ceiling the point is under; ``above`` the
    next one it has already cleared (``None`` at the extremes).
    ``advice`` names the feature whose absence the band suggests.
    """

    intensity: float
    achieved_fraction: float
    below: str | None
    above: str | None

    @property
    def advice(self) -> str:
        if self.below is None:
            return "at or above the peak roof -- measurement or model error?"
        if self.above is None:
            return f"below every ceiling -- profile for issues before {self.below}"
        return (
            f"between '{self.above}' and '{self.below}': "
            f"the '{self.below}' feature is the likely missing optimisation"
        )


class RooflineCeilings:
    """A machine plus an ordered stack of ceilings."""

    def __init__(self, machine: MachineModel, ceilings: list[Ceiling]):
        names = [c.name for c in ceilings]
        if len(set(names)) != len(names):
            raise ParameterError(f"duplicate ceiling names: {names}")
        # Sort loosest (closest to the roof) first for banding.
        self.machine = machine
        self.ceilings = sorted(
            ceilings,
            key=lambda c: c.compute_fraction * c.bandwidth_fraction,
            reverse=True,
        )

    @classmethod
    def classic_cpu(cls, machine: MachineModel, *, simd_width: int = 4) -> "RooflineCeilings":
        """The textbook CPU stack: no-FMA, no-SIMD, single-stream bandwidth."""
        return cls(
            machine,
            [
                Ceiling("no-FMA", compute_fraction=0.5),
                Ceiling("no-SIMD", compute_fraction=1.0 / simd_width),
                Ceiling("single-stream", bandwidth_fraction=0.5),
            ],
        )

    # ------------------------------------------------------------------

    def machine_under(self, ceiling: Ceiling) -> MachineModel:
        """The machine as seen by code that hits this ceiling."""
        return replace(
            self.machine,
            name=f"{self.machine.name} [{ceiling.name}]",
            tau_flop=self.machine.tau_flop / ceiling.compute_fraction,
            tau_mem=self.machine.tau_mem / ceiling.bandwidth_fraction,
        )

    def attainable_fraction(self, intensity: float, ceiling: Ceiling | None = None) -> float:
        """Attainable performance (fraction of the *peak* roof) under a ceiling."""
        if ceiling is None:
            return TimeModel(self.machine).normalized_performance(intensity)
        limited = self.machine_under(ceiling)
        achieved = TimeModel(limited).attainable_gflops(intensity)
        return achieved / self.machine.peak_gflops

    def energy_penalty_fraction(self, intensity: float, ceiling: Ceiling) -> float:
        """Extra energy per flop caused by the ceiling, as a fraction.

        ``E_ceiling/E_peak − 1`` at this intensity.  Zero exactly when
        π0 = 0 (dynamic energy is time-independent) — the time/energy
        asymmetry of ceilings.
        """
        base = EnergyModel(self.machine).energy_per_flop(intensity)
        limited = EnergyModel(self.machine_under(ceiling)).energy_per_flop(intensity)
        return limited / base - 1.0

    # ------------------------------------------------------------------
    # Array-native fast path
    # ------------------------------------------------------------------

    def attainable_fraction_batch(
        self, intensities: np.ndarray, ceiling: Ceiling | None = None
    ) -> np.ndarray:
        """Vectorised attainable fraction of the peak roof under a ceiling."""
        if ceiling is None:
            return TimeModel(self.machine).normalized_performance_batch(intensities)
        limited = self.machine_under(ceiling)
        achieved = TimeModel(limited).attainable_gflops_batch(intensities)
        return achieved / self.machine.peak_gflops

    def energy_penalty_fraction_batch(
        self, intensities: np.ndarray, ceiling: Ceiling
    ) -> np.ndarray:
        """Vectorised ``E_ceiling/E_peak − 1`` over an intensity array."""
        base = EnergyModel(self.machine).energy_per_flop_batch(intensities)
        limited = EnergyModel(self.machine_under(ceiling)).energy_per_flop_batch(
            intensities
        )
        return limited / base - 1.0

    # ------------------------------------------------------------------

    def diagnose(self, intensity: float, achieved_gflops: float) -> CeilingDiagnosis:
        """Band a measured point within the ceiling stack."""
        if achieved_gflops <= 0:
            raise ParameterError("achieved_gflops must be positive")
        fraction = achieved_gflops / self.machine.peak_gflops
        roof = self.attainable_fraction(intensity)
        below: str | None = None
        above: str | None = None
        if fraction >= roof * (1 - 1e-9):
            return CeilingDiagnosis(
                intensity=intensity,
                achieved_fraction=fraction,
                below=None,
                above="peak",
            )
        # Band against the levels *at this intensity*: a ceiling that does
        # not bind here (e.g. a bandwidth ceiling in the compute-bound
        # region) sits at the roof and must not capture the point.
        levels = sorted(
            (
                (c.name, self.attainable_fraction(intensity, c))
                for c in self.ceilings
            ),
            key=lambda kv: kv[1],
            reverse=True,
        )
        below = "peak"
        for name, level in levels:
            if level >= roof * (1 - 1e-9):
                continue  # ceiling does not bind at this intensity
            if fraction >= level * (1 - 1e-9):
                above = name
                break
            below = name
        else:
            above = None
        return CeilingDiagnosis(
            intensity=intensity,
            achieved_fraction=fraction,
            below=below,
            above=above,
        )

    def describe(self, intensity: float) -> str:
        """The ceiling stack's attainable levels at one intensity."""
        lines = [
            f"{self.machine.name} at I = {intensity:g} flop/B:",
            f"  {'peak roof':<16} {self.attainable_fraction(intensity):7.3f} of peak",
        ]
        for ceiling in self.ceilings:
            frac = self.attainable_fraction(intensity, ceiling)
            penalty = self.energy_penalty_fraction(intensity, ceiling)
            lines.append(
                f"  {ceiling.name:<16} {frac:7.3f} of peak "
                f"(energy penalty {penalty:+.1%})"
            )
        return "\n".join(lines)

"""Machine characterisation: the cost coefficients of Table I.

A machine, for the purposes of the model, is four throughput-based cost
coefficients plus a constant-power term:

=============  =====================================  ==================
 symbol         meaning                                attribute
=============  =====================================  ==================
 ``tau_flop``   time per arithmetic operation (s)      :attr:`MachineModel.tau_flop`
 ``tau_mem``    time per byte of slow-memory traffic   :attr:`MachineModel.tau_mem`
 ``eps_flop``   energy per arithmetic operation (J)    :attr:`MachineModel.eps_flop`
 ``eps_mem``    energy per byte (J)                    :attr:`MachineModel.eps_mem`
 ``pi0``        constant power (W)                     :attr:`MachineModel.pi0`
=============  =====================================  ==================

Everything else in Table I is *derived*, and exposed as properties:
time-balance ``B_tau``, energy-balance ``B_eps``, constant energy per flop
``eps0``, effective flop energy ``eps_flop_hat``, constant-flop efficiency
``eta_flop``, flop power ``pi_flop``, and the intensity-dependent effective
energy-balance ``B_eps_hat(I)`` of eq. (6).

The model intentionally uses *throughput* (not latency) cost values; see
the paper's §II-B footnote 2 — this assumes sufficient concurrency, and a
memory-bound computation is really memory-*bandwidth* bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterable

import numpy as np

from repro.exceptions import ParameterError
from repro.units import (
    GIGA,
    time_per_byte_from_gbytes,
    time_per_flop_from_gflops,
    to_picojoules,
)

__all__ = [
    "MachineModel",
    "effective_energy_balance",
    "effective_energy_balance_batch",
]


def effective_energy_balance(
    intensity: float,
    b_tau: float,
    b_eps: float,
    eta_flop: float,
) -> float:
    """Effective energy-balance ``B̂ε(I)`` of eq. (6).

    ``B̂ε(I) = η·Bε + (1 − η)·max(0, Bτ − I)``

    The first term is the energy-balance discounted by the constant-flop
    efficiency; the second charges constant energy burned during the
    memory-bound stretch of execution (``I < Bτ``) to the communication
    penalty.  With no constant power (``η = 1``) this reduces to ``Bε``.
    """
    if intensity <= 0:
        raise ParameterError(f"intensity must be positive, got {intensity}")
    if not 0.0 < eta_flop <= 1.0:
        raise ParameterError(f"eta_flop must be in (0, 1], got {eta_flop}")
    return eta_flop * b_eps + (1.0 - eta_flop) * max(0.0, b_tau - intensity)


def effective_energy_balance_batch(
    intensities: np.ndarray,
    b_tau: float,
    b_eps: float,
    eta_flop: float,
) -> np.ndarray:
    """Vectorised eq. (6): ``B̂ε(I)`` for a whole intensity grid at once.

    Element-wise identical to :func:`effective_energy_balance`; one
    validation pass, no per-element Python dispatch.
    """
    from repro.core._array import as_intensity_array

    arr = as_intensity_array(intensities)
    if not 0.0 < eta_flop <= 1.0:
        raise ParameterError(f"eta_flop must be in (0, 1], got {eta_flop}")
    return eta_flop * b_eps + (1.0 - eta_flop) * np.maximum(0.0, b_tau - arr)


@dataclass(frozen=True, slots=True)
class MachineModel:
    """A machine in the model: cost coefficients plus derived balances.

    Parameters
    ----------
    name:
        Human-readable identifier, e.g. ``"NVIDIA GTX 580 (double)"``.
    tau_flop:
        Time per useful arithmetic operation, seconds per flop.
    tau_mem:
        Time per byte moved between slow and fast memory, seconds per byte.
    eps_flop:
        Energy per arithmetic operation, joules per flop.
    eps_mem:
        Energy per byte, joules per byte.
    pi0:
        Constant power, watts.  Burned for the entire duration of the
        computation regardless of what it does.  Defaults to zero, the
        idealised setting of the paper's Fig. 2.
    power_cap:
        Optional maximum sustained power (W), e.g. the GTX 580's 244 W
        rating.  ``None`` disables the §V-B power-cap refinement.

    Notes
    -----
    Instances are immutable; use :meth:`with_constant_power` or
    :func:`dataclasses.replace` to derive variants (e.g. the paper's
    "const=0" curves).
    """

    name: str
    tau_flop: float
    tau_mem: float
    eps_flop: float
    eps_mem: float
    pi0: float = 0.0
    power_cap: float | None = None

    def __post_init__(self) -> None:
        for attr in ("tau_flop", "tau_mem", "eps_flop", "eps_mem"):
            value = getattr(self, attr)
            if not (isinstance(value, (int, float)) and math.isfinite(value)):
                raise ParameterError(f"{attr} must be a finite number, got {value!r}")
            if value <= 0:
                raise ParameterError(f"{attr} must be positive, got {value}")
        if not math.isfinite(self.pi0) or self.pi0 < 0:
            raise ParameterError(f"pi0 must be finite and >= 0, got {self.pi0}")
        if self.power_cap is not None:
            if not math.isfinite(self.power_cap) or self.power_cap <= 0:
                raise ParameterError(f"power_cap must be positive, got {self.power_cap}")
            if self.power_cap <= self.pi0:
                raise ParameterError(
                    f"power_cap ({self.power_cap} W) must exceed constant power "
                    f"pi0 ({self.pi0} W); otherwise no work can ever run"
                )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_peaks(
        cls,
        name: str,
        *,
        gflops: float,
        gbytes_per_s: float,
        eps_flop: float,
        eps_mem: float,
        pi0: float = 0.0,
        power_cap: float | None = None,
    ) -> "MachineModel":
        """Build a machine from peak throughputs (Table II derivation).

        ``tau_flop`` and ``tau_mem`` are the reciprocals of the peak
        arithmetic throughput (GFLOP/s) and memory bandwidth (GB/s).
        """
        return cls(
            name=name,
            tau_flop=time_per_flop_from_gflops(gflops),
            tau_mem=time_per_byte_from_gbytes(gbytes_per_s),
            eps_flop=eps_flop,
            eps_mem=eps_mem,
            pi0=pi0,
            power_cap=power_cap,
        )

    def with_constant_power(self, pi0: float) -> "MachineModel":
        """Return a copy with a different constant power.

        ``machine.with_constant_power(0.0)`` produces the paper's
        "const=0" hypothetical used in Figs. 4 and 5.
        """
        # replint: ignore[RL005] -- exact pi0=0 sentinel for the paper's "const=0" hypothetical, not a computed value
        suffix = " (const=0)" if pi0 == 0.0 and self.pi0 != 0.0 else ""
        return replace(self, name=self.name + suffix, pi0=pi0)

    def with_power_cap(self, power_cap: float | None) -> "MachineModel":
        """Return a copy with the power cap set (or removed with ``None``)."""
        return replace(self, power_cap=power_cap)

    # ------------------------------------------------------------------
    # Derived quantities (Table I)
    # ------------------------------------------------------------------

    @property
    def peak_flops(self) -> float:
        """Peak arithmetic throughput, flop/s (``1/tau_flop``)."""
        return 1.0 / self.tau_flop

    @property
    def peak_bandwidth(self) -> float:
        """Peak memory bandwidth, B/s (``1/tau_mem``)."""
        return 1.0 / self.tau_mem

    @property
    def peak_gflops(self) -> float:
        """Peak arithmetic throughput in GFLOP/s."""
        return self.peak_flops / GIGA

    @property
    def peak_gbytes(self) -> float:
        """Peak memory bandwidth in GB/s."""
        return self.peak_bandwidth / GIGA

    @property
    def b_tau(self) -> float:
        """Time-balance ``Bτ = tau_mem / tau_flop`` (flops per byte).

        The classical machine-balance point: the intensity above which a
        perfectly overlapped computation is compute-bound in time.
        """
        return self.tau_mem / self.tau_flop

    @property
    def b_eps(self) -> float:
        """Energy-balance ``Bε = eps_mem / eps_flop`` (flops per byte).

        The intensity at which energy spent on flops equals energy spent
        on memory traffic, ignoring constant power.
        """
        return self.eps_mem / self.eps_flop

    @property
    def eps0(self) -> float:
        """Constant energy per flop, ``ε0 = π0 · tau_flop`` (J)."""
        return self.pi0 * self.tau_flop

    @property
    def eps_flop_hat(self) -> float:
        """Actual energy to execute one flop, ``ε̂ = ε_flop + ε0`` (J).

        The minimum energy per flop achievable on this machine: the flop
        itself plus the constant power burned while it executes at peak
        throughput.
        """
        return self.eps_flop + self.eps0

    @property
    def eta_flop(self) -> float:
        """Constant-flop energy efficiency ``η = ε_flop / ε̂ ∈ (0, 1]``.

        Equals 1 exactly when the machine needs no constant power.
        """
        return self.eps_flop / self.eps_flop_hat

    @property
    def pi_flop(self) -> float:
        """Power of flop execution excluding constant power,
        ``π_flop = ε_flop / tau_flop`` (W)."""
        return self.eps_flop / self.tau_flop

    @property
    def pi_mem(self) -> float:
        """Power of saturated memory streaming excluding constant power,
        ``π_mem = ε_mem / tau_mem`` (W).

        Not named in the paper's Table I but implied by the powerline's
        memory-bound limit: ``π_mem = π_flop · Bε / Bτ``.
        """
        return self.eps_mem / self.tau_mem

    @property
    def balance_gap(self) -> float:
        """The balance gap ``Bε / Bτ`` (dimensionless, §II-D).

        Values above 1 mean energy-efficiency is harder to reach than
        time-efficiency (an algorithm can be compute-bound in time yet
        memory-bound in energy); the paper finds values below ~1 on 2013
        hardware once constant power is accounted for.
        """
        return self.b_eps / self.b_tau

    @property
    def peak_flops_per_joule(self) -> float:
        """Best possible energy efficiency, flop/J: ``1/ε̂`` (flops only)."""
        return 1.0 / self.eps_flop_hat

    @property
    def peak_gflops_per_joule(self) -> float:
        """Best possible energy efficiency in GFLOP/J (paper's Fig. 4 axis)."""
        return self.peak_flops_per_joule / GIGA

    # ------------------------------------------------------------------
    # Intensity-dependent derived quantities
    # ------------------------------------------------------------------

    def b_eps_hat(self, intensity: float) -> float:
        """Effective energy-balance ``B̂ε(I)`` of eq. (6)."""
        return effective_energy_balance(
            intensity, self.b_tau, self.b_eps, self.eta_flop
        )

    def b_eps_hat_batch(self, intensities: np.ndarray) -> np.ndarray:
        """Vectorised ``B̂ε(I)`` over an intensity array (eq. 6)."""
        return effective_energy_balance_batch(
            intensities, self.b_tau, self.b_eps, self.eta_flop
        )

    @property
    def effective_balance_crossing(self) -> float:
        """The intensity where the arch line crosses half of peak efficiency.

        Solves ``I = B̂ε(I)`` in closed form.  With ``π0 = 0`` this is just
        ``Bε``; with constant power it shifts left (lower), which is what
        makes race-to-halt effective on real machines (§V-B).  This is the
        "effective energy-balance" the paper annotates on Fig. 4
        (0.79 / 4.5 / 1.1 / 2.1 for its four device-precision cases).
        """
        eta = self.eta_flop
        candidate = eta * self.b_eps
        if candidate >= self.b_tau:
            # Crossing falls in the compute-bound region where B̂ε is constant.
            return candidate
        # Crossing in the memory-bound region: I = η·Bε + (1−η)(Bτ − I).
        return (eta * self.b_eps + (1.0 - eta) * self.b_tau) / (2.0 - eta)

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------

    def describe(self) -> str:
        """Multi-line human-readable summary of raw and derived parameters."""
        lines = [
            f"machine: {self.name}",
            f"  tau_flop  = {self.tau_flop:.4e} s/flop   (peak {self.peak_gflops:.2f} GFLOP/s)",
            f"  tau_mem   = {self.tau_mem:.4e} s/B      (peak {self.peak_gbytes:.2f} GB/s)",
            f"  eps_flop  = {self.eps_flop:.4e} J/flop  "
            f"({to_picojoules(self.eps_flop):.1f} pJ)",
            f"  eps_mem   = {self.eps_mem:.4e} J/B     "
            f"({to_picojoules(self.eps_mem):.1f} pJ)",
            f"  pi0       = {self.pi0:.2f} W",
            f"  B_tau     = {self.b_tau:.3f} flop/B",
            f"  B_eps     = {self.b_eps:.3f} flop/B",
            f"  eta_flop  = {self.eta_flop:.4f}",
            f"  B_eps_eff = {self.effective_balance_crossing:.3f} flop/B (arch-line y=1/2)",
            f"  gap       = {self.balance_gap:.3f} (B_eps / B_tau)",
            f"  peak eff  = {self.peak_gflops_per_joule:.3f} GFLOP/J",
        ]
        if self.power_cap is not None:
            lines.append(f"  power cap = {self.power_cap:.1f} W")
        return "\n".join(lines)

    @staticmethod
    def table(machines: Iterable["MachineModel"]) -> str:
        """Render several machines as an aligned comparison table."""
        rows = [
            (
                m.name,
                f"{m.peak_gflops:.1f}",
                f"{m.peak_gbytes:.1f}",
                f"{m.b_tau:.2f}",
                f"{m.b_eps:.2f}",
                f"{m.effective_balance_crossing:.2f}",
                f"{m.pi0:.0f}",
            )
            for m in machines
        ]
        header = ("machine", "GFLOP/s", "GB/s", "B_tau", "B_eps", "B_eps_eff", "pi0(W)")
        widths = [
            max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
            for i in range(len(header))
        ]
        fmt = "  ".join(f"{{:<{w}}}" for w in widths)
        out = [fmt.format(*header), fmt.format(*("-" * w for w in widths))]
        out.extend(fmt.format(*r) for r in rows)
        return "\n".join(out)

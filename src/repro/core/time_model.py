"""The time model — eq. (3) and the classical roofline.

Time costs overlap: with sufficient concurrency, memory transfers hide
behind arithmetic (or vice versa), so total time is the *max* of the two
component times:

    ``T = max(W·τ_flop, Q·τ_mem) = W·τ_flop · max(1, Bτ/I)``

This produces the familiar roofline with its sharp inflection at the
time-balance point ``I = Bτ``: below it the computation is memory-bound in
time, above it compute-bound.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.core._array import as_intensity_array, isclose_to_scalar
from repro.core.algorithm import AlgorithmProfile
from repro.core.params import MachineModel
from repro.exceptions import ParameterError

__all__ = ["TimeBound", "TimeBreakdown", "TimeModel"]


class TimeBound(enum.Enum):
    """Which resource limits execution time at a given intensity."""

    MEMORY = "memory-bound"
    COMPUTE = "compute-bound"
    BALANCED = "balanced"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, slots=True)
class TimeBreakdown:
    """Component times for one (algorithm, machine) pairing.

    ``total`` is the overlapped time ``max(flops, mem)``; ``serial`` is the
    no-overlap sum, exposed because the gap between the two bounds the
    benefit of overlap (at most 2x).
    """

    flops: float
    mem: float

    @property
    def total(self) -> float:
        """Overlapped execution time, eq. (1)."""
        return max(self.flops, self.mem)

    @property
    def serial(self) -> float:
        """Non-overlapped (sequential) execution time."""
        return self.flops + self.mem

    @property
    def overlap_benefit(self) -> float:
        """``serial / total`` in ``[1, 2]``: how much overlap saved."""
        return self.serial / self.total

    @property
    def bound(self) -> TimeBound:
        """Classify which component dominates."""
        if math.isclose(self.flops, self.mem, rel_tol=1e-9):
            return TimeBound.BALANCED
        return TimeBound.COMPUTE if self.flops > self.mem else TimeBound.MEMORY


class TimeModel:
    """Evaluate eq. (3) for a fixed machine.

    The model assumes throughput cost constants and perfect overlap — a
    best-case analysis valid when the algorithm exposes enough concurrency
    (§II-B).  Use :class:`repro.core.workdepth.WorkDepthTimeModel` when
    latency/critical-path effects matter.
    """

    def __init__(self, machine: MachineModel):
        self.machine = machine

    # ------------------------------------------------------------------
    # Absolute quantities
    # ------------------------------------------------------------------

    def breakdown(self, profile: AlgorithmProfile) -> TimeBreakdown:
        """Component times ``T_flops = W·τ_flop`` and ``T_mem = Q·τ_mem``."""
        m = self.machine
        return TimeBreakdown(
            flops=profile.work * m.tau_flop,
            mem=profile.traffic * m.tau_mem,
        )

    def time(self, profile: AlgorithmProfile) -> float:
        """Total execution time ``T`` (seconds), eq. (3)."""
        return self.breakdown(profile).total

    def flops_rate(self, profile: AlgorithmProfile) -> float:
        """Achieved arithmetic throughput ``W / T`` (flop/s)."""
        return profile.work / self.time(profile)

    def bandwidth(self, profile: AlgorithmProfile) -> float:
        """Achieved memory bandwidth ``Q / T`` (B/s)."""
        return profile.traffic / self.time(profile)

    # ------------------------------------------------------------------
    # Intensity-parameterised (roofline) quantities
    # ------------------------------------------------------------------

    def communication_penalty(self, intensity: float) -> float:
        """``max(1, Bτ/I)`` — slowdown relative to the flop-only ideal."""
        self._check_intensity(intensity)
        return max(1.0, self.machine.b_tau / intensity)

    def normalized_performance(self, intensity: float) -> float:
        """The roofline curve ``W·τ_flop / T = min(1, I/Bτ) ∈ (0, 1]``.

        This is the red curve of the paper's Fig. 2a: performance as a
        fraction of peak arithmetic throughput.
        """
        self._check_intensity(intensity)
        return min(1.0, intensity / self.machine.b_tau)

    def attainable_gflops(self, intensity: float) -> float:
        """Roofline in absolute units: min(peak, I × bandwidth), GFLOP/s."""
        return self.normalized_performance(intensity) * self.machine.peak_gflops

    def classify(self, intensity: float) -> TimeBound:
        """Memory- vs compute-bound *in time* at this intensity."""
        self._check_intensity(intensity)
        b_tau = self.machine.b_tau
        if math.isclose(intensity, b_tau, rel_tol=1e-9):
            return TimeBound.BALANCED
        return TimeBound.COMPUTE if intensity > b_tau else TimeBound.MEMORY

    def time_per_flop(self, intensity: float) -> float:
        """``T / W`` at this intensity: ``τ_flop · max(1, Bτ/I)`` (s)."""
        return self.machine.tau_flop * self.communication_penalty(intensity)

    # ------------------------------------------------------------------
    # Array-native fast path
    # ------------------------------------------------------------------

    def communication_penalty_batch(self, intensities: np.ndarray) -> np.ndarray:
        """Vectorised ``max(1, Bτ/I)`` over an intensity array."""
        arr = as_intensity_array(intensities)
        return np.maximum(1.0, self.machine.b_tau / arr)

    def normalized_performance_batch(self, intensities: np.ndarray) -> np.ndarray:
        """Vectorised roofline ``min(1, I/Bτ)`` over an intensity array."""
        arr = as_intensity_array(intensities)
        return np.minimum(1.0, arr / self.machine.b_tau)

    def attainable_gflops_batch(self, intensities: np.ndarray) -> np.ndarray:
        """Vectorised absolute roofline (GFLOP/s) over an intensity array."""
        return self.normalized_performance_batch(intensities) * self.machine.peak_gflops

    def time_per_flop_batch(self, intensities: np.ndarray) -> np.ndarray:
        """Vectorised ``T/W`` (seconds per flop) over an intensity array."""
        return self.machine.tau_flop * self.communication_penalty_batch(intensities)

    def classify_batch(self, intensities: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`classify`: an object array of :class:`TimeBound`.

        Element-wise identical to the scalar method, including the
        ``math.isclose``-style symmetric balance test at ``I = Bτ``.
        """
        arr = as_intensity_array(intensities)
        b_tau = self.machine.b_tau
        out = np.where(arr > b_tau, TimeBound.COMPUTE, TimeBound.MEMORY)
        out[isclose_to_scalar(arr, b_tau, rel_tol=1e-9)] = TimeBound.BALANCED
        return out

    # ------------------------------------------------------------------

    @staticmethod
    def _check_intensity(intensity: float) -> None:
        if not intensity > 0:
            raise ParameterError(f"intensity must be positive, got {intensity}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TimeModel({self.machine.name!r}, B_tau={self.machine.b_tau:.3g})"

"""Work-depth (latency-aware) refinement of the time model.

The basic model's throughput cost constants assume *sufficient
concurrency* (§II-B, and the paper's limitation 1 in §VII, deferring to
Czechowski et al.'s balance-principles work).  When an algorithm's
critical path ``D`` (its *depth*) is long relative to ``W/P`` on ``P``
processors, Brent's bound governs arithmetic time:

    ``T_flops = (W/P + D) · τ_flop``

and the roofline's compute ceiling drops by the utilisation factor
``(W/P) / (W/P + D)``.  Because energy carries the ``π0·T`` term, poor
concurrency costs energy too — low-depth algorithms are greener on
constant-power-dominated machines, which this module quantifies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.algorithm import AlgorithmProfile
from repro.core.params import MachineModel
from repro.exceptions import ParameterError, ProfileError

__all__ = ["DepthProfile", "WorkDepthTimeModel"]


@dataclass(frozen=True, slots=True)
class DepthProfile:
    """An algorithm with an explicit critical path.

    ``depth`` is the length of the longest chain of dependent operations,
    in the same units as ``base.work`` (flops).  ``depth <= work`` always.
    """

    base: AlgorithmProfile
    depth: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.depth) or self.depth <= 0:
            raise ProfileError(f"depth must be positive, got {self.depth}")
        if self.depth > self.base.work:
            raise ProfileError(
                f"depth ({self.depth}) cannot exceed work ({self.base.work})"
            )

    @property
    def parallelism(self) -> float:
        """Average available parallelism ``W / D``."""
        return self.base.work / self.depth


class WorkDepthTimeModel:
    """Brent-bound time model on ``P`` lanes of ``1/τ_flop`` throughput each.

    The machine's ``τ_flop`` is interpreted as the *aggregate* peak (the
    same convention as the basic model); a single lane therefore runs at
    ``P·τ_flop`` per flop.  Memory time keeps the throughput model — the
    refinement targets arithmetic latency only, matching the paper's
    framing.
    """

    def __init__(self, machine: MachineModel, processors: int):
        if processors < 1:
            raise ParameterError(f"processors must be >= 1, got {processors}")
        self.machine = machine
        self.processors = processors

    def flop_time(self, profile: DepthProfile) -> float:
        """``T_flops = (W/P + D)·(P·τ_flop_lane)`` with lane time derived.

        With aggregate peak ``1/τ_flop`` over ``P`` lanes, one lane does a
        flop in ``P·τ_flop``; Brent gives
        ``T = (W/P + D)·P·τ_flop = (W + P·D)·τ_flop``.
        At full concurrency (``D → W/parallelism`` small) this tends to
        the basic model's ``W·τ_flop``.
        """
        w = profile.base.work
        return (w + self.processors * profile.depth) * self.machine.tau_flop

    def time(self, profile: DepthProfile) -> float:
        """Overlapped total time with latency-limited arithmetic."""
        mem = profile.base.traffic * self.machine.tau_mem
        return max(self.flop_time(profile), mem)

    def utilization(self, profile: DepthProfile) -> float:
        """Fraction of peak arithmetic throughput achieved, ``∈ (0, 1]``."""
        ideal = profile.base.work * self.machine.tau_flop
        return ideal / self.flop_time(profile)

    def energy(self, profile: DepthProfile) -> float:
        """Eq. (4) energy with the latency-refined time in the π0 term.

        Dynamic energy is still work-determined; only constant energy
        grows when depth stretches execution.
        """
        base = profile.base
        return (
            base.work * self.machine.eps_flop
            + base.traffic * self.machine.eps_mem
            + self.machine.pi0 * self.time(profile)
        )

    def energy_overhead_vs_ideal(self, profile: DepthProfile) -> float:
        """Ratio of this energy to the basic (infinite-concurrency) energy.

        Equals 1 when π0 = 0 (energy is then depth-independent) — a model
        property tests verify; grows with depth otherwise.
        """
        from repro.core.energy_model import EnergyModel

        ideal = EnergyModel(self.machine).energy(profile.base)
        return self.energy(profile) / ideal

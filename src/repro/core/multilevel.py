"""Multi-level memory-hierarchy energy — the §V-C refinement.

The two-level model charges energy only for slow-memory ("DRAM") traffic.
§V-C shows this underestimates the FMM's measured energy by ~33%, because
data travelling *through* the cache hierarchy costs energy too.  Adding a
per-byte cache-access term closes the gap (median error 4.1%):

    ``E = W·ε_flop + Σ_level Q_level·ε_level + π0·T``

This module provides:

* :class:`MemoryLevel` / :class:`MemoryHierarchy` — named per-level
  energy costs;
* :class:`HierarchicalProfile` — an algorithm's traffic broken out per
  level;
* :class:`MultiLevelEnergyModel` — eq. (2) extended with the per-level
  sum, plus an effective-intensity reduction so the arch-line machinery
  still applies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.algorithm import AlgorithmProfile
from repro.core.params import MachineModel
from repro.core.time_model import TimeModel
from repro.exceptions import ParameterError, ProfileError

__all__ = [
    "MemoryLevel",
    "MemoryHierarchy",
    "HierarchicalProfile",
    "MultiLevelEnergyModel",
]


@dataclass(frozen=True, slots=True)
class MemoryLevel:
    """One level of the memory hierarchy: a name and an energy cost.

    ``eps_per_byte`` is the energy to move one byte through this level
    (joules).  Time costs stay with the two-level model: only the slow
    level carries a bandwidth constraint (the caches are assumed fast
    enough not to bound time, which matches the FMM study's setting).
    """

    name: str
    eps_per_byte: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.eps_per_byte) or self.eps_per_byte < 0:
            raise ParameterError(
                f"eps_per_byte must be finite and >= 0, got {self.eps_per_byte}"
            )


@dataclass(frozen=True)
class MemoryHierarchy:
    """An ordered collection of cache levels above slow memory.

    The slow level itself is *not* listed here — its cost is the machine's
    ``eps_mem``.  Typical GPU hierarchy: ``(L1, L2)``.
    """

    levels: tuple[MemoryLevel, ...]

    def __post_init__(self) -> None:
        names = [lvl.name for lvl in self.levels]
        if len(set(names)) != len(names):
            raise ParameterError(f"duplicate level names: {names}")

    @classmethod
    def gpu_l1_l2(cls, eps_cache: float) -> "MemoryHierarchy":
        """The §V-C setup: L1 and L2 sharing one fitted per-byte cost."""
        return cls(
            levels=(
                MemoryLevel("L1", eps_cache),
                MemoryLevel("L2", eps_cache),
            )
        )

    def level(self, name: str) -> MemoryLevel:
        for lvl in self.levels:
            if lvl.name == name:
                return lvl
        raise KeyError(f"no memory level named {name!r}")


@dataclass(frozen=True)
class HierarchicalProfile:
    """An algorithm with per-level traffic counts.

    ``base`` carries ``W`` and the slow-memory ``Q``; ``level_traffic``
    maps level names (matching a :class:`MemoryHierarchy`) to bytes moved
    through that level.
    """

    base: AlgorithmProfile
    level_traffic: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, qty in self.level_traffic.items():
            if not math.isfinite(qty) or qty < 0:
                raise ProfileError(
                    f"traffic for level {name!r} must be >= 0, got {qty}"
                )

    @property
    def total_cache_traffic(self) -> float:
        """Bytes summed over all cache levels."""
        return float(sum(self.level_traffic.values()))


class MultiLevelEnergyModel:
    """Eq. (2) extended with per-cache-level energy terms."""

    def __init__(self, machine: MachineModel, hierarchy: MemoryHierarchy):
        self.machine = machine
        self.hierarchy = hierarchy
        self.time_model = TimeModel(machine)

    def energy(self, profile: HierarchicalProfile) -> float:
        """Total energy including the cache-traffic terms (J).

        Unknown level names in the profile are an error — silently
        dropping traffic would reproduce exactly the §V-C underestimate
        this model exists to fix.
        """
        known = {lvl.name for lvl in self.hierarchy.levels}
        unknown = set(profile.level_traffic) - known
        if unknown:
            raise ProfileError(
                f"profile has traffic for unknown levels {sorted(unknown)}; "
                f"hierarchy defines {sorted(known)}"
            )
        base = profile.base
        t = self.time_model.time(base)
        cache_energy = sum(
            profile.level_traffic.get(lvl.name, 0.0) * lvl.eps_per_byte
            for lvl in self.hierarchy.levels
        )
        return (
            base.work * self.machine.eps_flop
            + base.traffic * self.machine.eps_mem
            + cache_energy
            + self.machine.pi0 * t
        )

    def two_level_energy(self, profile: HierarchicalProfile) -> float:
        """The naive eq. (2) estimate that ignores cache traffic.

        Kept for the §V-C comparison: the paper's initial estimates used
        this and came out ~33% low.
        """
        base = profile.base
        return (
            base.work * self.machine.eps_flop
            + base.traffic * self.machine.eps_mem
            + self.machine.pi0 * self.time_model.time(base)
        )

    def cache_fraction(self, profile: HierarchicalProfile) -> float:
        """Fraction of total energy attributable to cache traffic."""
        total = self.energy(profile)
        return (total - self.two_level_energy(profile)) / total

    def effective_intensity(self, profile: HierarchicalProfile) -> float:
        """Energy-equivalent two-level intensity.

        Folds cache energy into an inflated effective ``Q`` at slow-memory
        cost, so two-level arch-line tools can be reused:
        ``Q_eff = Q + Σ Q_l·(ε_l/ε_mem)``; returns ``W / Q_eff``.
        """
        base = profile.base
        q_eff = base.traffic + sum(
            profile.level_traffic.get(lvl.name, 0.0)
            * (lvl.eps_per_byte / self.machine.eps_mem)
            for lvl in self.hierarchy.levels
        )
        if q_eff == 0:
            return math.inf
        return base.work / q_eff

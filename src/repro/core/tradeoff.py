"""Work–communication trade-offs: speedups, greenups, and eq. (10) (§VII).

An algorithmic transformation that does ``f ≥ 1`` times the work to cut
communication by ``m ≥ 1`` — e.g. recomputation instead of spilling,
communication-avoiding variants — takes the baseline ``(W, Q)`` to
``(f·W, Q/m)``.  This module answers the paper's closing question: *under
what conditions on (f, m) do we get a speedup, a greenup, both, or
neither?*

The paper's eq. (10) gives the π0 = 0 greenup condition

    ``ΔE > 1  ⟺  f < 1 + (m−1)/m · Bε/I``

with the hard ceiling ``f < 1 + Bε/I`` even as ``m → ∞``, tightening to
``f < 1 + Bε/Bτ`` for an already compute-bound baseline.  We implement the
exact ratios for arbitrary π0 (constant power couples energy back to the
max-based time model, so the general condition is piecewise), plus the
closed-form π0 = 0 threshold for direct comparison with the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.algorithm import AlgorithmProfile
from repro.core.energy_model import EnergyModel
from repro.core.params import MachineModel
from repro.core.time_model import TimeModel
from repro.exceptions import ParameterError

__all__ = [
    "TradeOutcome",
    "TradeoffPoint",
    "TradeoffAnalyzer",
    "greenup_threshold_work",
    "greenup_work_ceiling",
]


class TradeOutcome(enum.Enum):
    """Joint classification of a candidate ``(f, m)`` transformation."""

    BOTH = "speedup and greenup"
    SPEEDUP_ONLY = "speedup only"
    GREENUP_ONLY = "greenup only"
    NEITHER = "neither"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def greenup_threshold_work(*, m: float, b_eps: float, intensity: float) -> float:
    """Eq. (10)'s right-hand side: the largest work inflation with ΔE > 1.

    ``f* = 1 + (m−1)/m · Bε/I`` — valid for π0 = 0.  ``m = 1`` gives
    ``f* = 1``: with no communication savings, any extra work loses.
    """
    if m < 1:
        raise ParameterError(f"m must be >= 1, got {m}")
    if intensity <= 0 or b_eps <= 0:
        raise ParameterError("intensity and b_eps must be positive")
    return 1.0 + (m - 1.0) / m * b_eps / intensity


def greenup_work_ceiling(*, b_eps: float, intensity: float) -> float:
    """The ``m → ∞`` hard upper limit on work inflation: ``1 + Bε/I``.

    Even eliminating communication entirely cannot pay for more extra work
    than this.  For a compute-bound baseline (``I ≥ Bτ``) substitute
    ``I = Bτ`` for the loosest case: ``f < 1 + Bε/Bτ``.
    """
    if intensity <= 0 or b_eps <= 0:
        raise ParameterError("intensity and b_eps must be positive")
    return 1.0 + b_eps / intensity


@dataclass(frozen=True, slots=True)
class TradeoffPoint:
    """Evaluation of one ``(f, m)`` candidate against a baseline.

    ``speedup = T_baseline / T_new`` and ``greenup = E_baseline / E_new``
    (the paper's ΔE); values above 1 are improvements.
    """

    f: float
    m: float
    speedup: float
    greenup: float

    @property
    def outcome(self) -> TradeOutcome:
        faster = self.speedup > 1.0
        greener = self.greenup > 1.0
        if faster and greener:
            return TradeOutcome.BOTH
        if faster:
            return TradeOutcome.SPEEDUP_ONLY
        if greener:
            return TradeOutcome.GREENUP_ONLY
        return TradeOutcome.NEITHER


class TradeoffAnalyzer:
    """Explore the ``(f, m)`` plane for a baseline algorithm on a machine."""

    def __init__(self, machine: MachineModel, baseline: AlgorithmProfile):
        self.machine = machine
        self.baseline = baseline
        self._time = TimeModel(machine)
        self._energy = EnergyModel(machine)
        self._t0 = self._time.time(baseline)
        self._e0 = self._energy.energy(baseline)

    def evaluate(self, f: float, m: float) -> TradeoffPoint:
        """Exact speedup and greenup of the ``(f·W, Q/m)`` variant.

        Valid for any π0 ≥ 0; uses the full eq. (3)/(4) models rather than
        the π0 = 0 closed form.
        """
        if f <= 0 or m <= 0:
            raise ParameterError(f"f and m must be positive, got f={f}, m={m}")
        new = self.baseline.with_work_trade(f, m)
        return TradeoffPoint(
            f=f,
            m=m,
            speedup=self._t0 / self._time.time(new),
            greenup=self._e0 / self._energy.energy(new),
        )

    def greenup_threshold(self, m: float) -> float:
        """Closed-form eq. (10) threshold for this baseline (π0 = 0 form)."""
        return greenup_threshold_work(
            m=m, b_eps=self.machine.b_eps, intensity=self.baseline.intensity
        )

    def exact_greenup_threshold(self, m: float, *, tol: float = 1e-12) -> float:
        """The exact work-inflation threshold with π0 ≥ 0, by bisection.

        Solves ``greenup(f, m) = 1`` for ``f``.  Greenup is strictly
        decreasing in ``f`` (more work always costs more energy), so the
        root is unique.  With π0 = 0 this agrees with eq. (10) — a
        property tests verify.
        """
        if m < 1:
            raise ParameterError(f"m must be >= 1, got {m}")
        lo = 1.0
        if self.evaluate(lo, m).greenup <= 1.0 + tol:
            return 1.0
        hi = 2.0
        while self.evaluate(hi, m).greenup > 1.0:
            hi *= 2.0
            if hi > 1e12:  # pragma: no cover - defensive
                raise ParameterError("greenup threshold diverged")
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self.evaluate(mid, m).greenup > 1.0:
                lo = mid
            else:
                hi = mid
            if hi - lo < tol * hi:
                break
        return 0.5 * (lo + hi)

    def frontier(
        self, m_values: np.ndarray | list[float]
    ) -> list[tuple[float, float, float]]:
        """For each ``m``: (m, eq.(10) threshold, exact π0-aware threshold).

        The gap between the two columns quantifies how constant power
        *expands* the greenup region (slower baselines burn more π0·T, so
        trading work for communication pays off sooner... or contracts it,
        depending on which side of Bτ the trade lands).
        """
        return [
            (float(m), self.greenup_threshold(float(m)), self.exact_greenup_threshold(float(m)))
            for m in m_values
        ]

    def outcome_grid(
        self,
        f_values: np.ndarray | list[float],
        m_values: np.ndarray | list[float],
    ) -> list[list[TradeoffPoint]]:
        """Dense evaluation of the (f, m) plane; rows are f, columns m."""
        return [
            [self.evaluate(float(f), float(m)) for m in m_values] for f in f_values
        ]

"""Mixed-precision time/energy analysis (§VI: Dongarra et al.).

The related work observes "the energy benefits of mixed-precision".
Our machine catalog carries per-precision coefficients (a double flop
costs 2.1x the energy of a single flop on the GTX 580; double peak is
1/8 of single), so the model can price precision choices directly:

* run a workload fully in double, fully in single, or **mixed** — a
  fraction ``rho`` of the work in single precision with its traffic
  shrunk by the word-size ratio (the iterative-refinement pattern:
  bulk work cheap, a residual pass exact);
* report speedup and greenup of each choice over the double baseline.

The single- and double-precision machines must describe the *same*
device (same bandwidth, same constant power); the constructor checks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.algorithm import AlgorithmProfile
from repro.core.energy_model import EnergyModel
from repro.core.params import MachineModel
from repro.core.time_model import TimeModel
from repro.exceptions import ParameterError

__all__ = ["PrecisionOutcome", "MixedPrecisionAnalyzer"]


@dataclass(frozen=True, slots=True)
class PrecisionOutcome:
    """Cost of one precision strategy, with ratios vs the double baseline."""

    label: str
    time: float
    energy: float
    speedup: float
    greenup: float


class MixedPrecisionAnalyzer:
    """Price double / single / mixed execution of a workload."""

    def __init__(self, single: MachineModel, double: MachineModel):
        if abs(single.tau_mem - double.tau_mem) > 1e-18:
            raise ParameterError(
                "single and double machines must share memory bandwidth "
                "(they describe one device)"
            )
        if single.pi0 != double.pi0:
            raise ParameterError(
                "single and double machines must share constant power"
            )
        if single.eps_flop >= double.eps_flop:
            raise ParameterError(
                "single-precision flops should cost less energy than double"
            )
        self.single = single
        self.double = double

    # ------------------------------------------------------------------

    def _cost(self, machine: MachineModel, profile: AlgorithmProfile) -> tuple[float, float]:
        return (
            TimeModel(machine).time(profile),
            EnergyModel(machine).energy(profile),
        )

    def evaluate(
        self, profile: AlgorithmProfile, *, single_fraction: float
    ) -> PrecisionOutcome:
        """Cost with a fraction ``rho`` of work done in single precision.

        The single part's memory traffic halves (4 B words instead of
        8 B); phases run sequentially (no precision overlap on one
        device), so times and energies add.
        """
        if not 0.0 <= single_fraction <= 1.0:
            raise ParameterError(
                f"single_fraction must be in [0, 1], got {single_fraction}"
            )
        rho = single_fraction
        t = e = 0.0
        if rho > 0.0:
            part = AlgorithmProfile(
                work=profile.work * rho,
                traffic=profile.traffic * rho / 2.0,
                name=f"{profile.name}[single]",
            )
            dt, de = self._cost(self.single, part)
            t, e = t + dt, e + de
        if rho < 1.0:
            part = AlgorithmProfile(
                work=profile.work * (1.0 - rho),
                traffic=profile.traffic * (1.0 - rho),
                name=f"{profile.name}[double]",
            )
            dt, de = self._cost(self.double, part)
            t, e = t + dt, e + de
        base_t, base_e = self._cost(self.double, profile)
        label = {0.0: "double", 1.0: "single"}.get(rho, f"mixed(rho={rho:g})")
        return PrecisionOutcome(
            label=label,
            time=t,
            energy=e,
            speedup=base_t / t,
            greenup=base_e / e,
        )

    def compare(
        self, profile: AlgorithmProfile, *, fractions: tuple[float, ...] = (0.0, 0.5, 0.9, 1.0)
    ) -> list[PrecisionOutcome]:
        """Evaluate several strategies, double-first."""
        return [self.evaluate(profile, single_fraction=r) for r in fractions]

    def describe(self, profile: AlgorithmProfile) -> str:
        """Comparison table for a workload."""
        rows = self.compare(profile)
        lines = [
            f"mixed-precision analysis: {profile.name} "
            f"(I = {profile.intensity:g} flop/B double)",
            f"{'strategy':<18}{'time':>12}{'energy':>12}{'speedup':>9}{'greenup':>9}",
        ]
        for row in rows:
            lines.append(
                f"{row.label:<18}{row.time:>11.4g}s{row.energy:>11.4g}J"
                f"{row.speedup:>9.2f}{row.greenup:>9.2f}"
            )
        return "\n".join(lines)

"""Shared validation for the array-native (batch) model evaluation paths.

Every ``*_batch`` method across :mod:`repro.core` accepts "anything
array-like of positive intensities" and must fail with the same
:class:`~repro.exceptions.ParameterError` the scalar API raises — one
validation pass up front, then pure vectorised arithmetic with no
per-element Python dispatch.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ParameterError

__all__ = ["as_intensity_array", "isclose_to_scalar"]


def as_intensity_array(intensities) -> np.ndarray:
    """Validate and convert intensities for batch evaluation.

    Returns a float64 ndarray (any shape, including 0-d for scalars).
    Raises :class:`ParameterError` if any element is non-positive or
    non-finite — matching the scalar API's ``_check_intensity``.
    """
    arr = np.asarray(intensities, dtype=float)
    if arr.size == 0:
        raise ParameterError("need at least one intensity")
    if not np.all(np.isfinite(arr)) or not np.all(arr > 0):
        bad = arr[~(np.isfinite(arr) & (arr > 0))]
        raise ParameterError(
            f"intensities must be positive and finite, got {bad[:5].tolist()}"
        )
    return arr


def isclose_to_scalar(arr: np.ndarray, ref: float, *, rel_tol: float) -> np.ndarray:
    """Element-wise ``math.isclose(x, ref, rel_tol=...)`` with zero abs_tol.

    ``np.isclose`` is *asymmetric* (``atol + rtol·|b|``) and carries a
    non-zero default ``atol``, so it cannot stand in for ``math.isclose``
    bit-for-bit.  The batch classify paths must agree with their scalar
    oracles on every element, so this reproduces the symmetric test
    ``|x − ref| ≤ rel_tol · max(|x|, |ref|)`` exactly.
    """
    return np.abs(arr - ref) <= rel_tol * np.maximum(np.abs(arr), abs(ref))

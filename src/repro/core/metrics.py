"""Fused time-energy metrics: EDP and friends (§VI "Metrics").

The paper reasons directly in time, energy, and power, and notes that
multi-objective trade-offs are often judged through fused metrics:

* **energy-delay product** ``EDP = E·T`` (Gonzalez & Horowitz) and the
  generalised ``ED^w P = E·T^w`` family — larger ``w`` weights delay
  more heavily;
* **flops per joule** (the Green500's FLOP/s-per-watt is the same
  quantity) — the arch line's y-axis.

This module evaluates those metrics under the eq. (3)/(5) models and
answers the questions they raise: what does the *metric's* "roofline"
look like as a function of intensity, and where do different metrics
disagree about whether an optimisation helped?
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.algorithm import AlgorithmProfile
from repro.core.energy_model import EnergyModel
from repro.core.params import MachineModel
from repro.core.time_model import TimeModel
from repro.exceptions import ParameterError

__all__ = ["MetricPoint", "FusedMetrics", "edp", "ed2p", "generalized_edp"]


def edp(energy: float, time: float) -> float:
    """Energy-delay product ``E·T`` (J·s)."""
    return generalized_edp(energy, time, weight=1.0)


def ed2p(energy: float, time: float) -> float:
    """Energy-delay-squared product ``E·T²`` (J·s²).

    Voltage-scaling-invariant under the classic ``E ∝ V²``, ``T ∝ 1/V``
    model, which is why architects reach for it when judging DVFS.
    """
    return generalized_edp(energy, time, weight=2.0)


def generalized_edp(energy: float, time: float, *, weight: float) -> float:
    """``E·T^w`` — the fused-metric family; ``w = 0`` is plain energy."""
    if energy < 0 or time < 0:
        raise ParameterError("energy and time must be non-negative")
    if weight < 0:
        raise ParameterError(f"weight must be >= 0, got {weight}")
    return energy * time**weight


@dataclass(frozen=True, slots=True)
class MetricPoint:
    """All fused metrics for one (algorithm, machine) pairing."""

    time: float
    energy: float

    @property
    def power(self) -> float:
        """Average power ``E/T`` (W)."""
        return self.energy / self.time

    @property
    def edp(self) -> float:
        """``E·T`` (J·s)."""
        return edp(self.energy, self.time)

    @property
    def ed2p(self) -> float:
        """``E·T²`` (J·s²)."""
        return ed2p(self.energy, self.time)

    def edwp(self, weight: float) -> float:
        """``E·T^w``."""
        return generalized_edp(self.energy, self.time, weight=weight)


class FusedMetrics:
    """Evaluate fused metrics under the roofline/arch-line models."""

    def __init__(self, machine: MachineModel):
        self.machine = machine
        self.time_model = TimeModel(machine)
        self.energy_model = EnergyModel(machine)

    def evaluate(self, profile: AlgorithmProfile) -> MetricPoint:
        """Metrics for a concrete algorithm."""
        return MetricPoint(
            time=self.time_model.time(profile),
            energy=self.energy_model.energy(profile),
        )

    def edp_per_flop_squared(self, intensity: float) -> float:
        """The intensity-parameterised EDP density ``(E/W)·(T/W)``.

        For fixed work ``W``, ``EDP = W² · (E/W)(T/W)``; this per-``W²``
        density is the natural roofline-style curve for EDP.  It is
        strictly decreasing in intensity — raising intensity always
        improves EDP, since it improves (or holds) both factors.
        """
        if intensity <= 0:
            raise ParameterError(f"intensity must be positive, got {intensity}")
        return self.energy_model.energy_per_flop(
            intensity
        ) * self.time_model.time_per_flop(intensity)

    def improvement(
        self, baseline: AlgorithmProfile, candidate: AlgorithmProfile
    ) -> dict[str, float]:
        """Ratios baseline/candidate for each metric (>1 = improvement).

        Different metrics can genuinely disagree: a transformation that
        trades a little extra energy for a large time win loses on
        energy, wins on time, and the EDP family arbitrates by ``w``.
        """
        base = self.evaluate(baseline)
        cand = self.evaluate(candidate)
        return {
            "time": base.time / cand.time,
            "energy": base.energy / cand.energy,
            "edp": base.edp / cand.edp,
            "ed2p": base.ed2p / cand.ed2p,
        }

    def crossover_weight(
        self, baseline: AlgorithmProfile, candidate: AlgorithmProfile
    ) -> float | None:
        """The EDP weight at which the two variants tie, if any.

        Solves ``E_b·T_b^w = E_c·T_c^w``:
        ``w* = ln(E_c/E_b) / ln(T_b/T_c)``.  Returns ``None`` when one
        variant dominates (better in both time and energy) or they only
        tie at negative weight.
        """
        base = self.evaluate(baseline)
        cand = self.evaluate(candidate)
        if base.time == cand.time:
            return None
        log_energy = math.log(cand.energy / base.energy)
        log_time = math.log(base.time / cand.time)
        w_star = log_energy / log_time
        return w_star if w_star > 0 else None

"""Fitting machine energy coefficients from measurements — eq. (9), §IV-B.

Manufacturers publish peak throughputs (which give ``τ_flop``, ``τ_mem``)
but not energy costs, so the paper estimates ``ε_s``, ``ε_mem``, ``π0`` and
the double-precision increment ``Δε_d`` by linear regression on measured
4-tuples ``(W, Q, T, R)`` with measured energy ``E``:

    ``E/W = ε_s + ε_mem·(Q/W) + π0·(T/W) + Δε_d·R``            (eq. 9)

where ``R`` is 1 for double precision, 0 for single.  Normalising all
regressors by ``W`` is what makes the fit well-conditioned (footnote 8:
R² near unity, p < 1e-14).  The fitted ``ε_d = ε_s + Δε_d``.

The same machinery supports single-precision-only fits (drop the ``R``
column) and the cache-extended fit used in the FMM study (§V-C) via
:func:`fit_cache_energy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.analysis.regression import OLSResult, ols
from repro.core.params import MachineModel
from repro.exceptions import FittingError
from repro.units import to_picojoules

__all__ = [
    "EnergySample",
    "FittedCoefficients",
    "fit_energy_coefficients",
    "fit_cache_energy",
]


@dataclass(frozen=True, slots=True)
class EnergySample:
    """One measured run: chosen (W, Q, R), measured (T, E).

    Attributes
    ----------
    work:
        Flops executed, ``W``.
    traffic:
        Bytes moved, ``Q``.
    time:
        Measured wall time, seconds.
    energy:
        Measured total energy, joules.
    double_precision:
        The paper's binary regressor ``R``.
    """

    work: float
    traffic: float
    time: float
    energy: float
    double_precision: bool = False

    def __post_init__(self) -> None:
        for attr in ("work", "time", "energy"):
            if getattr(self, attr) <= 0:
                raise FittingError(f"{attr} must be positive, got {getattr(self, attr)}")
        if self.traffic < 0:
            raise FittingError(f"traffic must be non-negative, got {self.traffic}")

    @property
    def intensity(self) -> float:
        """``W/Q`` (flops per byte); ``inf`` for traffic-free runs."""
        return self.work / self.traffic if self.traffic else float("inf")


@dataclass(frozen=True)
class FittedCoefficients:
    """Energy coefficients recovered by the eq. (9) regression (Table IV).

    ``eps_single``/``eps_double`` are J per flop, ``eps_mem`` J per byte,
    ``pi0`` watts.  ``regression`` preserves the full OLS diagnostics.
    """

    eps_single: float
    eps_double: float | None
    eps_mem: float
    pi0: float
    regression: OLSResult

    @property
    def delta_double(self) -> float | None:
        """``Δε_d = ε_d − ε_s`` (J/flop), or ``None`` for single-only fits."""
        if self.eps_double is None:
            return None
        return self.eps_double - self.eps_single

    def to_machine(
        self,
        name: str,
        *,
        tau_flop: float,
        tau_mem: float,
        double_precision: bool = False,
        power_cap: float | None = None,
    ) -> MachineModel:
        """Combine fitted energy costs with spec-sheet time costs.

        This is how the paper instantiates eq. (5): τ values from the
        manufacturer's peaks (Table III), ε values from the fit (Table IV).
        """
        if double_precision:
            if self.eps_double is None:
                raise FittingError(
                    "fit had no double-precision samples; cannot build a "
                    "double-precision machine"
                )
            eps_flop = self.eps_double
        else:
            eps_flop = self.eps_single
        return MachineModel(
            name=name,
            tau_flop=tau_flop,
            tau_mem=tau_mem,
            eps_flop=eps_flop,
            eps_mem=self.eps_mem,
            pi0=self.pi0,
            power_cap=power_cap,
        )

    def table_row(self, platform: str) -> str:
        """One Table IV-style row in picojoule units."""
        eps_d = (
            f"{to_picojoules(self.eps_double):7.1f}"
            if self.eps_double is not None
            else "   n/a"
        )
        return (
            f"{platform:<24}{to_picojoules(self.eps_single):7.1f} pJ/FLOP  "
            f"{eps_d} pJ/FLOP  {to_picojoules(self.eps_mem):7.1f} pJ/B  "
            f"{self.pi0:7.1f} W"
        )


def fit_energy_coefficients(samples: Sequence[EnergySample]) -> FittedCoefficients:
    """Recover (ε_s, ε_mem, π0, Δε_d) from measured runs via eq. (9).

    The double-precision column is included only when the samples mix
    precisions; an all-single (or all-double) dataset fits the three-term
    model and reports the flop energy under ``eps_single`` (with
    ``eps_double`` set for all-double data).

    Raises
    ------
    FittingError
        With fewer samples than coefficients, collinear regressors (e.g.
        all samples at a single intensity), or non-physical inputs.
    """
    if len(samples) < 4:
        raise FittingError(f"need at least 4 samples, got {len(samples)}")
    w = np.array([s.work for s in samples])
    q = np.array([s.traffic for s in samples])
    t = np.array([s.time for s in samples])
    e = np.array([s.energy for s in samples])
    r = np.array([1.0 if s.double_precision else 0.0 for s in samples])

    mixed = bool(r.any() and not r.all())
    all_double = bool(r.all())

    columns = [np.ones_like(w), q / w, t / w]
    names = ["eps_s", "eps_mem", "pi0"]
    if mixed:
        columns.append(r)
        names.append("delta_eps_d")
    design = np.column_stack(columns)
    result = ols(design, e / w, names=names)

    eps_s = result.coefficient("eps_s")
    eps_mem = result.coefficient("eps_mem")
    pi0 = result.coefficient("pi0")
    if mixed:
        eps_d: float | None = eps_s + result.coefficient("delta_eps_d")
    elif all_double:
        eps_d = eps_s
    else:
        eps_d = None

    return FittedCoefficients(
        eps_single=eps_s,
        eps_double=eps_d,
        eps_mem=eps_mem,
        pi0=pi0,
        regression=result,
    )


def fit_cache_energy(
    measured_energy: Iterable[float],
    estimated_energy: Iterable[float],
    cache_bytes: Iterable[float],
) -> float:
    """Estimate a per-byte cache-access energy from model residuals (§V-C).

    The paper divides the gap between measured energy and the eq. (2)
    estimate by the bytes of L1+L2 traffic, yielding ≈187 pJ/B on the
    GTX 580.  We generalise slightly: a least-squares slope through the
    origin over all reference runs, which reduces to the paper's single
    division for one run.
    """
    gap = np.asarray(list(measured_energy), dtype=float) - np.asarray(
        list(estimated_energy), dtype=float
    )
    bytes_ = np.asarray(list(cache_bytes), dtype=float)
    if gap.shape != bytes_.shape or gap.ndim != 1 or gap.size == 0:
        raise FittingError("measured/estimated/cache_bytes must be equal-length 1-D")
    if np.any(bytes_ <= 0):
        raise FittingError("cache traffic must be positive for the reference runs")
    denominator = float(bytes_ @ bytes_)
    return float(gap @ bytes_) / denominator

"""RL004 — asyncio safety for the serving layer.

The model server is a single event loop serving many connections; one
blocking call in a coroutine stalls *every* in-flight request (the
micro-batcher's flush timer, the drain path, all of it).  Three
sub-checks, in increasing subtlety:

* **blocking call in a coroutine** — ``time.sleep``, ``subprocess.*``,
  synchronous socket constructors and friends may not be called inside
  an ``async def`` (awaited or not: these APIs have no awaitable
  form);
* **await under a synchronous lock** — ``with some_lock: ... await
  ...`` parks the coroutine while holding a thread lock; any other
  task needing that lock then deadlocks the loop.  Locks crossed by an
  ``await`` must be :class:`asyncio.Lock` used via ``async with``;
* **inconsistent lock discipline** — within one class, if an attribute
  is mutated under ``async with <lock>`` in one coroutine and bare in
  another, the bare site defeats the lock.  (Mutations that *never*
  take a lock are fine: between awaits, single-loop code is atomic —
  that is the server's ``_inflight`` pattern.)
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Finding
from repro.lint.registry import LintRule, register
from repro.lint.rules._common import (
    dotted_name,
    walk_without_nested_functions,
)

#: Calls with no awaitable form that block the event loop.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "os.system",
        "os.popen",
        "os.waitpid",
        "socket.create_connection",
        "socket.getaddrinfo",
        "urllib.request.urlopen",
        "requests.get",
        "requests.post",
        "requests.put",
        "requests.delete",
        "requests.request",
        "input",
    }
)


def _lockish(expr: ast.expr) -> bool:
    """Heuristic: does this context-manager expression name a lock?"""
    chain = dotted_name(expr)
    if chain is None:
        if isinstance(expr, ast.Call):
            return _lockish(expr.func)
        return False
    return "lock" in chain.lower()


def _self_attr_target(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


@register
class AsyncSafetyRule(LintRule):
    rule_id = "RL004"
    title = "no blocking calls or sync-lock awaits in coroutines"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_coroutine(ctx, node)
            elif isinstance(node, ast.ClassDef):
                yield from self._check_lock_discipline(ctx, node)

    # ------------------------------------------------------------------
    # Sub-checks (a) and (b): per-coroutine
    # ------------------------------------------------------------------

    def _check_coroutine(
        self, ctx: FileContext, func: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        for node in walk_without_nested_functions(func):
            if isinstance(node, ast.Call):
                chain = dotted_name(node.func)
                if chain is not None and chain in BLOCKING_CALLS:
                    yield self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"blocking call '{chain}' inside coroutine "
                        f"'{func.name}' stalls the event loop; use the "
                        "asyncio equivalent or run_in_executor",
                    )
            if isinstance(node, ast.With):
                held = [
                    item.context_expr
                    for item in node.items
                    if _lockish(item.context_expr)
                ]
                if not held:
                    continue
                awaits = [
                    inner
                    for stmt in node.body
                    for inner in ast.walk(stmt)
                    if isinstance(inner, ast.Await)
                ]
                if awaits:
                    name = dotted_name(held[0]) or "lock"
                    yield self.finding(
                        ctx,
                        awaits[0].lineno,
                        awaits[0].col_offset,
                        f"'await' while holding synchronous lock '{name}' "
                        f"in coroutine '{func.name}' can deadlock the "
                        "loop; use asyncio.Lock with 'async with'",
                    )

    # ------------------------------------------------------------------
    # Sub-check (c): per-class lock discipline
    # ------------------------------------------------------------------

    def _check_lock_discipline(
        self, ctx: FileContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        locked: dict[str, str] = {}  # attr -> lock chain it was seen under
        bare: dict[str, list[ast.AST]] = {}
        for method in cls.body:
            if not isinstance(method, ast.AsyncFunctionDef):
                continue
            for attr, site, lock in self._attr_mutations(method):
                if lock is not None:
                    locked.setdefault(attr, lock)
                else:
                    bare.setdefault(attr, []).append(site)
        for attr, lock in sorted(locked.items()):
            for site in bare.get(attr, []):
                yield self.finding(
                    ctx,
                    site.lineno,
                    site.col_offset,
                    f"'self.{attr}' is mutated under 'async with {lock}' "
                    f"elsewhere in class {cls.name} but bare here; hold "
                    "the same lock (or drop it everywhere and rely on "
                    "single-loop atomicity)",
                )

    def _attr_mutations(
        self, method: ast.AsyncFunctionDef
    ) -> Iterator[tuple[str, ast.AST, str | None]]:
        """Yield ``(attr, site, lock_chain|None)`` for self-attr writes."""

        def visit(
            node: ast.AST, lock: str | None
        ) -> Iterator[tuple[str, ast.AST, str | None]]:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                return
            if isinstance(node, ast.AsyncWith):
                inner = lock
                for item in node.items:
                    if _lockish(item.context_expr):
                        inner = dotted_name(item.context_expr) or "lock"
                for child in node.body:
                    yield from visit(child, inner)
                return
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    attr = _self_attr_target(target)
                    if attr is not None:
                        yield attr, node, lock
            for child in ast.iter_child_nodes(node):
                yield from visit(child, lock)

        for stmt in method.body:
            yield from visit(stmt, None)

"""Small AST helpers shared by the rule modules."""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "dotted_name",
    "iter_function_defs",
    "walk_without_nested_functions",
]


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for an attribute/name chain, ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def iter_function_defs(
    tree: ast.AST,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function definition in the tree, including methods."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def walk_without_nested_functions(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    """Walk a function body, not descending into nested def/class.

    Used where the enclosing-function identity matters (e.g. "is this
    call inside an ``async def``"): a nested sync helper must not
    inherit its parent's asyncness.
    """
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))

"""RL001 — unit-literal discipline.

The model works in strict SI base units internally (seconds, joules,
flops, bytes) and converts at API boundaries; :mod:`repro.units` owns
the conversion constants.  A raw ``* 1e-12`` or ``/ 1e9`` scattered in
model code is exactly how pJ-vs-J and GB/s-vs-B/s mixups are born (the
paper's Table II quantities span picojoules to teraflops), so:

* a float literal that is a power of ten with ``|exponent| >= 3`` may
  not appear as a direct operand of ``*`` or ``/`` outside
  ``units.py`` — use the named constant (``units.GIGA``) or a
  conversion helper (``units.to_picojoules``);
* a function whose name advertises a prefixed unit (``gflops``,
  ``_pj``, ``_ms`` …) must do its boundary conversion through
  :mod:`repro.units` — if it contains power-of-ten literals (of any
  numeric type, in any position) and never references a units name, it
  is converting by hand.

Tolerances and epsilons (``x + 1e-9``, ``rel_tol=1e-12``) are not
conversions: they appear under ``+``/``-``, comparisons, or keyword
defaults, and are deliberately not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.engine import FileContext, Finding
from repro.lint.registry import LintRule, register
from repro.lint.rules._common import dotted_name, iter_function_defs

#: SI-prefix magnitudes the rule recognises, with the constant to use.
SI_CONSTANTS: dict[float, str] = {
    1e-15: "FEMTO",
    1e-12: "PICO",
    1e-9: "NANO",
    1e-6: "MICRO",
    1e-3: "MILLI",
    1e3: "KILO",
    1e6: "MEGA",
    1e9: "GIGA",
    1e12: "TERA",
    1e15: "PETA",
}

#: Name fragments (``_``-separated) that advertise a prefixed unit.
UNIT_TOKENS = frozenset(
    {"pj", "nj", "uj", "mj", "ps", "ns", "us", "ms", "gflops", "gbytes", "gbs"}
)

#: Names exported by :mod:`repro.units`; referencing any of them counts
#: as converting through the units module.
_UNITS_NAMES = frozenset(
    {
        "FEMTO",
        "PICO",
        "NANO",
        "MICRO",
        "MILLI",
        "KILO",
        "MEGA",
        "GIGA",
        "TERA",
        "PETA",
        "BYTES_PER_DOUBLE",
        "BYTES_PER_SINGLE",
        "gflops_to_flops_per_second",
        "flops_per_second_to_gflops",
        "gbytes_to_bytes_per_second",
        "bytes_per_second_to_gbytes",
        "time_per_flop_from_gflops",
        "time_per_byte_from_gbytes",
        "picojoules",
        "to_picojoules",
        "to_picoseconds",
        "milliseconds",
        "to_milliseconds",
        "joules_per_flop_to_gflops_per_joule",
        "format_si",
    }
)


def _is_si_literal(node: ast.expr) -> float | None:
    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, float)
        and node.value in SI_CONSTANTS
    ):
        return node.value
    return None


def _power_of_ten(value: object) -> bool:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return False
    return float(value) in SI_CONSTANTS


def _references_units(nodes: Iterable[ast.AST]) -> bool:
    for node in nodes:
        if isinstance(node, ast.Attribute) and node.attr in _UNITS_NAMES:
            chain = dotted_name(node)
            if chain is not None and "units" in chain.split(".")[:-1]:
                return True
        if isinstance(node, ast.Name) and node.id in _UNITS_NAMES:
            return True
    return False


@register
class UnitLiteralRule(LintRule):
    rule_id = "RL001"
    title = "SI-prefix conversions must go through repro.units"

    def applies(self, relpath: str) -> bool:
        return relpath != "units.py"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.BinOp):
                continue
            if not isinstance(node.op, (ast.Mult, ast.Div)):
                continue
            for side in (node.left, node.right):
                value = _is_si_literal(side)
                if value is None:
                    continue
                op = "*" if isinstance(node.op, ast.Mult) else "/"
                yield self.finding(
                    ctx,
                    side.lineno,
                    side.col_offset,
                    f"raw SI-prefix literal {value:g} used with '{op}'; "
                    f"use repro.units.{SI_CONSTANTS[value]} or a units "
                    "conversion helper",
                )
        yield from self._check_boundary_functions(ctx)

    def _check_boundary_functions(self, ctx: FileContext) -> Iterator[Finding]:
        for func in iter_function_defs(ctx.tree):
            tokens = set(func.name.lower().split("_"))
            advertised = sorted(tokens & UNIT_TOKENS)
            if not advertised:
                continue
            body_nodes = list(ast.walk(func))
            has_literal = any(
                isinstance(node, ast.Constant) and _power_of_ten(node.value)
                for node in body_nodes
            )
            if has_literal and not _references_units(body_nodes):
                yield self.finding(
                    ctx,
                    func.lineno,
                    func.col_offset,
                    f"function '{func.name}' advertises unit(s) "
                    f"{', '.join(advertised)} but converts with raw "
                    "power-of-ten literals; route the boundary conversion "
                    "through repro.units",
                )

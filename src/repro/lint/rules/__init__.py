"""Rule modules — importing this package populates the registry.

One module per rule family; each module registers exactly one
:class:`~repro.lint.registry.LintRule` subclass via ``@register``.
"""

from repro.lint.rules import (  # noqa: F401 - imported for registration
    asyncflow,
    asyncsafety,
    determinism,
    dtypes,
    floateq,
    lifecycle,
    lockorder,
    parity,
    units,
    wireconf,
)

"""RL003 — determinism in model paths.

The reproducibility contract (PR 1–2) makes experiment results pure
functions of ``(machine params, sweep config, seed)``: the runner's
content-addressed cache and the order/jobs-invariant noise seeding both
assume it.  One wall-clock read or unseeded RNG draw in a model path
breaks the contract *silently* — results still look plausible, they
just stop replaying.  So inside ``core/``, ``cachesim/``,
``experiments/``, and ``fmm/``:

* the stdlib :mod:`random` module is banned outright (its global
  Mersenne state is process-wide and unseedable per-call-site);
* legacy ``np.random.*`` draws (``rand``, ``seed``, the module-level
  singletons) are banned — ``np.random.default_rng(seed)`` and the
  :class:`~numpy.random.Generator` API are the sanctioned path;
* wall-clock reads (``time.time``, ``perf_counter``, ``datetime.now``
  …) are banned — timestamps belong to the reporting layer.

``service/`` is deliberately out of scope: latency metrics *should*
read the clock.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Finding
from repro.lint.registry import LintRule, register
from repro.lint.rules._common import dotted_name

#: Package sub-trees holding deterministic model paths.
MODEL_PATHS = ("core/", "cachesim/", "experiments/", "fmm/")

#: ``np.random`` attributes that keep determinism (seeded generator API).
NP_RANDOM_ALLOWED = frozenset(
    {
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "default_rng",
    }
)

#: Dotted wall-clock reads, matched on the full chain or its tail (so
#: ``datetime.datetime.now`` and ``datetime.now`` both hit).
CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
    }
)


def _clock_match(chain: str) -> str | None:
    if chain in CLOCK_CALLS:
        return chain
    tail = ".".join(chain.split(".")[-2:])
    if tail in CLOCK_CALLS:
        return tail
    return None


@register
class DeterminismRule(LintRule):
    rule_id = "RL003"
    title = "no unseeded RNG or wall-clock reads in model paths"

    def applies(self, relpath: str) -> bool:
        return relpath.startswith(MODEL_PATHS)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        numpy_aliases = {"numpy"}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        numpy_aliases.add(alias.asname or "numpy")
                    if alias.name == "random":
                        yield self.finding(
                            ctx,
                            node.lineno,
                            node.col_offset,
                            "stdlib 'random' uses process-global state; "
                            "use np.random.default_rng(seed)",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        "stdlib 'random' uses process-global state; "
                        "use np.random.default_rng(seed)",
                    )
        for node in ast.walk(ctx.tree):
            chain = None
            if isinstance(node, ast.Attribute):
                chain = dotted_name(node)
            if chain is None:
                continue
            parts = chain.split(".")
            if (
                len(parts) >= 3
                and parts[0] in ("np", *numpy_aliases)
                and parts[1] == "random"
                and parts[2] not in NP_RANDOM_ALLOWED
            ):
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"legacy '{chain}' draws from numpy's global RNG; "
                    "use np.random.default_rng(seed)",
                )
            clock = _clock_match(chain)
            if clock is not None:
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"wall-clock read '{clock}' in a model path breaks "
                    "replay of cached results; timestamps belong in the "
                    "reporting layer",
                )

"""RL010 — lock-order consistency, interprocedurally.

Three deadlock patterns RL004's single-function syntax checks cannot
see:

* **conflicting acquisition order** — method A takes lock X then Y
  (possibly Y through a callee), method B takes Y then X.  Two threads
  interleaving A and B deadlock.  RL010 derives the acquisition-order
  relation across the call graph and flags every pair ordered both
  ways;
* **re-acquiring a held sync lock through a call chain** — ``with
  self._lock: self.helper()`` where ``helper`` also takes
  ``self._lock``: ``threading.Lock`` is not reentrant, so this
  self-deadlocks on the spot;
* **await while holding an explicitly-acquired sync lock** —
  ``lock.acquire() ... await ... lock.release()``.  RL004 covers the
  ``with``-statement form; the explicit form slips through it.

Locks are identified syntactically: a ``with``/``async with`` context
(or ``.acquire()`` call) whose expression names something containing
``lock``.  ``self._x`` locks canonicalise per class, module-level
locks per module; locals are skipped (a lock nobody shares cannot
deadlock anyone).  Only non-``spawn``, non-weak call edges propagate —
work handed to an executor synchronises by other means.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.lint.engine import Finding
from repro.lint.registry import ProjectRule, register
from repro.lint.rules._common import dotted_name
from repro.lint.rules.asyncsafety import _lockish

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.lint.project.symbols import FunctionInfo, ModuleInfo, Project


@dataclass(frozen=True, slots=True)
class _Lock:
    ident: str  # canonical id, e.g. "service/server.py::ModelServer._lock"
    is_async: bool


@dataclass(slots=True)
class _FuncLocks:
    """Per-function lock facts from one syntactic walk."""

    #: (held-before stack, newly acquired lock, site line/col)
    acquisitions: list[tuple[tuple[_Lock, ...], _Lock, int, int]] = field(
        default_factory=list
    )
    #: (held stack, call node line/col) for every call made under a lock
    calls_under: list[tuple[tuple[_Lock, ...], int, int]] = field(
        default_factory=list
    )
    #: (lock, await line/col) for awaits under explicit .acquire()
    explicit_awaits: list[tuple[_Lock, int, int]] = field(
        default_factory=list
    )


def _canonical(
    expr: ast.expr, func: "FunctionInfo", module: "ModuleInfo"
) -> str | None:
    if isinstance(expr, ast.Call):  # e.g. self._lock() factories — skip
        return None
    chain = dotted_name(expr)
    if chain is None:
        return None
    parts = chain.split(".")
    if parts[0] == "self" and len(parts) == 2 and func.class_name is not None:
        return f"{module.relpath}::{func.class_name}.{parts[1]}"
    if len(parts) == 1 and parts[0] in module.assigns:
        return f"{module.relpath}::{parts[0]}"
    return None


def _walk_no_defs(node: ast.AST) -> Iterable[ast.AST]:
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(current))


def _walk_function(func: "FunctionInfo", module: "ModuleInfo") -> _FuncLocks:
    """One syntactic pass tracking the held-lock stack.

    ``with``-acquired locks scope to the ``with`` body; explicitly
    ``.acquire()``-d locks thread *sequentially* through statement
    lists (including into later siblings) until a matching
    ``.release()``.  Branches merge conservatively: the view that holds
    more locks wins.
    """
    facts = _FuncLocks()
    Explicit = tuple  # of _Lock

    def scan(
        node: ast.AST, held: tuple[_Lock, ...], explicit: Explicit
    ) -> Explicit:
        """Scan a simple statement / expression for lock events."""
        for sub in _walk_no_defs(node):
            if isinstance(sub, ast.Await):
                for lock in explicit:
                    if not lock.is_async:
                        facts.explicit_awaits.append(
                            (lock, sub.lineno, sub.col_offset)
                        )
            elif isinstance(sub, ast.Call):
                chain = dotted_name(sub.func)
                base = (
                    sub.func.value
                    if isinstance(sub.func, ast.Attribute)
                    else None
                )
                if (
                    chain is not None
                    and chain.endswith(".acquire")
                    and base is not None
                    and _lockish(base)
                ):
                    ident = _canonical(base, func, module)
                    if ident is not None:
                        lock = _Lock(ident, False)
                        facts.acquisitions.append(
                            (
                                (*held, *explicit),
                                lock,
                                sub.lineno,
                                sub.col_offset,
                            )
                        )
                        explicit = (*explicit, lock)
                    continue
                if (
                    chain is not None
                    and chain.endswith(".release")
                    and base is not None
                    and _lockish(base)
                ):
                    ident = _canonical(base, func, module)
                    if ident is not None:
                        explicit = tuple(
                            lock for lock in explicit if lock.ident != ident
                        )
                    continue
                combined = (*held, *explicit)
                if combined:
                    facts.calls_under.append(
                        (combined, sub.lineno, sub.col_offset)
                    )
        return explicit

    def visit_stmts(
        stmts: list[ast.stmt], held: tuple[_Lock, ...], explicit: Explicit
    ) -> Explicit:
        for stmt in stmts:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner = held
                for item in stmt.items:
                    expr = item.context_expr
                    explicit = scan(expr, held, explicit)
                    if _lockish(expr):
                        ident = _canonical(expr, func, module)
                        if ident is not None:
                            lock = _Lock(
                                ident, isinstance(stmt, ast.AsyncWith)
                            )
                            facts.acquisitions.append(
                                (
                                    (*inner, *explicit),
                                    lock,
                                    expr.lineno,
                                    expr.col_offset,
                                )
                            )
                            inner = (*inner, lock)
                explicit = visit_stmts(stmt.body, inner, explicit)
            elif isinstance(stmt, ast.If):
                explicit = scan(stmt.test, held, explicit)
                then_view = visit_stmts(stmt.body, held, explicit)
                else_view = visit_stmts(stmt.orelse, held, explicit)
                explicit = (
                    then_view
                    if len(then_view) >= len(else_view)
                    else else_view
                )
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                explicit = scan(stmt.iter, held, explicit)
                explicit = visit_stmts(stmt.body, held, explicit)
                explicit = visit_stmts(stmt.orelse, held, explicit)
            elif isinstance(stmt, ast.While):
                explicit = scan(stmt.test, held, explicit)
                explicit = visit_stmts(stmt.body, held, explicit)
                explicit = visit_stmts(stmt.orelse, held, explicit)
            elif isinstance(stmt, ast.Try):
                explicit = visit_stmts(stmt.body, held, explicit)
                for handler in stmt.handlers:
                    explicit = visit_stmts(handler.body, held, explicit)
                explicit = visit_stmts(stmt.orelse, held, explicit)
                explicit = visit_stmts(stmt.finalbody, held, explicit)
            else:
                explicit = scan(stmt, held, explicit)
        return explicit

    visit_stmts(func.node.body, (), ())
    return facts


class _State:
    def __init__(self) -> None:
        self.facts: dict[str, _FuncLocks] = {}
        #: uid → lock idents (transitively) acquired
        self.closure: dict[str, set[str]] = {}
        #: ordered pair (A, B) → first site (relpath, qualname, line, col)
        self.pairs: dict[tuple[str, str], tuple[str, str, int, int]] = {}
        self.graph = None


@register
class LockOrderRule(ProjectRule):
    rule_id = "RL010"
    title = "consistent lock order; no awaits or re-entry under sync locks"
    closure = "component"

    def prepare(self, project: "Project") -> object:
        state = _State()
        graph = project.callgraph
        state.graph = graph
        for module in project.modules.values():
            for qualname in sorted(module.functions):
                func = module.functions[qualname]
                state.facts[func.uid] = _walk_function(func, module)
        # Fixpoint: locks a function may acquire, directly or through
        # non-spawn, non-weak internal calls.
        direct = {
            uid: {lock.ident for _, lock, _, _ in facts.acquisitions}
            for uid, facts in state.facts.items()
        }
        closure = {uid: set(locks) for uid, locks in direct.items()}
        changed = True
        while changed:
            changed = False
            for uid in closure:
                for edge in graph.calls_from(uid):
                    if edge.external or edge.kind != "call" or edge.weak:
                        continue
                    callee = closure.get(edge.callee)
                    if callee and not callee <= closure[uid]:
                        closure[uid] |= callee
                        changed = True
        state.closure = closure
        # Acquisition-order pairs: intraprocedural nesting plus locks a
        # callee may take while the caller holds some.
        for uid in sorted(state.facts):
            facts = state.facts[uid]
            func = graph.functions.get(uid)
            qualname = func.qualname if func is not None else uid
            relpath = uid.split("::", 1)[0]
            for held, lock, line, col in facts.acquisitions:
                for outer in held:
                    if outer.ident != lock.ident:
                        state.pairs.setdefault(
                            (outer.ident, lock.ident),
                            (relpath, qualname, line, col),
                        )
            for held, line, col in facts.calls_under:
                for edge in graph.at_site(uid, line, col):
                    if edge.external or edge.kind != "call" or edge.weak:
                        continue
                    for inner in sorted(closure.get(edge.callee, ())):
                        for outer in held:
                            if outer.ident != inner:
                                state.pairs.setdefault(
                                    (outer.ident, inner),
                                    (relpath, qualname, line, col),
                                )
        return state

    # ------------------------------------------------------------------

    def check_module(
        self, project: "Project", module: "ModuleInfo", state: object
    ) -> Iterable[Finding]:
        assert isinstance(state, _State)
        graph = state.graph
        # (1) conflicting order — reported once per pair, at the first
        # recorded site of the lexicographically smaller direction
        # (which may be a call site when the nesting is only visible
        # through a callee).
        for (a, b), (rel, qual, line, col) in sorted(state.pairs.items()):
            if rel != module.relpath:
                continue
            if (b, a) not in state.pairs or (a, b) > (b, a):
                continue
            o_rel, o_qual, o_line, _ = state.pairs[(b, a)]
            yield self.module_finding(
                module,
                line,
                col,
                f"lock order conflict: '{a.split('::')[-1]}' "
                f"then '{b.split('::')[-1]}' here, but the "
                f"opposite order in {o_rel}:{o_line} "
                f"({o_qual}); pick one global order",
            )
        for qualname in sorted(module.functions):
            func = module.functions[qualname]
            uid = func.uid
            facts = state.facts.get(uid)
            if facts is None:
                continue
            # (2) re-acquiring a held sync lock through a call chain.
            for held, line, col in facts.calls_under:
                sync_held = {
                    lock.ident for lock in held if not lock.is_async
                }
                if not sync_held:
                    continue
                for edge in graph.at_site(uid, line, col):
                    if edge.external or edge.kind != "call" or edge.weak:
                        continue
                    again = sync_held & state.closure.get(edge.callee, set())
                    if again:
                        callee = graph.functions.get(edge.callee)
                        callee_name = (
                            callee.qualname if callee is not None else edge.callee
                        )
                        ident = sorted(again)[0]
                        yield self.module_finding(
                            module,
                            line,
                            col,
                            f"call to '{callee_name}' can re-acquire "
                            f"'{ident.split('::')[-1]}' already held "
                            "here; threading locks are not reentrant",
                        )
                        break
            # (3) await while a sync lock is held via explicit acquire().
            for lock, line, col in facts.explicit_awaits:
                yield self.module_finding(
                    module,
                    line,
                    col,
                    f"'await' while sync lock "
                    f"'{lock.ident.split('::')[-1]}' is held via "
                    ".acquire(); a blocked awaiter deadlocks the loop — "
                    "use asyncio.Lock with 'async with'",
                )

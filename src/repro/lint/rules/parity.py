"""RL002 — scalar/``*_batch`` API parity in :mod:`repro.core`.

PR 1 grew the core model a vectorised fast path: every hot scalar
evaluator ``foo(intensity)`` has a ``foo_batch(intensities)`` sibling
that must stay bit-identical and signature-compatible (the experiment
sweeps and the serving batcher dispatch between the two by name).  The
invariants, per module and per class namespace:

* a public ``foo_batch`` must have a scalar ``foo`` in the same
  namespace — a batch orphan is an API that cannot be cross-checked
  against its scalar oracle;
* paired signatures must agree: same parameter count, order, names,
  where the batch spelling of a scalar parameter may be its plural
  (``intensity`` → ``intensities``);
* in a namespace that already has batch pairs, a public scalar whose
  only required non-``self`` parameter is ``intensity`` must itself
  have a ``_batch`` sibling — the gap the serving layer would hit
  first.  Formatting methods (annotated ``-> str``) are exempt: a
  human-readable description has no vectorised form.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Finding
from repro.lint.registry import LintRule, register

__all__ = ["pluralize"]


def pluralize(name: str) -> str:
    """The batch spelling of a scalar parameter (``intensity`` →
    ``intensities``, ``value`` → ``values``)."""
    if name.endswith("y") and not name.endswith(("ay", "ey", "oy", "uy")):
        return name[:-1] + "ies"
    if name.endswith("s"):
        return name + "es"
    return name + "s"


def _arg_names(func: ast.FunctionDef) -> list[str]:
    args = func.args
    names = [a.arg for a in args.posonlyargs + args.args]
    if args.vararg:
        names.append("*" + args.vararg.arg)
    names.extend(a.arg for a in args.kwonlyargs)
    return names


def _params_match(scalar: list[str], batch: list[str]) -> bool:
    if len(scalar) != len(batch):
        return False
    return all(
        s == b or pluralize(s) == b for s, b in zip(scalar, batch)
    )


def _required_args(func: ast.FunctionDef) -> list[str]:
    """Positional parameter names with no default, minus ``self``."""
    args = func.args
    positional = args.posonlyargs + args.args
    required = positional[: len(positional) - len(args.defaults)]
    return [a.arg for a in required if a.arg != "self"]


def _returns_str(func: ast.FunctionDef) -> bool:
    returns = func.returns
    return isinstance(returns, ast.Name) and returns.id == "str"


def _is_property(func: ast.FunctionDef) -> bool:
    for deco in func.decorator_list:
        name = deco.id if isinstance(deco, ast.Name) else getattr(deco, "attr", "")
        if name in ("property", "cached_property", "staticmethod", "classmethod"):
            return True
    return False


@register
class BatchParityRule(LintRule):
    rule_id = "RL002"
    title = "scalar/*_batch signature parity in core/"

    def applies(self, relpath: str) -> bool:
        return relpath.startswith("core/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._check_namespace(ctx, ctx.tree.body, "module")
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_namespace(
                    ctx, node.body, f"class {node.name}"
                )

    def _check_namespace(
        self, ctx: FileContext, body: list[ast.stmt], where: str
    ) -> Iterator[Finding]:
        funcs: dict[str, ast.FunctionDef] = {
            node.name: node
            for node in body
            if isinstance(node, ast.FunctionDef)
        }
        batch_names = [
            n for n in funcs if n.endswith("_batch") and not n.startswith("_")
        ]
        for name in batch_names:
            base = name[: -len("_batch")]
            func = funcs[name]
            if base not in funcs:
                yield self.finding(
                    ctx,
                    func.lineno,
                    func.col_offset,
                    f"'{name}' in {where} has no scalar sibling '{base}'; "
                    "batch APIs must be cross-checkable against a scalar "
                    "oracle",
                )
                continue
            scalar_args = _arg_names(funcs[base])
            batch_args = _arg_names(func)
            if not _params_match(scalar_args, batch_args):
                yield self.finding(
                    ctx,
                    func.lineno,
                    func.col_offset,
                    f"'{name}' parameters {batch_args} do not mirror "
                    f"'{base}' parameters {scalar_args} (same order; "
                    "plural spelling allowed for array parameters)",
                )
        if not batch_names:
            return
        paired = {n[: -len("_batch")] for n in batch_names}
        for name, func in funcs.items():
            if (
                name.startswith("_")
                or name.endswith("_batch")
                or name in paired
                or _is_property(func)
                or _returns_str(func)
            ):
                continue
            required = _required_args(func)
            if required == ["intensity"]:
                yield self.finding(
                    ctx,
                    func.lineno,
                    func.col_offset,
                    f"'{name}' in {where} takes an intensity but has no "
                    f"'{name}_batch' counterpart; add the vectorised "
                    "sibling (the sweeps and the serving batcher rely on "
                    "name-based dispatch)",
                )

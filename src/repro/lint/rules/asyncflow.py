"""RL007 — async-blocking reachability (whole-program).

RL004 catches a coroutine calling ``time.sleep`` *directly*; it is
structurally blind to the two-hop version — a coroutine calling an
innocent-looking sync helper that blocks three frames down.  RL007
closes that gap: using the project call graph, compute the set of
functions that can reach a blocking leaf call through any chain of
ordinary calls, then flag every coroutine in that set whose path to
the leaf crosses at least one *internal* call edge (the zero-hop case
stays RL004's, so a single defect never fires twice).

``spawn`` edges (``run_in_executor``, ``asyncio.to_thread``,
``Executor.submit``, ``Process(target=...)``) are **not** traversed:
handing blocking work to an executor is exactly the sanctioned fix,
and following those edges would flag it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.lint.engine import Finding
from repro.lint.registry import ProjectRule, register
from repro.lint.rules.asyncsafety import BLOCKING_CALLS

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.lint.project.callgraph import CallEdge
    from repro.lint.project.symbols import ModuleInfo, Project

#: Blocking leaves beyond RL004's set: pickle of request/reply bodies
#: is CPU-bound serialization that stalls the loop for large payloads.
_EXTRA_BLOCKING = frozenset(
    {"pickle.dumps", "pickle.dump", "pickle.loads", "pickle.load"}
)

BLOCKING = BLOCKING_CALLS | _EXTRA_BLOCKING

#: Method names that are blocking file I/O on any plausible receiver
#: (pathlib handles); matched by attribute suffix when the receiver's
#: type is unknown.
BLOCKING_SUFFIXES = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)


def _blocking_leaf(dotted: str) -> str | None:
    """The canonical blocking-call name, or ``None``."""
    if dotted in BLOCKING:
        return dotted
    last = dotted.rsplit(".", 1)[-1]
    if "." in dotted and last in BLOCKING_SUFFIXES:
        return dotted
    return None


@register
class AsyncBlockingReachabilityRule(ProjectRule):
    rule_id = "RL007"
    title = "coroutines must not transitively reach blocking calls"
    closure = "imports"

    def prepare(self, project: "Project") -> object:
        graph = project.callgraph
        # Functions with a direct blocking leaf, and the leaf's name.
        direct: dict[str, str] = {}
        for edge in graph.edges:
            if not edge.external or edge.kind != "call":
                continue
            leaf = _blocking_leaf(edge.callee[4:])
            if leaf is not None and edge.caller not in direct:
                direct[edge.caller] = leaf
        # Reverse BFS from the blocking functions over internal call
        # edges: reach[f] = the first edge of f's shortest path to a
        # blocking function (used to reconstruct the blame chain).
        reverse: dict[str, list["CallEdge"]] = {}
        for edge in graph.edges:
            if edge.external or edge.kind != "call":
                continue
            reverse.setdefault(edge.callee, []).append(edge)
        reach: dict[str, "CallEdge"] = {}
        frontier = sorted(direct)
        while frontier:
            next_frontier: list[str] = []
            for callee in frontier:
                for edge in sorted(
                    reverse.get(callee, ()),
                    key=lambda e: (e.caller, e.lineno, e.col),
                ):
                    if edge.caller in reach or edge.caller in direct:
                        continue
                    reach[edge.caller] = edge
                    next_frontier.append(edge.caller)
            frontier = sorted(set(next_frontier))
        return {"direct": direct, "reach": reach, "graph": graph}

    def check_module(
        self, project: "Project", module: "ModuleInfo", state: object
    ) -> Iterable[Finding]:
        assert isinstance(state, dict)
        direct: dict[str, str] = state["direct"]
        reach: dict[str, "CallEdge"] = state["reach"]
        graph = state["graph"]
        for qualname in sorted(module.functions):
            func = module.functions[qualname]
            if not func.is_async or func.uid not in reach:
                continue
            # Reconstruct the shortest blame chain to the leaf.
            chain: list[str] = [qualname]
            first = reach[func.uid]
            edge = first
            leaf = None
            for _ in range(len(graph.functions) + 1):
                callee = graph.functions.get(edge.callee)
                if callee is None:
                    break
                chain.append(callee.qualname)
                if edge.callee in direct:
                    leaf = direct[edge.callee]
                    break
                nxt = reach.get(edge.callee)
                if nxt is None:
                    break
                edge = nxt
            if leaf is None:
                continue
            yield self.module_finding(
                module,
                first.lineno,
                first.col,
                f"coroutine '{qualname}' reaches blocking call "
                f"'{leaf}' via {' -> '.join(chain)}; move the blocking "
                "work behind run_in_executor or use an async API",
            )

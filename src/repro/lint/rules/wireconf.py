"""RL009 — wire-protocol conformance against ``protocol.py``.

The NDJSON envelope schema lives in one place —
:mod:`repro.service.protocol` (``ERROR_CODES``, ``RETRIABLE_CODES``,
``OPS``, ``ENVELOPE_FIELDS``, ``ERROR_FIELDS``) — but it is *used* in
half a dozen producers and consumers (server, router, workers, both
clients, the load generator).  RL009 extracts the schema from the
protocol module's AST (never importing it) and checks every service
module against it:

* error codes passed to ``error_response(...)`` / ``ServiceError(...)``
  must be schema codes (literal strings and resolvable constants are
  checked; dynamically computed codes are skipped);
* a schema-retriable code built *without* ``retriable=True`` breaks
  client failover — flagged; ``retriable=True`` on a non-retriable
  code is flagged too;
* operation-name literals (in request dicts and in comparisons against
  an ``op`` expression) must be schema ops;
* consumers indexing a variable literally named ``stats`` must use
  keys some producer (a ``stats()``/``snapshot()`` function anywhere
  in the project) actually emits;
* consumers indexing a variable named ``reply``/``resp``/``response``/
  ``envelope`` (or ``error``/``err``) must use schema envelope (error)
  fields.

The receiver-name conventions are deliberate: they make conformance
checkable without type inference, and the service code already follows
them.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable

from repro.lint.engine import Finding
from repro.lint.registry import ProjectRule, register
from repro.lint.rules._common import dotted_name

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.lint.project.symbols import ModuleInfo, Project

PROTOCOL = "service/protocol.py"
_ENVELOPE_NAMES = frozenset({"reply", "resp", "response", "envelope"})
_ERROR_NAMES = frozenset({"error", "err"})
_STATS_PRODUCERS = frozenset({"stats", "snapshot", "_stats"})


def _literal_set(
    expr: ast.expr, assigns: dict[str, ast.expr], _depth: int = 0
) -> set[str] | None:
    """Statically evaluate a frozenset-of-strings expression."""
    if _depth > 10:
        return None
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return {expr.value}
    if isinstance(expr, ast.Name):
        inner = assigns.get(expr.id)
        return None if inner is None else _literal_set(inner, assigns, _depth + 1)
    if isinstance(expr, ast.Call) and len(expr.args) == 1:
        return _literal_set(expr.args[0], assigns, _depth + 1)
    if isinstance(expr, (ast.Set, ast.List, ast.Tuple)):
        out: set[str] = set()
        for element in expr.elts:
            sub = _literal_set(element, assigns, _depth + 1)
            if sub is None:
                return None
            out |= sub
        return out
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.BitOr):
        left = _literal_set(expr.left, assigns, _depth + 1)
        right = _literal_set(expr.right, assigns, _depth + 1)
        if left is None or right is None:
            return None
        return left | right
    return None


def _is_op_expr(node: ast.expr) -> bool:
    """Does this expression denote a request's operation name?"""
    if isinstance(node, ast.Name) and node.id == "op":
        return True
    if isinstance(node, ast.Attribute) and node.attr == "op":
        return True
    if isinstance(node, ast.Subscript):
        sl = node.slice
        return isinstance(sl, ast.Constant) and sl.value == "op"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "get"
        and node.args
        and isinstance(node.args[0], ast.Constant)
        and node.args[0].value == "op"
    ):
        return True
    return False


def _const_strs(node: ast.expr) -> list[tuple[str, ast.expr]]:
    """String constants in a comparator (scalar or small collection)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [(node.value, node)]
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        out = []
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(
                element.value, str
            ):
                out.append((element.value, element))
        return out
    return []


class _Schema:
    def __init__(
        self,
        codes: set[str],
        retriable: set[str],
        ops: set[str],
        envelope_fields: set[str],
        error_fields: set[str],
        const_values: dict[str, str],
        stats_keys: set[str],
    ):
        self.codes = codes
        self.retriable = retriable
        self.ops = ops
        self.envelope_fields = envelope_fields
        self.error_fields = error_fields
        self.const_values = const_values
        self.stats_keys = stats_keys


@register
class WireConformanceRule(ProjectRule):
    rule_id = "RL009"
    title = "service modules agree with the protocol.py envelope schema"
    closure = "module"
    extra_deps = (
        PROTOCOL,
        "exceptions.py",
        # stats-producer functions feed the consumer-side key check
        "service/server.py",
        "service/metrics.py",
    )

    def applies(self, relpath: str) -> bool:
        return relpath.startswith("service/")

    # ------------------------------------------------------------------

    def prepare(self, project: "Project") -> object:
        proto = project.modules.get(PROTOCOL)
        if proto is None:
            return None
        const_values: dict[str, str] = {
            name: value.value
            for name, value in proto.assigns.items()
            if name.isupper()
            and isinstance(value, ast.Constant)
            and isinstance(value.value, str)
        }

        def named_set(name: str) -> set[str]:
            expr = proto.assigns.get(name)
            if expr is None:
                return set()
            resolved = _literal_set(expr, proto.assigns)
            return resolved or set()

        stats_keys: set[str] = set()
        for module in project.modules.values():
            for qualname, func in module.functions.items():
                if func.qualname.rsplit(".", 1)[-1] not in _STATS_PRODUCERS:
                    continue
                for node in ast.walk(func.node):
                    if isinstance(node, ast.Dict):
                        for key in node.keys:
                            if isinstance(key, ast.Constant) and isinstance(
                                key.value, str
                            ):
                                stats_keys.add(key.value)
                    elif isinstance(node, ast.Assign):
                        for target in node.targets:
                            if (
                                isinstance(target, ast.Subscript)
                                and isinstance(target.slice, ast.Constant)
                                and isinstance(target.slice.value, str)
                            ):
                                stats_keys.add(target.slice.value)
        return _Schema(
            codes=named_set("ERROR_CODES"),
            retriable=named_set("RETRIABLE_CODES"),
            ops=named_set("OPS"),
            envelope_fields=named_set("ENVELOPE_FIELDS"),
            error_fields=named_set("ERROR_FIELDS"),
            const_values=const_values,
            stats_keys=stats_keys,
        )

    # ------------------------------------------------------------------

    def check_module(
        self, project: "Project", module: "ModuleInfo", state: object
    ) -> Iterable[Finding]:
        if not isinstance(state, _Schema) or not state.codes:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_error_call(module, node, state)
                yield from self._check_get_fields(module, node, state)
            elif isinstance(node, ast.Dict):
                yield from self._check_op_dict(module, node, state)
            elif isinstance(node, ast.Compare):
                yield from self._check_op_compare(module, node, state)
            elif isinstance(node, ast.Subscript):
                yield from self._check_subscript(module, node, state)

    # -- error codes and retriable flags -------------------------------

    def _code_value(self, expr: ast.expr, schema: _Schema) -> str | None:
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return expr.value
        chain = dotted_name(expr)
        if chain is not None:
            return schema.const_values.get(chain.rsplit(".", 1)[-1])
        return None

    def _check_error_call(
        self, module: "ModuleInfo", call: ast.Call, schema: _Schema
    ) -> Iterable[Finding]:
        chain = dotted_name(call.func)
        if chain is None:
            return
        last = chain.rsplit(".", 1)[-1]
        if last == "error_response" and len(call.args) >= 2:
            code_expr = call.args[1]
        elif last == "ServiceError" and len(call.args) >= 1:
            code_expr = call.args[0]
        else:
            return
        code = self._code_value(code_expr, schema)
        if code is None:
            return  # dynamically computed; pass-through sites are fine
        if code not in schema.codes:
            yield self.module_finding(
                module,
                code_expr.lineno,
                code_expr.col_offset,
                f"error code '{code}' is not in protocol.ERROR_CODES; "
                "add it to the schema or use an existing code",
            )
            return
        retriable_kw = next(
            (kw for kw in call.keywords if kw.arg == "retriable"), None
        )
        if code in schema.retriable:
            marked = (
                retriable_kw is not None
                and isinstance(retriable_kw.value, ast.Constant)
                and retriable_kw.value.value is True
            )
            if retriable_kw is None:
                yield self.module_finding(
                    module,
                    call.lineno,
                    call.col_offset,
                    f"'{code}' is in protocol.RETRIABLE_CODES but this "
                    "envelope is built without retriable=True; clients "
                    "will not fail over",
                )
            elif not marked and isinstance(retriable_kw.value, ast.Constant):
                yield self.module_finding(
                    module,
                    call.lineno,
                    call.col_offset,
                    f"'{code}' is in protocol.RETRIABLE_CODES but "
                    "retriable is explicitly falsy here",
                )
        elif (
            retriable_kw is not None
            and isinstance(retriable_kw.value, ast.Constant)
            and retriable_kw.value.value is True
        ):
            yield self.module_finding(
                module,
                call.lineno,
                call.col_offset,
                f"'{code}' is marked retriable=True but is not in "
                "protocol.RETRIABLE_CODES; clients may resubmit a "
                "request that already executed",
            )

    # -- operation names ------------------------------------------------

    def _check_op_dict(
        self, module: "ModuleInfo", node: ast.Dict, schema: _Schema
    ) -> Iterable[Finding]:
        if not schema.ops:
            return
        for key, value in zip(node.keys, node.values):
            if (
                isinstance(key, ast.Constant)
                and key.value == "op"
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
                and value.value not in schema.ops
            ):
                yield self.module_finding(
                    module,
                    value.lineno,
                    value.col_offset,
                    f"request op '{value.value}' is not in protocol.OPS",
                )

    def _check_op_compare(
        self, module: "ModuleInfo", node: ast.Compare, schema: _Schema
    ) -> Iterable[Finding]:
        if not schema.ops:
            return
        sides = [node.left, *node.comparators]
        if not any(_is_op_expr(side) for side in sides):
            return
        for side in sides:
            for value, expr in _const_strs(side):
                if value not in schema.ops:
                    yield self.module_finding(
                        module,
                        expr.lineno,
                        expr.col_offset,
                        f"op comparison against '{value}', which is not "
                        "in protocol.OPS",
                    )

    # -- envelope / error / stats key discipline ------------------------

    def _field_check(
        self,
        module: "ModuleInfo",
        receiver: str,
        key: str,
        site: ast.expr,
        schema: _Schema,
    ) -> Iterable[Finding]:
        if receiver in _ENVELOPE_NAMES and schema.envelope_fields:
            if key not in schema.envelope_fields:
                yield self.module_finding(
                    module,
                    site.lineno,
                    site.col_offset,
                    f"envelope field '{key}' read from '{receiver}' is "
                    "not in protocol.ENVELOPE_FIELDS",
                )
        elif receiver in _ERROR_NAMES and schema.error_fields:
            if key not in schema.error_fields:
                yield self.module_finding(
                    module,
                    site.lineno,
                    site.col_offset,
                    f"error field '{key}' read from '{receiver}' is not "
                    "in protocol.ERROR_FIELDS",
                )
        elif receiver == "stats" and schema.stats_keys:
            if key not in schema.stats_keys:
                yield self.module_finding(
                    module,
                    site.lineno,
                    site.col_offset,
                    f"stats key '{key}' is not produced by any "
                    "stats()/snapshot() in the project",
                )

    def _check_subscript(
        self, module: "ModuleInfo", node: ast.Subscript, schema: _Schema
    ) -> Iterable[Finding]:
        if not (
            isinstance(node.value, ast.Name)
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            return
        if isinstance(node.ctx, ast.Store):
            return  # producers build envelopes key by key
        yield from self._field_check(
            module, node.value.id, node.slice.value, node, schema
        )

    def _check_get_fields(
        self, module: "ModuleInfo", call: ast.Call, schema: _Schema
    ) -> Iterable[Finding]:
        func = call.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr == "get"
            and isinstance(func.value, ast.Name)
            and call.args
            and isinstance(call.args[0], ast.Constant)
            and isinstance(call.args[0].value, str)
        ):
            return
        yield from self._field_check(
            module, func.value.id, call.args[0].value, call, schema
        )

"""RL005 — float equality.

``==``/``!=`` against a float literal is almost always a latent bug in
numeric model code: eq. (5) is *algebraically* identical to eq. (4),
but only ``math.isclose`` survives the rounding between the two
evaluation orders.  The model's own equivalence tests compare with
``isclose``/``np.isclose`` everywhere; production code must too.

Deliberate bit-exact comparisons do exist — an FMM kernel's exact-zero
self-interaction guard (``r == 0.0`` is true only for a point against
itself, by IEEE-754 construction) — and those sites carry a
``# replint: ignore[RL005] -- reason`` documenting the bit-exactness
argument.

Heuristic scope: only comparisons with a float *literal* operand are
flagged.  Typed-expression analysis is beyond an AST pass; the literal
case is both the common one and the unambiguous one.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Finding
from repro.lint.registry import LintRule, register


def _float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        return _float_literal(node.operand)
    return False


@register
class FloatEqualityRule(LintRule):
    rule_id = "RL005"
    title = "no ==/!= against float literals"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _float_literal(left) or _float_literal(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"float '{symbol}' comparison; use math.isclose/"
                        "np.isclose, or suppress with the bit-exactness "
                        "argument if the comparison is deliberate",
                    )

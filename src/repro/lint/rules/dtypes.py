"""RL006 — numpy dtype discipline in the cache-trace engine.

The batched LRU simulator and the FMM trace compiler exchange *line
arrays* — int64 address streams — across module boundaries
(:func:`repro.cachesim.fmmtrace.compile_ulist_trace` feeds
:mod:`repro.cachesim.batchlru`, which must stay bit-identical to the
scalar oracle in :mod:`repro.cachesim.cache`).  An array constructed
without an explicit dtype silently becomes platform-dependent
(``np.arange(n)`` is int32 on Windows) and breaks both the
bit-identical contract and the memoised sort plans keyed on dtype.

Rule: inside ``cachesim/``, every numpy array constructor
(``empty``/``zeros``/``ones``/``full``/``arange``/``asarray``/
``array``/``fromiter``/``frombuffer``) must pass an explicit
``dtype=`` keyword.  Derived arrays (``.astype``, slicing, ufuncs)
inherit a known dtype and are not constructors.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Finding
from repro.lint.registry import LintRule, register
from repro.lint.rules._common import dotted_name

CONSTRUCTORS = frozenset(
    {
        "empty",
        "zeros",
        "ones",
        "full",
        "arange",
        "asarray",
        "array",
        "fromiter",
        "frombuffer",
    }
)


@register
class DtypeDisciplineRule(LintRule):
    rule_id = "RL006"
    title = "explicit dtype= on array constructors in cachesim/"

    def applies(self, relpath: str) -> bool:
        return relpath.startswith("cachesim/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_name(node.func)
            if chain is None:
                continue
            parts = chain.split(".")
            if len(parts) != 2 or parts[0] not in ("np", "numpy"):
                continue
            if parts[1] not in CONSTRUCTORS:
                continue
            has_dtype = any(kw.arg == "dtype" for kw in node.keywords)
            # np.full(shape, fill, dtype) / np.arange(n, dtype) also
            # accept dtype positionally; count trailing positionals
            # conservatively only for fromiter (its second positional
            # IS the dtype).
            if parts[1] == "fromiter" and len(node.args) >= 2:
                has_dtype = True
            if not has_dtype:
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"'{chain}' without explicit dtype= in the line-array "
                    "engine; integer address streams must be constructed "
                    "as np.int64 (platform default dtypes differ)",
                )

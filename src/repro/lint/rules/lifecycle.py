"""RL008 — resource lifecycle: release on all paths, or transfer.

The serving stack's "zero shm orphans after SIGKILL" guarantee is only
as strong as the discipline that every ``SharedMemory`` / ``RingArena``
/ socket / process acquisition is either closed on **every** path out
of the acquiring function, or explicitly handed to another owner.
RL008 proves this per function on the statement CFG
(:mod:`repro.lint.project.cfg`):

1. find each acquisition assigned to a plain local
   (``seg = SharedMemory(...)``; assignment to ``self.x`` is by
   definition a transfer to the object and is not tracked);
2. classify every other statement as a *release* (``seg.close()``,
   kind-specific), a *transfer* (returned/yielded, stored into an
   attribute or container, passed to a call, aliased, captured by a
   closure, used as a context manager, or rebound), or neutral;
3. walk the normal-edge CFG from the acquisition: if function EXIT is
   reachable without crossing a release/transfer, some return path
   leaks — finding;
4. for shm kinds only, also walk the exception edges: if the RAISE
   exit is reachable, a throw between acquire and release orphans the
   segment — finding ("wrap in try/finally").  The acquisition's own
   raise edge is exempt (a failed constructor owns nothing).

Transfer points are annotated in the finding message so a reviewer can
see which exits were deliberate hand-offs.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable

from repro.lint.engine import Finding
from repro.lint.registry import ProjectRule, register
from repro.lint.rules._common import dotted_name

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.lint.project.cfg import CFG
    from repro.lint.project.symbols import ModuleInfo, Project

#: Release method names that end the tracked lifetime, per kind.
RELEASES = {
    "shm": frozenset({"close", "unlink", "release"}),
    "socket": frozenset({"close", "shutdown", "detach"}),
    "process": frozenset({"join", "terminate", "kill", "close", "wait"}),
}


def _acquire_kind(chain: str) -> str | None:
    last = chain.rsplit(".", 1)[-1]
    if last in ("SharedMemory", "RingArena"):
        return "shm"
    if (
        chain in ("socket.socket", "create_connection", "socketpair")
        or last in ("create_connection", "socketpair")
    ):
        return "socket"
    if last in ("Process", "Popen"):
        return "process"
    return None


def _stmt_exprs(stmt: ast.stmt) -> list[ast.AST]:
    """The expressions evaluated *at this CFG node* (compound statement
    bodies are their own nodes and must not be classified here)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    return [stmt]


def _contains_name(node: ast.AST, var: str) -> bool:
    return any(
        isinstance(child, ast.Name) and child.id == var
        for child in ast.walk(node)
    )


def _classify(stmt: ast.stmt, var: str, kind: str) -> str | None:
    """``"release"`` / ``"transfer"`` / ``None`` for this statement."""
    releases = RELEASES[kind]
    # Closure capture transfers ownership to the nested function.
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return "transfer" if _contains_name(stmt, var) else None
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            expr = item.context_expr
            if isinstance(expr, ast.Name) and expr.id == var:
                return "release"  # `with var:` — managed exit
            if _contains_name(expr, var):
                return "transfer"  # e.g. `with closing(var):`
        return None
    if isinstance(stmt, (ast.Return, ast.Expr)) and isinstance(
        getattr(stmt, "value", None), (ast.Yield, ast.YieldFrom)
    ) or isinstance(stmt, ast.Return):
        value = stmt.value
        if value is not None and _contains_name(value, var):
            return "transfer"
    if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        value = stmt.value
        # Only a *direct* alias transfers: the bare name, or the name
        # as an element of a literal container.  `x = var.method()`
        # merely uses the resource and keeps tracking it.
        direct = value is not None and (
            (isinstance(value, ast.Name) and value.id == var)
            or (
                isinstance(value, (ast.Tuple, ast.List, ast.Dict, ast.Set))
                and any(
                    isinstance(el, ast.Name) and el.id == var
                    for el in ast.walk(value)
                )
            )
        )
        for target in targets:
            if isinstance(target, ast.Name) and target.id == var:
                # Rebinding ends the tracked lifetime conservatively.
                return "transfer"
        if direct:
            return "transfer"
    result: str | None = None
    for root in _stmt_exprs(stmt):
        for node in ast.walk(root):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == var
                and func.attr in releases
            ):
                return "release"
            for arg in [*node.args, *[k.value for k in node.keywords]]:
                if _contains_name(arg, var):
                    result = "transfer"
    return result


def _none_guards(cfg: "CFG", var: str) -> dict[int, tuple[str, int]]:
    """If-nodes testing ``var is [not] None`` → (polarity, then-entry).

    After the acquisition (and before any rebinding, which stops the
    walk anyway) the variable is provably non-``None``, so the walk may
    prune the branch that requires it to be ``None`` — this is what
    makes the universal ``if res is not None: res.close()`` cleanup
    idiom provable.
    """
    guards: dict[int, tuple[str, int]] = {}
    for nid, stmt in cfg.stmts.items():
        if not isinstance(stmt, ast.If) or nid not in cfg.branch_true:
            continue
        test = stmt.test
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.left, ast.Name)
            and test.left.id == var
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        ):
            continue
        if isinstance(test.ops[0], ast.IsNot):
            guards[nid] = ("is_not_none", cfg.branch_true[nid])
        elif isinstance(test.ops[0], ast.Is):
            guards[nid] = ("is_none", cfg.branch_true[nid])
    return guards


def _reaches(
    cfg: "CFG",
    start: int,
    stops: set[int],
    sink: int,
    *,
    include_raise: bool,
    guards: dict[int, tuple[str, int]] | None = None,
) -> bool:
    """Is ``sink`` reachable from ``start``'s successors avoiding stops?"""
    guards = guards or {}

    def normal_succ(node: int) -> list[int]:
        succ = cfg.succ.get(node, set())
        guard = guards.get(node)
        if guard is not None:
            polarity, then_entry = guard
            if polarity == "is_not_none":
                succ = succ & {then_entry}
            else:
                succ = succ - {then_entry}
        return sorted(succ)

    seen: set[int] = set()
    # Seed from the acquisition's *normal* successors only: its own
    # raise edge is exempt (a failed constructor owns nothing).  Later
    # statements' raises all count when include_raise is set.
    stack = normal_succ(start)
    while stack:
        node = stack.pop()
        if node == sink:
            return True
        if node in seen or node in stops or node < 0:
            continue
        seen.add(node)
        stack.extend(normal_succ(node))
        if include_raise and not (
            node in guards and guards[node][0] == "is_not_none"
        ):
            # A matched `is not None` guard's test cannot raise; any
            # raise edge on it is a finally-frontier continuation that
            # would bypass the guarded release — pruned like the else
            # branch.
            stack.extend(sorted(cfg.raise_succ.get(node, ())))
    return False


@register
class ResourceLifecycleRule(ProjectRule):
    rule_id = "RL008"
    title = "acquired resources released on all paths or transferred"
    closure = "module"

    def check_module(
        self, project: "Project", module: "ModuleInfo", state: object
    ) -> Iterable[Finding]:
        from repro.lint.project.cfg import EXIT, RAISE, build_cfg

        for qualname in sorted(module.functions):
            func = module.functions[qualname]
            acquires: list[tuple[str, ast.stmt, str]] = []
            for stmt in ast.walk(func.node):
                if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                    continue
                target = stmt.targets[0]
                value = stmt.value
                if not (
                    isinstance(target, ast.Name)
                    and isinstance(value, ast.Call)
                ):
                    continue
                chain = dotted_name(value.func)
                if chain is None and isinstance(value.func, ast.Attribute):
                    # get_context("spawn").Process(...) — suffix only.
                    chain = value.func.attr
                if chain is None:
                    continue
                kind = _acquire_kind(chain)
                if kind is not None:
                    acquires.append((target.id, stmt, kind))
            if not acquires:
                continue
            cfg = build_cfg(func.node)
            for var, stmt, kind in acquires:
                nid = cfg.node_for(stmt)
                if nid is None:
                    continue  # inside a nested def; its own pass covers it
                guards = _none_guards(cfg, var)
                stops: set[int] = set()
                transfers: list[int] = []
                for other_id, other in cfg.stmts.items():
                    if other is None or other is stmt:
                        continue
                    verdict = _classify(other, var, kind)
                    if verdict is not None:
                        stops.add(other_id)
                        if verdict == "transfer":
                            transfers.append(other.lineno)
                note = (
                    f" (transferred at line{'s' if len(transfers) > 1 else ''}"
                    f" {', '.join(str(n) for n in sorted(set(transfers)))} —"
                    " other paths still leak)"
                    if transfers
                    else ""
                )
                if _reaches(
                    cfg, nid, stops, EXIT, include_raise=False, guards=guards
                ):
                    yield self.module_finding(
                        module,
                        stmt.lineno,
                        stmt.col_offset,
                        f"{kind} resource '{var}' acquired here is not "
                        "released on every return path; close it in a "
                        f"finally or context manager{note}",
                    )
                elif kind == "shm" and _reaches(
                    cfg, nid, stops, RAISE, include_raise=True, guards=guards
                ):
                    yield self.module_finding(
                        module,
                        stmt.lineno,
                        stmt.col_offset,
                        f"shm resource '{var}' acquired here leaks if a "
                        "later statement raises; wrap the use in "
                        f"try/finally (zero-orphans guarantee){note}",
                    )

"""The checker registry: one :class:`LintRule` instance per rule id.

Rules self-register via the :func:`register` decorator at import time;
:func:`all_rules` imports :mod:`repro.lint.rules` (which pulls in every
rule module) and returns the populated registry.  Keeping registration
declarative means adding a rule is: write a module under
``lint/rules/``, decorate the class, import it from
``lint/rules/__init__.py`` — the engine, CLI, reporters, and the
self-clean test pick it up automatically.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Iterable

from repro.exceptions import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.lint.engine import FileContext, Finding
    from repro.lint.project.symbols import ModuleInfo, Project

_RULE_ID = re.compile(r"^RL\d{3}$")

_REGISTRY: dict[str, "LintRule"] = {}


class LintRule:
    """Base class for one rule family.

    Subclasses set ``rule_id`` (``RLnnn``) and ``title``, optionally
    narrow :meth:`applies` to a sub-tree of the package, and implement
    :meth:`check` yielding :class:`~repro.lint.engine.Finding`s.
    """

    rule_id: str = ""
    title: str = ""
    #: ``"file"`` rules see one AST at a time through :meth:`check`;
    #: ``"project"`` rules (see :class:`ProjectRule`) get the whole
    #: symbol table and only run under ``repro lint --project``.
    scope: str = "file"

    def applies(self, relpath: str) -> bool:
        """Whether this rule runs on the file at package-relative path."""
        return True

    def check(self, ctx: "FileContext") -> Iterable["Finding"]:
        raise NotImplementedError

    def finding(
        self, ctx: "FileContext", line: int, col: int, message: str
    ) -> "Finding":
        """Construct a finding attributed to this rule."""
        from repro.lint.engine import Finding

        return Finding(
            rule=self.rule_id,
            path=ctx.relpath,
            line=line,
            col=col,
            message=message,
        )


class ProjectRule(LintRule):
    """Base class for whole-program (flow) rules.

    The project engine calls :meth:`prepare` once per run (sequential —
    build fixpoints, extract schemas) and then :meth:`check_module` per
    module, which the engine may parallelise per import-SCC.  The
    ``closure`` attribute names the dependency-closure kind the result
    cache keys on:

    * ``"module"`` — the module's own content (plus ``extra_deps``);
    * ``"imports"`` — the module's transitive import closure;
    * ``"component"`` — the module's weakly-connected import component.
    """

    scope: str = "project"
    closure: str = "imports"
    #: Package-relative paths every result of this rule also depends on
    #: (e.g. the protocol schema modules for RL009).
    extra_deps: tuple[str, ...] = ()

    def check(self, ctx: "FileContext") -> Iterable["Finding"]:
        raise TypeError(
            f"{self.rule_id} is a project-scope rule; use check_module()"
        )

    def prepare(self, project: "Project") -> object:
        """Whole-project prepass; the return value feeds check_module."""
        return None

    def check_module(
        self, project: "Project", module: "ModuleInfo", state: object
    ) -> Iterable["Finding"]:
        raise NotImplementedError

    def module_finding(
        self, module: "ModuleInfo", line: int, col: int, message: str
    ) -> "Finding":
        from repro.lint.engine import Finding

        return Finding(
            rule=self.rule_id,
            path=module.relpath,
            line=line,
            col=col,
            message=message,
        )


def register(cls: type[LintRule]) -> type[LintRule]:
    """Class decorator: instantiate and add the rule to the registry."""
    instance = cls()
    if not _RULE_ID.match(instance.rule_id):
        raise ValueError(
            f"rule id must match RLnnn, got {instance.rule_id!r}"
        )
    if instance.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {instance.rule_id}")
    _REGISTRY[instance.rule_id] = instance
    return cls


def all_rules() -> dict[str, LintRule]:
    """The full registry, keyed by rule id, in id order."""
    import repro.lint.rules  # noqa: F401 - populates the registry

    return dict(sorted(_REGISTRY.items()))


def resolve_rules(spec: str | Iterable[str] | None) -> dict[str, LintRule]:
    """Resolve a user rule selection to registry entries.

    ``spec`` is a comma-separated string (``"RL001,RL005"``), an
    iterable of ids, or ``None`` for every registered rule.  Unknown
    ids raise :class:`UnknownRuleError` — the CLI maps that to a usage
    error (exit code 2), not a lint failure.
    """
    rules = all_rules()
    if spec is None:
        return rules
    if isinstance(spec, str):
        wanted = [part.strip() for part in spec.split(",") if part.strip()]
    else:
        wanted = list(spec)
    if not wanted:
        raise UnknownRuleError("empty rule selection")
    unknown = [rid for rid in wanted if rid not in rules]
    if unknown:
        raise UnknownRuleError(
            f"unknown rule id(s) {', '.join(unknown)}; "
            f"available: {', '.join(rules)}"
        )
    return {rid: rules[rid] for rid in sorted(set(wanted))}


def file_rules(rules: dict[str, LintRule]) -> dict[str, LintRule]:
    """The file-scope subset of a rule selection."""
    return {rid: rule for rid, rule in rules.items() if rule.scope == "file"}


def project_rules(rules: dict[str, LintRule]) -> dict[str, "ProjectRule"]:
    """The project-scope subset of a rule selection."""
    return {
        rid: rule
        for rid, rule in rules.items()
        if isinstance(rule, ProjectRule)
    }


class UnknownRuleError(ReproError):
    """A ``--rules`` selection named a rule that does not exist."""

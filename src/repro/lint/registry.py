"""The checker registry: one :class:`LintRule` instance per rule id.

Rules self-register via the :func:`register` decorator at import time;
:func:`all_rules` imports :mod:`repro.lint.rules` (which pulls in every
rule module) and returns the populated registry.  Keeping registration
declarative means adding a rule is: write a module under
``lint/rules/``, decorate the class, import it from
``lint/rules/__init__.py`` — the engine, CLI, reporters, and the
self-clean test pick it up automatically.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Iterable

from repro.exceptions import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.lint.engine import FileContext, Finding

_RULE_ID = re.compile(r"^RL\d{3}$")

_REGISTRY: dict[str, "LintRule"] = {}


class LintRule:
    """Base class for one rule family.

    Subclasses set ``rule_id`` (``RLnnn``) and ``title``, optionally
    narrow :meth:`applies` to a sub-tree of the package, and implement
    :meth:`check` yielding :class:`~repro.lint.engine.Finding`s.
    """

    rule_id: str = ""
    title: str = ""

    def applies(self, relpath: str) -> bool:
        """Whether this rule runs on the file at package-relative path."""
        return True

    def check(self, ctx: "FileContext") -> Iterable["Finding"]:
        raise NotImplementedError

    def finding(
        self, ctx: "FileContext", line: int, col: int, message: str
    ) -> "Finding":
        """Construct a finding attributed to this rule."""
        from repro.lint.engine import Finding

        return Finding(
            rule=self.rule_id,
            path=ctx.relpath,
            line=line,
            col=col,
            message=message,
        )


def register(cls: type[LintRule]) -> type[LintRule]:
    """Class decorator: instantiate and add the rule to the registry."""
    instance = cls()
    if not _RULE_ID.match(instance.rule_id):
        raise ValueError(
            f"rule id must match RLnnn, got {instance.rule_id!r}"
        )
    if instance.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {instance.rule_id}")
    _REGISTRY[instance.rule_id] = instance
    return cls


def all_rules() -> dict[str, LintRule]:
    """The full registry, keyed by rule id, in id order."""
    import repro.lint.rules  # noqa: F401 - populates the registry

    return dict(sorted(_REGISTRY.items()))


def resolve_rules(spec: str | Iterable[str] | None) -> dict[str, LintRule]:
    """Resolve a user rule selection to registry entries.

    ``spec`` is a comma-separated string (``"RL001,RL005"``), an
    iterable of ids, or ``None`` for every registered rule.  Unknown
    ids raise :class:`UnknownRuleError` — the CLI maps that to a usage
    error (exit code 2), not a lint failure.
    """
    rules = all_rules()
    if spec is None:
        return rules
    if isinstance(spec, str):
        wanted = [part.strip() for part in spec.split(",") if part.strip()]
    else:
        wanted = list(spec)
    if not wanted:
        raise UnknownRuleError("empty rule selection")
    unknown = [rid for rid in wanted if rid not in rules]
    if unknown:
        raise UnknownRuleError(
            f"unknown rule id(s) {', '.join(unknown)}; "
            f"available: {', '.join(rules)}"
        )
    return {rid: rules[rid] for rid in sorted(set(wanted))}


class UnknownRuleError(ReproError):
    """A ``--rules`` selection named a rule that does not exist."""

"""Project call graph: who calls whom, and how.

Each project function (:class:`~repro.lint.project.symbols.FunctionInfo`)
is a node addressed by its ``uid`` (``relpath::qualname``); edges are
:class:`CallEdge` records carrying the call-site location and three
semantic flags the flow rules depend on:

* ``kind`` — ``"call"`` for ordinary invocation on the current thread
  of control, ``"spawn"`` for work handed to another thread or process
  (``run_in_executor``, ``asyncio.to_thread``, ``Executor.submit``,
  ``Process(target=...)``/``Thread(target=...)``).  RL007 must *not*
  propagate event-loop blocking through spawn edges — that boundary is
  exactly how the serving stack gets blocking work off the loop;
* ``awaited`` — the call sits directly under an ``await``;
* ``weak`` — the edge comes from the conservative dynamic-dispatch
  fallback: the receiver's class could not be inferred, and the method
  name resolves to exactly one project class.  Ambiguous names (two or
  more candidate classes) produce *no* edge — over-linking common
  names like ``close`` would drown the rules in false paths.

Receiver inference, in decreasing confidence: ``self.m()`` through the
class hierarchy; ``self.attr.m()`` via attribute types assigned in the
class (``self.attr = Ctor(...)``); ``var.m()`` via local single-class
constructor assignment; dotted names through the symbol table
(modules, imported functions, ``Class.method``); then the unique-name
fallback.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.lint.project.symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Project,
)
from repro.lint.rules._common import dotted_name

__all__ = [
    "CallEdge",
    "CallGraph",
    "build_callgraph",
    "strongly_connected",
]

#: Callables that hand their function argument to another thread or
#: process.  ``(attr_suffix, arg_index)``; ``None`` index means the
#: ``target=`` keyword (Process/Thread constructors).
_SPAWNERS: dict[str, int | None] = {
    "run_in_executor": 1,
    "to_thread": 0,
    "submit": 0,
    "Process": None,
    "Thread": None,
}

#: Loop-scheduling helpers whose argument *does* run on the loop —
#: these stay ordinary call edges, not spawns.
_LOOP_SCHEDULERS = {"create_task", "ensure_future", "call_soon", "call_later"}


@dataclass(frozen=True, slots=True)
class CallEdge:
    caller: str  # FunctionInfo uid
    callee: str  # FunctionInfo uid, or "ext:<dotted>" for externals
    lineno: int
    col: int
    kind: str = "call"  # "call" | "spawn"
    awaited: bool = False
    weak: bool = False

    @property
    def external(self) -> bool:
        return self.callee.startswith("ext:")


@dataclass(slots=True)
class CallGraph:
    """Edges indexed by caller, by callee, and by call site."""

    functions: dict[str, FunctionInfo]
    edges: list[CallEdge] = field(default_factory=list)
    by_caller: dict[str, list[CallEdge]] = field(default_factory=dict)
    by_callee: dict[str, list[CallEdge]] = field(default_factory=dict)
    by_site: dict[tuple[str, int, int], list[CallEdge]] = field(
        default_factory=dict
    )

    def add(self, edge: CallEdge) -> None:
        self.edges.append(edge)
        self.by_caller.setdefault(edge.caller, []).append(edge)
        self.by_callee.setdefault(edge.callee, []).append(edge)
        self.by_site.setdefault(
            (edge.caller, edge.lineno, edge.col), []
        ).append(edge)

    def calls_from(self, uid: str) -> list[CallEdge]:
        return self.by_caller.get(uid, [])

    def at_site(self, uid: str, lineno: int, col: int) -> list[CallEdge]:
        return self.by_site.get((uid, lineno, col), [])


def _attr_types(project: Project, cls: ClassInfo) -> dict[str, ClassInfo]:
    """``self.attr`` → class, from constructor-call assignments.

    Scans every method (so lazily-created attributes count), last
    deterministic assignment wins; only single-class inference — an
    attribute assigned two different project classes is dropped.
    """
    module = project.modules[cls.relpath]
    types: dict[str, ClassInfo] = {}
    conflicted: set[str] = set()
    for method in sorted(cls.methods.values(), key=lambda m: m.qualname):
        for node in ast.walk(method.node):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            ctor = dotted_name(value.func)
            if ctor is None:
                continue
            res = project.resolve(module, ctor)
            if res.kind != "class" or res.attr is not None:
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attr = target.attr
                    if attr in conflicted:
                        continue
                    seen = types.get(attr)
                    if seen is not None and seen.uid != res.target.uid:
                        conflicted.add(attr)
                        types.pop(attr, None)
                    else:
                        types[attr] = res.target
    return types


class _FunctionWalker:
    """Extract call edges from one function body (nested defs excluded)."""

    def __init__(
        self,
        project: Project,
        module: ModuleInfo,
        func: FunctionInfo,
        attr_types: dict[str, ClassInfo],
        graph: CallGraph,
    ):
        self.project = project
        self.module = module
        self.func = func
        self.attr_types = attr_types
        self.graph = graph
        self.local_types: dict[str, ClassInfo] = {}
        self._infer_local_types()

    def _infer_local_types(self) -> None:
        for node in self._walk_body():
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                value = node.value
                if isinstance(target, ast.Name) and isinstance(value, ast.Call):
                    ctor = dotted_name(value.func)
                    if ctor is None:
                        continue
                    res = self.project.resolve(self.module, ctor)
                    if res.kind == "class" and res.attr is None:
                        self.local_types[target.id] = res.target

    def _walk_body(self) -> Iterator[ast.AST]:
        stack: list[ast.AST] = list(self.func.node.body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            stack.extend(ast.iter_child_nodes(node))

    # ------------------------------------------------------------------

    def run(self) -> None:
        awaited_calls = {
            id(node.value)
            for node in self._walk_body()
            if isinstance(node, ast.Await)
            and isinstance(node.value, ast.Call)
        }
        for node in self._walk_body():
            if isinstance(node, ast.Call):
                self._handle_call(node, awaited=id(node) in awaited_calls)

    def _handle_call(self, call: ast.Call, *, awaited: bool) -> None:
        spawned = self._spawn_argument(call)
        if spawned is not None:
            self._emit(spawned, call, kind="spawn", awaited=False)
        chain = dotted_name(call.func)
        if chain is not None and chain.rsplit(".", 1)[-1] in _LOOP_SCHEDULERS:
            for arg in call.args[:1]:
                self._emit(arg, call, kind="call", awaited=awaited)
        self._emit(call.func, call, kind="call", awaited=awaited)

    def _spawn_argument(self, call: ast.Call) -> ast.expr | None:
        chain = dotted_name(call.func)
        if chain is None:
            return None
        name = chain.rsplit(".", 1)[-1]
        if name not in _SPAWNERS:
            return None
        index = _SPAWNERS[name]
        if index is None:
            for kw in call.keywords:
                if kw.arg == "target":
                    return kw.value
            return None
        if len(call.args) > index:
            return call.args[index]
        return None

    def _emit(
        self, target: ast.expr, site: ast.Call, *, kind: str, awaited: bool
    ) -> None:
        resolved = self._resolve_target(target)
        if resolved is None:
            return
        callee, weak = resolved
        self.graph.add(
            CallEdge(
                caller=self.func.uid,
                callee=callee,
                lineno=site.lineno,
                col=site.col_offset,
                kind=kind,
                awaited=awaited,
                weak=weak,
            )
        )

    def _resolve_target(
        self, target: ast.expr
    ) -> tuple[str, bool] | None:
        if isinstance(target, ast.Call):
            # e.g. get_context("spawn").Process — resolve the inner
            # attribute chain conservatively by its suffix name.
            target = target.func
        chain = dotted_name(target)
        if chain is None:
            return None
        parts = chain.split(".")
        # self.m() / self.attr.m() — bind through the hierarchy.
        if parts[0] == "self" and self.func.class_name is not None:
            cls = self.module.classes.get(self.func.class_name)
            if cls is None:
                return None
            if len(parts) == 2:
                method = self.project.method_of(cls, parts[1])
                if method is not None:
                    return method.uid, False
                return self._fallback(parts[1])
            if len(parts) == 3:
                attr_cls = self.attr_types.get(parts[1])
                if attr_cls is not None:
                    method = self.project.method_of(attr_cls, parts[2])
                    if method is not None:
                        return method.uid, False
                return self._fallback(parts[-1])
            return self._fallback(parts[-1])
        # var.m() with a constructor-inferred local type.
        if len(parts) == 2 and parts[0] in self.local_types:
            method = self.project.method_of(
                self.local_types[parts[0]], parts[1]
            )
            if method is not None:
                return method.uid, False
            return self._fallback(parts[1])
        # Plain dotted resolution through the symbol table.
        res = self.project.resolve(self.module, chain)
        if res.kind == "function":
            return res.target.uid, False
        if res.kind == "class" and res.attr is None:
            # Constructor call → the class's __init__ when it has one.
            init = self.project.method_of(res.target, "__init__")
            if init is not None:
                return init.uid, False
            return None
        if res.kind == "external":
            name = str(res.target)
            if len(parts) > 1 and "." in name:
                # Unknown receiver: try the dynamic-dispatch fallback
                # before settling for an external edge.
                fallback = self._fallback(parts[-1])
                if fallback is not None and not fallback[0].startswith("ext:"):
                    return fallback
            return f"ext:{name}", False
        return None

    def _fallback(self, method_name: str) -> tuple[str, bool] | None:
        """Unique-name dynamic-dispatch fallback (weak edge)."""
        candidates = self.project.methods_named(method_name)
        if len(candidates) == 1:
            return candidates[0].uid, True
        return None


def build_callgraph(project: Project) -> CallGraph:
    """Build the full project call graph, deterministically ordered."""
    functions = {
        func.uid: func
        for module in project.modules.values()
        for func in module.functions.values()
    }
    graph = CallGraph(functions=functions)
    attr_type_cache: dict[str, dict[str, ClassInfo]] = {}
    for module in project.modules.values():
        for qualname in sorted(module.functions):
            func = module.functions[qualname]
            types: dict[str, ClassInfo] = {}
            if func.class_name is not None:
                cls = module.classes.get(func.class_name)
                if cls is not None:
                    if cls.uid not in attr_type_cache:
                        attr_type_cache[cls.uid] = _attr_types(project, cls)
                    types = attr_type_cache[cls.uid]
            _FunctionWalker(project, module, func, types, graph).run()
    return graph


def strongly_connected(graph: dict[str, set[str]]) -> list[list[str]]:
    """Tarjan SCCs (iterative), in deterministic reverse-topological order.

    Works on any ``node → successors`` adjacency dict; used both for
    the import-graph condensation (cache closures, per-SCC work units)
    and in tests over generated graphs.
    """
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0

    for root in sorted(graph):
        if root in index:
            continue
        work: list[tuple[str, Iterator[str]]] = [
            (root, iter(sorted(graph.get(root, ()))))
        ]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in graph:
                    continue
                if succ not in index:
                    index[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(sorted(component))
    return sccs

"""Whole-program analysis for replint (``repro lint --project``).

The per-file rules (RL001–RL006) see one AST at a time; the serving
stack's headline guarantees — byte-identical responses across worker
counts and router topologies, zero shared-memory orphans after SIGKILL,
retriable-only failover — are *cross-file* concurrency and protocol
invariants.  This package grows replint into a whole-program engine:

* :mod:`~repro.lint.project.symbols` — a cross-module symbol table
  (imports resolved including aliases and re-export chains, classes
  with their hierarchy, per-module functions);
* :mod:`~repro.lint.project.callgraph` — a project call graph (methods
  bound via the class hierarchy, a conservative unique-name fallback
  for dynamic dispatch, executor/process submissions marked as
  ``spawn`` edges so off-loop work is not confused with on-loop work);
* :mod:`~repro.lint.project.cfg` — an intraprocedural control-flow
  graph with exception edges, for lifecycle proofs;
* four flow-rule families on top: RL007 (async-blocking reachability),
  RL008 (resource lifecycle), RL009 (wire-protocol conformance),
  RL010 (lock-order consistency);
* :mod:`~repro.lint.project.engine` — the driver: dependency-closure
  result cache and per-SCC parallel rule execution.

See ``docs/LINT.md`` for the architecture walk-through.
"""

from __future__ import annotations

from repro.lint.project.engine import (
    PROJECT_LINT_VERSION,
    run_project_lint,
)
from repro.lint.project.symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Project,
    build_project,
    build_project_from_sources,
)
from repro.lint.project.callgraph import CallEdge, CallGraph, strongly_connected

__all__ = [
    "CallEdge",
    "CallGraph",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "PROJECT_LINT_VERSION",
    "Project",
    "build_project",
    "build_project_from_sources",
    "run_project_lint",
    "strongly_connected",
]

"""Statement-level control-flow graph with exception edges.

RL008 needs to prove that a resource acquired at statement *S* is
released (or transferred) on **every** path to function exit — both
the normal return paths and, for shared-memory resources, the paths
that leave via an uncaught exception.  That calls for a CFG that keeps
normal successors and raise successors separate:

* ``succ[node]`` — ordinary fall-through / branch edges;
* ``raise_succ[node]`` — where control goes if the statement raises
  (the nearest handler dispatch, or a ``finally`` body, or the
  synthetic :data:`RAISE` exit).

Nodes are statement ids (``id()`` is unusable across pickling, so we
number statements in visit order); :data:`EXIT` (normal return) and
:data:`RAISE` (uncaught exception) are synthetic sinks.  ``try``
/``finally`` is modelled with a single shared ``finally`` subgraph
whose frontier conservatively edges to the normal continuation *and*
the outer raise/return targets — sound (it may only add paths, never
hide one) and cheap.

The builder is syntactic and conservative: every statement containing
a call, ``raise`` or ``assert`` is assumed able to raise; ``while``
headers always keep their exit edge (even ``while True``), which can
only create false *paths*, not false negatives, for a
"release-on-all-paths" proof — and RL008 compensates by treating loop
headers pessimistically.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["CFG", "EXIT", "RAISE", "build_cfg"]

EXIT = -1
RAISE = -2


@dataclass(slots=True)
class CFG:
    #: statement-node id → the ast statement it stands for (synthetic
    #: dispatch/join nodes map to ``None``).
    stmts: dict[int, ast.stmt | None] = field(default_factory=dict)
    succ: dict[int, set[int]] = field(default_factory=dict)
    raise_succ: dict[int, set[int]] = field(default_factory=dict)
    #: If-statement node → entry node of its then-branch, letting a
    #: client prune branches it can prove infeasible (RL008 uses this
    #: for ``if resource is not None:`` release guards).
    branch_true: dict[int, int] = field(default_factory=dict)
    entry: int = 0

    def node_for(self, stmt: ast.stmt) -> int | None:
        for nid, s in self.stmts.items():
            if s is stmt:
                return nid
        return None

    def successors(
        self, node: int, *, include_raise: bool = True
    ) -> set[int]:
        out = set(self.succ.get(node, ()))
        if include_raise:
            out |= self.raise_succ.get(node, set())
        return out


def _can_raise(stmt: ast.stmt) -> bool:
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    if isinstance(
        stmt,
        (ast.For, ast.AsyncFor, ast.While, ast.If, ast.With, ast.AsyncWith),
    ):
        # Only the header expression can raise at *this* node; the body
        # statements are their own nodes.
        headers: list[ast.expr] = []
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            headers = [stmt.iter]
        elif isinstance(stmt, (ast.While, ast.If)):
            headers = [stmt.test]
        else:
            headers = [item.context_expr for item in stmt.items]
        return any(
            isinstance(node, ast.Call)
            for header in headers
            for node in ast.walk(header)
        )
    if isinstance(stmt, (ast.Try, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return False
    return any(isinstance(node, ast.Call) for node in ast.walk(stmt))


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self._next = 0

    def _new(self, stmt: ast.stmt | None) -> int:
        nid = self._next
        self._next += 1
        self.cfg.stmts[nid] = stmt
        self.cfg.succ[nid] = set()
        self.cfg.raise_succ[nid] = set()
        return nid

    def _edge(self, src: int, dst: int) -> None:
        if src in (EXIT, RAISE):
            return
        self.cfg.succ[src].add(dst)

    def _raise_edge(self, src: int, dst: int) -> None:
        if src in (EXIT, RAISE):
            return
        self.cfg.raise_succ[src].add(dst)

    # ------------------------------------------------------------------

    def build(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
        entry = self._new(None)
        self.cfg.entry = entry
        exits = self._block(
            func.body,
            preds=[entry],
            raise_to=RAISE,
            return_to=EXIT,
            break_to=None,
            continue_to=None,
        )
        for nid in exits:
            self._edge(nid, EXIT)
        return self.cfg

    def _block(
        self,
        stmts: list[ast.stmt],
        *,
        preds: list[int],
        raise_to: int,
        return_to: int,
        break_to: int | None,
        continue_to: int | None,
    ) -> list[int]:
        """Wire ``stmts`` after ``preds``; return the open exits."""
        current = list(preds)
        for stmt in stmts:
            if not current:
                break  # unreachable tail
            current = self._stmt(
                stmt,
                preds=current,
                raise_to=raise_to,
                return_to=return_to,
                break_to=break_to,
                continue_to=continue_to,
            )
        return current

    def _stmt(
        self,
        stmt: ast.stmt,
        *,
        preds: list[int],
        raise_to: int,
        return_to: int,
        break_to: int | None,
        continue_to: int | None,
    ) -> list[int]:
        nid = self._new(stmt)
        for pred in preds:
            self._edge(pred, nid)
        if _can_raise(stmt):
            self._raise_edge(nid, raise_to)

        if isinstance(stmt, ast.Return):
            self._edge(nid, return_to)
            return []
        if isinstance(stmt, ast.Raise):
            self._raise_edge(nid, raise_to)
            return []
        if isinstance(stmt, ast.Break) and break_to is not None:
            self._edge(nid, break_to)
            return []
        if isinstance(stmt, ast.Continue) and continue_to is not None:
            self._edge(nid, continue_to)
            return []

        if isinstance(stmt, ast.If):
            self.cfg.branch_true[nid] = self._next  # body[0]'s node id
            then_exits = self._block(
                stmt.body,
                preds=[nid],
                raise_to=raise_to,
                return_to=return_to,
                break_to=break_to,
                continue_to=continue_to,
            )
            else_exits = (
                self._block(
                    stmt.orelse,
                    preds=[nid],
                    raise_to=raise_to,
                    return_to=return_to,
                    break_to=break_to,
                    continue_to=continue_to,
                )
                if stmt.orelse
                else [nid]
            )
            return then_exits + else_exits

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            join = self._new(None)  # loop exit join
            body_exits = self._block(
                stmt.body,
                preds=[nid],
                raise_to=raise_to,
                return_to=return_to,
                break_to=join,
                continue_to=nid,
            )
            for b in body_exits:
                self._edge(b, nid)  # back edge
            self._edge(nid, join)  # conservative loop exit
            else_exits = (
                self._block(
                    stmt.orelse,
                    preds=[join],
                    raise_to=raise_to,
                    return_to=return_to,
                    break_to=break_to,
                    continue_to=continue_to,
                )
                if stmt.orelse
                else [join]
            )
            return else_exits

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._block(
                stmt.body,
                preds=[nid],
                raise_to=raise_to,
                return_to=return_to,
                break_to=break_to,
                continue_to=continue_to,
            )

        if isinstance(stmt, ast.Try):
            return self._try(
                stmt,
                nid,
                raise_to=raise_to,
                return_to=return_to,
                break_to=break_to,
                continue_to=continue_to,
            )

        return [nid]

    def _try(
        self,
        stmt: ast.Try,
        nid: int,
        *,
        raise_to: int,
        return_to: int,
        break_to: int | None,
        continue_to: int | None,
    ) -> list[int]:
        has_finally = bool(stmt.finalbody)
        # Where a raise inside the try lands first: the handler
        # dispatch if there are handlers, otherwise finally/outer.
        dispatch = self._new(None) if stmt.handlers else None

        if has_finally:
            # Shared finally subgraph; its frontier edges to every
            # possible continuation (normal, raise, return).
            fin_entry = self._new(None)
            fin_exits = self._block(
                stmt.finalbody,
                preds=[fin_entry],
                raise_to=raise_to,
                return_to=return_to,
                break_to=break_to,
                continue_to=continue_to,
            )
            inner_raise_to = dispatch if dispatch is not None else fin_entry
            inner_return_to = fin_entry
        else:
            fin_entry = None
            fin_exits = []
            inner_raise_to = dispatch if dispatch is not None else raise_to
            inner_return_to = return_to

        body_exits = self._block(
            stmt.body,
            preds=[nid],
            raise_to=inner_raise_to,
            return_to=inner_return_to,
            break_to=break_to,
            continue_to=continue_to,
        )
        # else-clause runs only when the body completed normally, and
        # its exceptions bypass the handlers.
        else_raise_to = fin_entry if has_finally else raise_to
        if stmt.orelse:
            body_exits = self._block(
                stmt.orelse,
                preds=body_exits,
                raise_to=else_raise_to if else_raise_to is not None else raise_to,
                return_to=inner_return_to,
                break_to=break_to,
                continue_to=continue_to,
            )

        handler_exits: list[int] = []
        if dispatch is not None:
            # Unmatched exception falls through dispatch to
            # finally/outer raise target.
            unmatched = fin_entry if has_finally else raise_to
            self._raise_edge(dispatch, unmatched)
            handler_raise_to = fin_entry if has_finally else raise_to
            for handler in stmt.handlers:
                handler_exits += self._block(
                    handler.body,
                    preds=[dispatch],
                    raise_to=(
                        handler_raise_to
                        if handler_raise_to is not None
                        else raise_to
                    ),
                    return_to=inner_return_to,
                    break_to=break_to,
                    continue_to=continue_to,
                )

        exits = body_exits + handler_exits
        if has_finally:
            assert fin_entry is not None
            for e in exits:
                self._edge(e, fin_entry)
            # Finally frontier: normal continuation plus the outer
            # raise/return targets (conservative re-raise / pending
            # return after finally).
            for f in fin_exits:
                self._raise_edge(f, raise_to)
                self._edge(f, return_to)
            return list(fin_exits)
        return exits


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    return _Builder().build(func)

"""The project-pass driver: closure-keyed cache, per-SCC parallelism.

``run_project_lint`` parses every file once into a
:class:`~repro.lint.project.symbols.Project`, then runs each
project-scope rule over each module it applies to.  Two pieces of
engineering keep the pass inside its budget (< 10 s warm over
``src/repro``):

* **dependency-closure cache** — one cache entry per (rule, module),
  keyed on the content hashes of exactly the files that rule's result
  may depend on (the rule's declared ``closure`` kind: the module
  itself, its transitive import closure, or its weakly-connected
  import component — plus any ``extra_deps``).  Editing one leaf
  module re-analyses only the modules whose closure contains it;
* **per-SCC parallel execution** — cache misses are grouped by the
  import graph's strongly connected components and dispatched to a
  thread pool (threads, not processes: the shared
  :class:`Project`/call-graph would otherwise be re-pickled per
  worker, which costs more than the analysis).

Suppressions (``# replint: ignore[RLnnn] -- reason``) are applied
*after* the cache, against the current source — a cache hit still
honours a freshly added suppression because the module's own content
is always part of its key.
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.lint.engine import (
    Finding,
    LintReport,
    iter_python_files,
    parse_suppressions,
)
from repro.lint.registry import ProjectRule, project_rules, resolve_rules

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.lint.project.symbols import ModuleInfo, Project

__all__ = ["PROJECT_LINT_VERSION", "run_project_lint"]

#: Bumped whenever project-pass semantics change; part of every cache
#: key, so an engine upgrade invalidates all prior project entries.
PROJECT_LINT_VERSION = "1"


def _component_closure(project: "Project") -> dict[str, frozenset[str]]:
    """relpath → its weakly-connected import-graph component."""
    graph = project.import_graph
    undirected: dict[str, set[str]] = {rel: set() for rel in graph}
    for rel, deps in graph.items():
        for dep in deps:
            undirected[rel].add(dep)
            undirected.setdefault(dep, set()).add(rel)
    component: dict[str, frozenset[str]] = {}
    for start in sorted(undirected):
        if start in component:
            continue
        members: set[str] = set()
        stack = [start]
        while stack:
            node = stack.pop()
            if node in members:
                continue
            members.add(node)
            stack.extend(undirected.get(node, ()))
        frozen = frozenset(members)
        for member in members:
            component[member] = frozen
    return component


def _closure_for(
    rule: ProjectRule,
    module: "ModuleInfo",
    project: "Project",
    components: dict[str, frozenset[str]],
) -> set[str]:
    if rule.closure == "module":
        closure = {module.relpath}
    elif rule.closure == "component":
        closure = set(components.get(module.relpath, {module.relpath}))
    else:  # "imports" — the default
        closure = project.import_closure(module.relpath)
    closure.update(
        dep for dep in rule.extra_deps if dep in project.modules
    )
    closure.add(module.relpath)
    return closure


def _cache_key(
    rule: ProjectRule,
    closure: set[str],
    digests: dict[str, str],
) -> str:
    hasher = hashlib.sha256()
    hasher.update(PROJECT_LINT_VERSION.encode())
    hasher.update(rule.rule_id.encode())
    hasher.update(b"\x00")
    for relpath in sorted(closure):
        hasher.update(relpath.encode())
        hasher.update(b"=")
        hasher.update(digests[relpath].encode())
        hasher.update(b"\n")
    return hasher.hexdigest()


def _apply_suppressions(
    module: "ModuleInfo", raw: list[Finding]
) -> tuple[list[Finding], list[tuple[Finding, str]]]:
    suppressions, _meta = parse_suppressions(module.source)
    active: list[Finding] = []
    suppressed: list[tuple[Finding, str]] = []
    for finding in raw:
        covering = next((s for s in suppressions if s.covers(finding)), None)
        if covering is not None:
            suppressed.append((finding, covering.reason or ""))
        else:
            active.append(finding)
    return active, suppressed


def run_project_lint(
    paths: Iterable[Path],
    *,
    rules: str | Iterable[str] | None = None,
    jobs: int = 1,
    cache_dir: Path | None = None,
    changed_only: set[str] | None = None,
) -> LintReport:
    """Run every selected project-scope rule over the tree.

    ``changed_only`` (package-relative paths) restricts checking to the
    changed modules *and every module that transitively imports one* —
    a finding in an importer can be introduced by an edit to its
    dependency, so the reverse closure is the sound unit.  The whole
    tree is still parsed either way, because flow facts for the checked
    modules routinely live elsewhere.  This is the ``--changed`` hook.
    """
    from repro.lint.project.callgraph import strongly_connected
    from repro.lint.project.symbols import build_project

    selected = project_rules(resolve_rules(rules))
    rule_ids = list(selected)
    files = iter_python_files(paths)
    project = build_project(files)
    digests = {
        relpath: hashlib.sha256(
            module.source.encode("utf-8", errors="replace")
        ).hexdigest()
        for relpath, module in project.modules.items()
    }
    components = _component_closure(project)

    if changed_only is None:
        checked = list(project.modules)
    else:
        affected = project.dependents_closure(
            changed_only & set(project.modules)
        )
        checked = [rel for rel in project.modules if rel in affected]

    # Phase 1: cache probe.
    cached: dict[tuple[str, str], list[Finding]] = {}
    misses: dict[str, list[str]] = {}  # rule id → module relpaths
    keys: dict[tuple[str, str], str] = {}
    for rule_id, rule in selected.items():
        for relpath in checked:
            if not rule.applies(relpath):
                continue
            module = project.modules[relpath]
            key = None
            if cache_dir is not None:
                closure = _closure_for(rule, module, project, components)
                key = _cache_key(rule, closure, digests)
                keys[(rule_id, relpath)] = key
                entry = Path(cache_dir) / f"proj-{key}.json"
                if entry.is_file():
                    try:
                        payload = json.loads(entry.read_text())
                        cached[(rule_id, relpath)] = [
                            Finding(**f) for f in payload
                        ]
                        continue
                    except (json.JSONDecodeError, TypeError, OSError):
                        pass  # torn entry; recompute
            misses.setdefault(rule_id, []).append(relpath)

    # Phase 2: prepare() only the rules that actually have work.
    states: dict[str, object] = {
        rule_id: selected[rule_id].prepare(project) for rule_id in misses
    }

    # Phase 3: check misses, parallel across import-SCC groups.
    sccs = strongly_connected(project.import_graph)
    scc_of = {
        relpath: index
        for index, component in enumerate(sccs)
        for relpath in component
    }
    groups: dict[tuple[str, int], list[str]] = {}
    for rule_id, relpaths in misses.items():
        for relpath in relpaths:
            groups.setdefault(
                (rule_id, scc_of.get(relpath, -1)), []
            ).append(relpath)

    def run_group(item: tuple[tuple[str, int], list[str]]) -> list[
        tuple[str, str, list[Finding]]
    ]:
        (rule_id, _scc), relpaths = item
        rule = selected[rule_id]
        state = states[rule_id]
        out = []
        for relpath in sorted(relpaths):
            module = project.modules[relpath]
            findings = sorted(
                rule.check_module(project, module, state),
                key=lambda f: (f.line, f.col, f.message),
            )
            out.append((rule_id, relpath, findings))
        return out

    items = sorted(groups.items())
    if jobs > 1 and len(items) > 1:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            results = list(pool.map(run_group, items))
    else:
        results = [run_group(item) for item in items]
    for batch in results:
        for rule_id, relpath, findings in batch:
            cached[(rule_id, relpath)] = findings
            if cache_dir is not None:
                key = keys.get((rule_id, relpath))
                if key is not None:
                    entry = Path(cache_dir) / f"proj-{key}.json"
                    entry.parent.mkdir(parents=True, exist_ok=True)
                    tmp = entry.with_suffix(".tmp")
                    tmp.write_text(
                        json.dumps(
                            [asdict(finding) for finding in findings],
                            sort_keys=True,
                        )
                    )
                    tmp.replace(entry)

    # Phase 4: suppressions, aggregation.
    findings: list[Finding] = []
    suppressed: list[tuple[Finding, str]] = []
    by_module: dict[str, list[Finding]] = {}
    for (rule_id, relpath), raw in cached.items():
        by_module.setdefault(relpath, []).extend(raw)
    for relpath in sorted(by_module):
        active, covered = _apply_suppressions(
            project.modules[relpath], by_module[relpath]
        )
        findings.extend(active)
        suppressed.extend(covered)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    suppressed.sort(key=lambda item: (item[0].path, item[0].line, item[0].rule))
    return LintReport(
        findings=findings,
        suppressed=suppressed,
        files_checked=len(checked),
        rule_ids=rule_ids,
    )

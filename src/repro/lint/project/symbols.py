"""Cross-module symbol table: the foundation of the project pass.

One :class:`ModuleInfo` per source file records the module's imports
(alias → dotted target), top-level functions, classes with their
methods, and simple module-level assignments (used both for constant
extraction and for ``X = Y`` re-export aliases).  A :class:`Project`
ties the modules together and answers the two questions every flow
rule asks:

* *what does this dotted name mean here?* — :meth:`Project.resolve`,
  following import aliases and re-export chains across modules, with a
  visited set so import cycles terminate deterministically;
* *which method does this class inherit?* — :meth:`Project.method_of`,
  a left-to-right depth-first walk over project-resolvable bases
  (deterministic under diamond inheritance, cycle-safe).

Resolution is purely declarative — no code is imported or executed —
so the table is safe to build over arbitrary (even broken) trees; a
file that does not parse is simply absent, and rules degrade to the
conservative fallback.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "Project",
    "Resolution",
    "build_project",
    "build_project_from_sources",
]


@dataclass(slots=True)
class FunctionInfo:
    """One function or method definition, addressable project-wide."""

    qualname: str  # "Class.method", "func", or "outer.<locals>.inner"
    relpath: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    is_async: bool
    class_name: str | None = None

    @property
    def uid(self) -> str:
        return f"{self.relpath}::{self.qualname}"

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass(slots=True)
class ClassInfo:
    """One class definition plus its own (non-inherited) methods."""

    name: str
    relpath: str
    node: ast.ClassDef
    bases: list[str]  # dotted base names as written, resolution deferred
    methods: dict[str, FunctionInfo] = field(default_factory=dict)

    @property
    def uid(self) -> str:
        return f"{self.relpath}::{self.name}"


@dataclass(slots=True)
class ModuleInfo:
    """Everything the project pass knows about one source file."""

    relpath: str
    modname: str  # dotted, e.g. "repro.service.workers"
    source: str
    tree: ast.Module
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    assigns: dict[str, ast.expr] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class Resolution:
    """Outcome of resolving a dotted name from some module.

    ``kind`` is one of ``"function"`` / ``"class"`` / ``"module"`` /
    ``"const"`` (a module-level assignment that is not an alias) /
    ``"external"`` (outside the project).  ``target`` holds the
    matching info object (or the canonical dotted name for
    ``external``); ``attr`` carries a trailing unresolved attribute,
    e.g. the ``"sleep"`` of ``time.sleep`` or a method name looked up
    on a class.
    """

    kind: str
    target: object
    attr: str | None = None


def _modname(relpath: str, package: str) -> str:
    stem = relpath[:-3] if relpath.endswith(".py") else relpath
    parts = [p for p in stem.split("/") if p]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if package:
        parts = [package, *parts]
    return ".".join(parts)


def _collect_imports(
    tree: ast.Module, modname: str, is_package: bool
) -> dict[str, str]:
    """Map each imported local alias to its absolute dotted target."""
    imports: dict[str, str] = {}
    # The containing package: a package __init__ *is* its package, a
    # plain module lives one level below its package.
    package_parts = modname.split(".")
    if not is_package:
        package_parts = package_parts[:-1]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = package_parts[: len(package_parts) - (node.level - 1)]
                head = ".".join(
                    p for p in (".".join(base), node.module or "") if p
                )
            else:
                head = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue  # star imports defeat static resolution
                local = alias.asname or alias.name
                imports[local] = f"{head}.{alias.name}" if head else alias.name
    return imports


def _index_functions(
    module: ModuleInfo,
) -> None:
    """Populate ``functions``/``classes`` with qualified names."""

    def visit(node: ast.AST, prefix: str, class_name: str | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                info = FunctionInfo(
                    qualname=qual,
                    relpath=module.relpath,
                    node=child,
                    is_async=isinstance(child, ast.AsyncFunctionDef),
                    class_name=class_name,
                )
                module.functions[qual] = info
                if class_name is not None and prefix.count(".") == 1:
                    module.classes[class_name].methods[child.name] = info
                visit(child, f"{qual}.<locals>.", class_name)
            elif isinstance(child, ast.ClassDef):
                if prefix == "":
                    bases = [
                        dotted
                        for base in child.bases
                        if (dotted := _dotted(base)) is not None
                    ]
                    module.classes[child.name] = ClassInfo(
                        name=child.name,
                        relpath=module.relpath,
                        node=child,
                        bases=bases,
                    )
                    visit(child, f"{child.name}.", child.name)
                else:
                    visit(child, f"{prefix}{child.name}.", class_name)

    visit(module.tree, "", None)


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Project:
    """The resolved collection of modules under analysis."""

    def __init__(self, modules: dict[str, ModuleInfo]):
        #: relpath → module, in sorted order for determinism.
        self.modules: dict[str, ModuleInfo] = dict(
            sorted(modules.items())
        )
        self.by_modname: dict[str, str] = {
            m.modname: m.relpath for m in self.modules.values()
        }
        self._import_graph: dict[str, set[str]] | None = None
        self._callgraph = None  # built lazily by .callgraph

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------

    def module_for(self, dotted: str) -> tuple[ModuleInfo | None, str]:
        """Longest-prefix match of a dotted name against project modules.

        Returns ``(module, rest)`` where ``rest`` is the unmatched
        dotted suffix (empty when the name *is* the module).
        """
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            relpath = self.by_modname.get(prefix)
            if relpath is not None:
                return self.modules[relpath], ".".join(parts[cut:])
        return None, dotted

    def resolve(
        self, module: ModuleInfo, dotted: str, _seen: frozenset | None = None
    ) -> Resolution:
        """Resolve a dotted name as written inside ``module``.

        Deterministic and cycle-safe: re-export chains are followed
        with a visited set, and unresolvable names collapse to an
        ``external`` resolution carrying the canonical dotted target.
        """
        seen = _seen or frozenset()
        key = (module.relpath, dotted)
        if key in seen:
            return Resolution("external", dotted)
        seen = seen | {key}
        head, _, rest = dotted.partition(".")
        # 1. a symbol defined in this module
        if head in module.classes:
            cls = module.classes[head]
            if not rest:
                return Resolution("class", cls)
            if "." not in rest:
                method = self.method_of(cls, rest)
                if method is not None:
                    return Resolution("function", method)
            return Resolution("class", cls, attr=rest)
        if head in module.functions and "." not in head:
            func = module.functions[head]
            if not rest:
                return Resolution("function", func)
            return Resolution("external", dotted)
        # 2. an imported name
        if head in module.imports:
            target = module.imports[head]
            full = f"{target}.{rest}" if rest else target
            return self._resolve_global(full, seen)
        # 3. a module-level alias assignment (X = Y re-export)
        if head in module.assigns:
            value = module.assigns[head]
            alias = _dotted(value)
            if alias is not None and alias != head:
                full = f"{alias}.{rest}" if rest else alias
                return self.resolve(module, full, seen)
            if not rest:
                return Resolution("const", (module, head))
        return Resolution("external", dotted)

    def _resolve_global(self, dotted: str, seen: frozenset) -> Resolution:
        target_module, rest = self.module_for(dotted)
        if target_module is None:
            return Resolution("external", dotted)
        if not rest:
            return Resolution("module", target_module)
        return self.resolve(target_module, rest, seen)

    # ------------------------------------------------------------------
    # Class hierarchy
    # ------------------------------------------------------------------

    def bases_of(self, cls: ClassInfo) -> list[ClassInfo]:
        """Project-resolvable base classes, left to right."""
        module = self.modules[cls.relpath]
        out: list[ClassInfo] = []
        for base in cls.bases:
            res = self.resolve(module, base)
            if res.kind == "class" and res.attr is None:
                out.append(res.target)  # type: ignore[arg-type]
        return out

    def method_of(
        self, cls: ClassInfo, name: str, _seen: frozenset | None = None
    ) -> FunctionInfo | None:
        """Method lookup through the hierarchy (DFS, left-to-right).

        Deterministic under diamond inheritance (the leftmost path
        wins) and cycle-safe (a class is visited at most once).
        """
        seen = _seen or frozenset()
        if cls.uid in seen:
            return None
        seen = seen | {cls.uid}
        if name in cls.methods:
            return cls.methods[name]
        for base in self.bases_of(cls):
            found = self.method_of(base, name, seen)
            if found is not None:
                return found
        return None

    def methods_named(self, name: str) -> list[FunctionInfo]:
        """Every project method with this name, in deterministic order.

        The conservative dynamic-dispatch fallback: when a receiver's
        class cannot be inferred, a call ``x.frob()`` may target any of
        these.
        """
        out = []
        for module in self.modules.values():
            for cls in sorted(module.classes.values(), key=lambda c: c.name):
                if name in cls.methods:
                    out.append(cls.methods[name])
        return out

    # ------------------------------------------------------------------
    # Import graph (project-internal edges only)
    # ------------------------------------------------------------------

    @property
    def import_graph(self) -> dict[str, set[str]]:
        """relpath → relpaths of project modules it imports from."""
        if self._import_graph is None:
            graph: dict[str, set[str]] = {}
            for relpath, module in self.modules.items():
                deps: set[str] = set()
                for target in module.imports.values():
                    dep, _rest = self.module_for(target)
                    if dep is not None and dep.relpath != relpath:
                        deps.add(dep.relpath)
                graph[relpath] = deps
            self._import_graph = graph
        return self._import_graph

    def import_closure(self, relpath: str) -> set[str]:
        """Transitive project-internal import closure, including self."""
        graph = self.import_graph
        closure: set[str] = set()
        stack = [relpath]
        while stack:
            current = stack.pop()
            if current in closure:
                continue
            closure.add(current)
            stack.extend(graph.get(current, ()))
        return closure

    def dependents_closure(self, relpaths: Iterable[str]) -> set[str]:
        """Every module whose import closure intersects ``relpaths``.

        The ``--changed`` selector: a diff in file F invalidates F and
        everything that (transitively) resolves symbols from F.
        """
        targets = set(relpaths)
        return {
            relpath
            for relpath in self.modules
            if self.import_closure(relpath) & targets
        }

    # ------------------------------------------------------------------
    # Call graph (built on demand; see callgraph.py)
    # ------------------------------------------------------------------

    @property
    def callgraph(self):
        if self._callgraph is None:
            from repro.lint.project.callgraph import build_callgraph

            self._callgraph = build_callgraph(self)
        return self._callgraph


def _build_module(relpath: str, source: str, package: str) -> ModuleInfo | None:
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return None  # reported by the engine as RL000; excluded here
    modname = _modname(relpath, package)
    module = ModuleInfo(
        relpath=relpath, modname=modname, source=source, tree=tree
    )
    is_package = relpath.endswith("__init__.py") or relpath == "__init__.py"
    module.imports = _collect_imports(tree, modname, is_package)
    _index_functions(module)
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                module.assigns[target.id] = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                module.assigns[stmt.target.id] = stmt.value
    return module


def build_project_from_sources(
    sources: dict[str, str], *, package: str = "repro"
) -> Project:
    """Build a project from in-memory ``{relpath: source}`` (tests)."""
    modules: dict[str, ModuleInfo] = {}
    for relpath in sorted(sources):
        module = _build_module(relpath, sources[relpath], package)
        if module is not None:
            modules[relpath] = module
    return Project(modules)


def build_project(
    files: Iterable[Path], *, package: str = "repro"
) -> Project:
    """Parse files into a :class:`Project` (non-parsing files skipped)."""
    from repro.lint.engine import module_relpath

    modules: dict[str, ModuleInfo] = {}
    for path in sorted(Path(p) for p in files):
        relpath = module_relpath(path)
        source = path.read_text(encoding="utf-8")
        module = _build_module(relpath, source, package)
        if module is not None:
            modules[relpath] = module
    return Project(modules)

"""``replint`` — the repo's own AST-based invariant checker.

The energy-roofline model's correctness rests on invariants no type
checker can see:

* strict-SI internal units spanning ~15 orders of magnitude (pJ vs J,
  GB/s vs B/s — the classic failure mode of analytic energy models);
* bit-identical scalar/``*_batch`` API pairs across :mod:`repro.core`;
* a reproducibility contract — seeded RNG streams, no wall-clock reads
  in model paths — that one stray ``random()`` silently breaks;
* asyncio discipline in :mod:`repro.service` (no blocking calls in
  coroutines, no ``await`` under a synchronous lock);
* whole-program flow invariants (``repro lint --project``): blocking
  reachability through call chains, resource release on all paths,
  wire-protocol conformance, lock-order consistency — see
  :mod:`repro.lint.project`.

``replint`` checks these mechanically.  It is self-contained — driven
by :mod:`ast` from the standard library, no third-party lint framework
— and ships as the ``repro lint`` CLI verb.  Findings are suppressed
inline with ``# replint: ignore[RL001] -- reason`` comments; a
suppression without a reason is itself a finding (RL000).

See ``docs/LINT.md`` for the rule catalogue and extension guide.
"""

from __future__ import annotations

from repro.lint.engine import (
    FileContext,
    FileResult,
    Finding,
    LintReport,
    Suppression,
    analyze_source,
    iter_python_files,
    module_relpath,
    parse_suppressions,
    run_lint,
)
from repro.lint.project.engine import run_project_lint
from repro.lint.registry import (
    LintRule,
    ProjectRule,
    all_rules,
    register,
    resolve_rules,
)
from repro.lint.report import render_json, render_sarif, render_text

__all__ = [
    "FileContext",
    "FileResult",
    "Finding",
    "LintReport",
    "LintRule",
    "ProjectRule",
    "Suppression",
    "all_rules",
    "analyze_source",
    "iter_python_files",
    "module_relpath",
    "parse_suppressions",
    "register",
    "render_json",
    "render_sarif",
    "render_text",
    "resolve_rules",
    "run_lint",
    "run_project_lint",
]

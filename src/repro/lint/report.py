"""Render a :class:`~repro.lint.engine.LintReport` as text or JSON.

The JSON schema is versioned and stable — the CI step and the CLI
tests consume it::

    {
      "version": 1,
      "files_checked": 104,
      "rules": ["RL001", ...],
      "findings": [{"rule", "path", "line", "col", "message"}, ...],
      "suppressed": [{"rule", ..., "reason"}, ...],
      "summary": {"findings": 0, "suppressed": 7, "clean": true}
    }
"""

from __future__ import annotations

import json
from dataclasses import asdict

from repro.lint.engine import LintReport

__all__ = [
    "render_json",
    "render_sarif",
    "render_text",
    "JSON_SCHEMA_VERSION",
]

JSON_SCHEMA_VERSION = 1

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(report: LintReport, *, verbose: bool = False) -> str:
    """Human-oriented report: one line per finding plus a summary."""
    lines = [finding.render() for finding in report.findings]
    if verbose and report.suppressed:
        lines.append("")
        lines.append("documented exceptions:")
        for finding, reason in report.suppressed:
            lines.append(f"  {finding.render()}  [suppressed: {reason}]")
    noun = "finding" if len(report.findings) == 1 else "findings"
    lines.append(
        f"replint: {len(report.findings)} {noun}, "
        f"{len(report.suppressed)} suppressed, "
        f"{report.files_checked} files checked "
        f"({', '.join(report.rule_ids)})"
    )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-oriented report (see module docstring for the schema)."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": report.files_checked,
        "rules": report.rule_ids,
        "findings": [asdict(f) for f in report.findings],
        "suppressed": [
            {**asdict(f), "reason": reason} for f, reason in report.suppressed
        ],
        "summary": {
            "findings": len(report.findings),
            "suppressed": len(report.suppressed),
            "clean": report.clean,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(
    report: LintReport, *, uri_prefix: str = "src/repro/"
) -> str:
    """SARIF 2.1.0 report, for GitHub code-scanning upload.

    Finding paths are package-relative (``service/workers.py``); the
    ``uri_prefix`` maps them back to repository-relative URIs so the
    annotations land on the right files in a PR.  Suppressed findings
    are emitted with a SARIF ``suppressions`` entry rather than
    dropped — code scanning then shows them as reviewed, matching the
    in-tree ``replint: ignore`` semantics.
    """
    from repro.lint.registry import all_rules

    registry = all_rules()
    rules_meta = [
        {
            "id": rid,
            "name": registry[rid].title if rid in registry else rid,
            "shortDescription": {
                "text": registry[rid].title if rid in registry else rid
            },
        }
        for rid in report.rule_ids
    ]

    def result(finding, suppression_reason=None):
        entry = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f"{uri_prefix}{finding.path}"
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if suppression_reason is not None:
            entry["suppressions"] = [
                {
                    "kind": "inSource",
                    "justification": suppression_reason,
                }
            ]
        return entry

    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "replint",
                        "rules": rules_meta,
                    }
                },
                "results": [
                    *[result(f) for f in report.findings],
                    *[
                        result(f, reason or "suppressed in source")
                        for f, reason in report.suppressed
                    ],
                ],
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)

"""Render a :class:`~repro.lint.engine.LintReport` as text or JSON.

The JSON schema is versioned and stable — the CI step and the CLI
tests consume it::

    {
      "version": 1,
      "files_checked": 104,
      "rules": ["RL001", ...],
      "findings": [{"rule", "path", "line", "col", "message"}, ...],
      "suppressed": [{"rule", ..., "reason"}, ...],
      "summary": {"findings": 0, "suppressed": 7, "clean": true}
    }
"""

from __future__ import annotations

import json
from dataclasses import asdict

from repro.lint.engine import LintReport

__all__ = ["render_json", "render_text", "JSON_SCHEMA_VERSION"]

JSON_SCHEMA_VERSION = 1


def render_text(report: LintReport, *, verbose: bool = False) -> str:
    """Human-oriented report: one line per finding plus a summary."""
    lines = [finding.render() for finding in report.findings]
    if verbose and report.suppressed:
        lines.append("")
        lines.append("documented exceptions:")
        for finding, reason in report.suppressed:
            lines.append(f"  {finding.render()}  [suppressed: {reason}]")
    noun = "finding" if len(report.findings) == 1 else "findings"
    lines.append(
        f"replint: {len(report.findings)} {noun}, "
        f"{len(report.suppressed)} suppressed, "
        f"{report.files_checked} files checked "
        f"({', '.join(report.rule_ids)})"
    )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-oriented report (see module docstring for the schema)."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": report.files_checked,
        "rules": report.rule_ids,
        "findings": [asdict(f) for f in report.findings],
        "suppressed": [
            {**asdict(f), "reason": reason} for f, reason in report.suppressed
        ],
        "summary": {
            "findings": len(report.findings),
            "suppressed": len(report.suppressed),
            "clean": report.clean,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)

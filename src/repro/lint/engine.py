"""The replint engine: file discovery, suppressions, parallel analysis.

The pipeline per file is parse → run each applicable rule over the AST
→ partition findings into *active* and *suppressed* using
``# replint: ignore[RLnnn] -- reason`` comments.  Across files the
engine fans out over a process pool (``jobs``) and optionally memoises
per-file results in a content-addressed cache directory, so a CI
invocation on an unchanged tree is pure cache hits.

Suppression syntax
------------------
``# replint: ignore[RL001] -- reason text`` silences RL001 findings on
its own physical line; a *standalone* suppression (the comment is the
whole line) also covers the following line, for statements too long to
carry a trailing comment.  Several ids may be listed
(``ignore[RL001,RL005]``).  The reason is mandatory: a suppression
without ``-- reason`` is reported as RL000, so every deliberate
exception in the tree documents itself.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.lint.registry import LintRule

__all__ = [
    "FileContext",
    "FileResult",
    "Finding",
    "LintReport",
    "Suppression",
    "analyze_source",
    "iter_python_files",
    "module_relpath",
    "parse_suppressions",
    "run_lint",
]

#: Bumped whenever rule semantics change, to invalidate result caches.
LINT_VERSION = "1"

#: Meta-rule id for suppression hygiene (missing reason, malformed
#: comment).  RL000 findings are themselves unsuppressible.
META_RULE = "RL000"

_SUPPRESS = re.compile(
    r"#\s*replint:\s*ignore\[(?P<rules>[A-Za-z0-9,\s]*)\]"
    r"(?:\s*--\s*(?P<reason>.*\S))?"
)
_MALFORMED = re.compile(r"#\s*replint\b")


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True, slots=True)
class Suppression:
    """One parsed ``replint: ignore[...]`` suppression comment."""

    line: int
    rules: frozenset[str]
    reason: str | None
    standalone: bool

    def covers(self, finding: Finding) -> bool:
        if finding.rule == META_RULE:
            return False
        if finding.rule not in self.rules:
            return False
        if finding.line == self.line:
            return True
        return self.standalone and finding.line == self.line + 1


@dataclass(slots=True)
class FileContext:
    """Everything a rule needs about one source file."""

    relpath: str
    source: str
    lines: list[str]
    tree: ast.Module


@dataclass(slots=True)
class FileResult:
    """Per-file outcome: active findings plus documented exceptions."""

    relpath: str
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[tuple[Finding, str]] = field(default_factory=list)

    def to_payload(self) -> dict:
        return {
            "relpath": self.relpath,
            "findings": [asdict(f) for f in self.findings],
            "suppressed": [
                {"finding": asdict(f), "reason": reason}
                for f, reason in self.suppressed
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "FileResult":
        return cls(
            relpath=payload["relpath"],
            findings=[Finding(**f) for f in payload["findings"]],
            suppressed=[
                (Finding(**item["finding"]), item["reason"])
                for item in payload["suppressed"]
            ],
        )


@dataclass(slots=True)
class LintReport:
    """Aggregated result of one lint run."""

    findings: list[Finding]
    suppressed: list[tuple[Finding, str]]
    files_checked: int
    rule_ids: list[str]

    @property
    def clean(self) -> bool:
        return not self.findings


def parse_suppressions(source: str) -> tuple[list[Suppression], list[Finding]]:
    """Extract suppression comments; malformed ones become RL000 findings.

    Returns ``(suppressions, meta_findings)``.  ``meta_findings`` cover
    a missing ``-- reason`` and comments that mention ``replint`` but do
    not parse — both must be fixed, not ignored.
    """
    suppressions: list[Suppression] = []
    meta: list[Finding] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS.search(text)
        if match is None:
            if _MALFORMED.search(text):
                meta.append(
                    Finding(
                        rule=META_RULE,
                        path="",
                        line=lineno,
                        col=text.index("#"),
                        message=(
                            "malformed replint comment; use "
                            "'# replint: ignore[RLnnn] -- reason'"
                        ),
                    )
                )
            continue
        rules = frozenset(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        reason = match.group("reason")
        standalone = text[: match.start()].strip() == ""
        if not rules:
            meta.append(
                Finding(
                    rule=META_RULE,
                    path="",
                    line=lineno,
                    col=match.start(),
                    message="suppression lists no rule ids",
                )
            )
            continue
        if not reason:
            meta.append(
                Finding(
                    rule=META_RULE,
                    path="",
                    line=lineno,
                    col=match.start(),
                    message=(
                        f"suppression of {', '.join(sorted(rules))} has no "
                        "reason; append '-- why this exception is deliberate'"
                    ),
                )
            )
            continue
        suppressions.append(
            Suppression(
                line=lineno, rules=rules, reason=reason, standalone=standalone
            )
        )
    return suppressions, meta


def module_relpath(path: Path) -> str:
    """Path relative to the ``repro`` package root, for rule scoping.

    ``.../src/repro/core/time_model.py`` → ``core/time_model.py``.
    Files outside a ``repro`` directory fall back to their file name,
    so fixtures and scratch files still lint (with whole-tree rules
    only).
    """
    parts = path.resolve().parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            rel = parts[index + 1 :]
            if rel:
                return "/".join(rel)
    return path.name


def analyze_source(
    source: str,
    relpath: str,
    rules: Sequence["LintRule"] | None = None,
) -> FileResult:
    """Run the rule set over one in-memory source file.

    This is the unit of work the per-file cache and the process pool
    wrap — and the hook the fixture tests use directly.
    """
    if rules is None:
        from repro.lint.registry import all_rules, file_rules

        rules = list(file_rules(all_rules()).values())
    result = FileResult(relpath=relpath)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        result.findings.append(
            Finding(
                rule=META_RULE,
                path=relpath,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"file does not parse: {exc.msg}",
            )
        )
        return result
    ctx = FileContext(
        relpath=relpath,
        source=source,
        lines=source.splitlines(),
        tree=tree,
    )
    raw: list[Finding] = []
    for rule in rules:
        if not rule.applies(relpath):
            continue
        raw.extend(rule.check(ctx))
    suppressions, meta = parse_suppressions(source)
    for finding in meta:
        result.findings.append(
            Finding(
                rule=finding.rule,
                path=relpath,
                line=finding.line,
                col=finding.col,
                message=finding.message,
            )
        )
    for finding in raw:
        covering = next(
            (s for s in suppressions if s.covers(finding)), None
        )
        if covering is not None:
            result.suppressed.append((finding, covering.reason or ""))
        else:
            result.findings.append(finding)
    result.findings.sort(key=lambda f: (f.line, f.col, f.rule))
    result.suppressed.sort(key=lambda item: (item[0].line, item[0].rule))
    return result


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories to a sorted, deduplicated ``.py`` list."""
    seen: set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            seen.update(p for p in path.rglob("*.py"))
        elif path.suffix == ".py":
            seen.add(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return sorted(p.resolve() for p in seen)


def _cache_key(source: str, rule_ids: Sequence[str]) -> str:
    digest = hashlib.sha256()
    digest.update(LINT_VERSION.encode())
    digest.update(",".join(rule_ids).encode())
    digest.update(b"\x00")
    digest.update(source.encode("utf-8", errors="replace"))
    return digest.hexdigest()


def _analyze_path(
    path_str: str, rule_ids: Sequence[str], cache_dir: str | None
) -> dict:
    """Process-pool worker: lint one file, via the cache when possible."""
    path = Path(path_str)
    source = path.read_text(encoding="utf-8")
    cache_file = None
    if cache_dir is not None:
        key = _cache_key(source, rule_ids)
        cache_file = Path(cache_dir) / f"{key}.json"
        if cache_file.is_file():
            try:
                return json.loads(cache_file.read_text())
            except (json.JSONDecodeError, KeyError, OSError):
                pass  # stale or torn cache entry; re-analyze
    from repro.lint.registry import all_rules

    registry = all_rules()
    rules = [registry[rid] for rid in rule_ids]
    result = analyze_source(source, module_relpath(path), rules)
    payload = result.to_payload()
    if cache_file is not None:
        cache_file.parent.mkdir(parents=True, exist_ok=True)
        tmp = cache_file.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        tmp.replace(cache_file)
    return payload


def run_lint(
    paths: Iterable[Path],
    *,
    rules: str | Iterable[str] | None = None,
    jobs: int = 1,
    cache_dir: Path | None = None,
) -> LintReport:
    """Lint every python file under ``paths`` with the selected
    file-scope rules (project-scope rules run via
    :func:`repro.lint.project.run_project_lint`)."""
    from repro.lint.registry import file_rules, resolve_rules

    selected = file_rules(resolve_rules(rules))
    rule_ids = list(selected)
    files = iter_python_files(paths)
    cache_str = str(cache_dir) if cache_dir is not None else None
    payloads: list[dict]
    if jobs > 1 and len(files) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            payloads = list(
                pool.map(
                    _analyze_path,
                    [str(p) for p in files],
                    [rule_ids] * len(files),
                    [cache_str] * len(files),
                )
            )
    else:
        payloads = [
            _analyze_path(str(p), rule_ids, cache_str) for p in files
        ]
    findings: list[Finding] = []
    suppressed: list[tuple[Finding, str]] = []
    for payload in payloads:
        result = FileResult.from_payload(payload)
        findings.extend(result.findings)
        suppressed.extend(result.suppressed)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    suppressed.sort(key=lambda item: (item[0].path, item[0].line, item[0].rule))
    return LintReport(
        findings=findings,
        suppressed=suppressed,
        files_checked=len(files),
        rule_ids=rule_ids,
    )

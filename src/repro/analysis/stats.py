"""Error metrics used to judge model estimates against measurements.

§V-C's headline numbers are relative-error statistics: the naive eq. (2)
estimator is "lower by 33% on average"; the cache-corrected estimator has
"a median error of 4.1%".  These helpers compute exactly those quantities,
plus a fuller :class:`ErrorSummary` for reports and ablations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ParameterError

__all__ = [
    "relative_errors",
    "signed_relative_errors",
    "mean_relative_error",
    "median_relative_error",
    "mean_signed_error",
    "ErrorSummary",
    "summarize_errors",
]


def _validate(estimated: np.ndarray, measured: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    est = np.asarray(estimated, dtype=float)
    mea = np.asarray(measured, dtype=float)
    if est.shape != mea.shape or est.ndim != 1:
        raise ParameterError(
            f"estimated {est.shape} and measured {mea.shape} must be equal-length 1-D"
        )
    if est.size == 0:
        raise ParameterError("need at least one observation")
    if np.any(mea <= 0):
        raise ParameterError("measured values must be positive")
    return est, mea


def signed_relative_errors(estimated: np.ndarray, measured: np.ndarray) -> np.ndarray:
    """``(estimated − measured) / measured`` per observation.

    Negative values mean the estimate is low — the direction of the
    paper's 33% underestimate.
    """
    est, mea = _validate(estimated, measured)
    return (est - mea) / mea


def relative_errors(estimated: np.ndarray, measured: np.ndarray) -> np.ndarray:
    """Absolute relative errors ``|estimated − measured| / measured``."""
    return np.abs(signed_relative_errors(estimated, measured))


def mean_relative_error(estimated: np.ndarray, measured: np.ndarray) -> float:
    """Mean of the absolute relative errors."""
    return float(np.mean(relative_errors(estimated, measured)))


def median_relative_error(estimated: np.ndarray, measured: np.ndarray) -> float:
    """Median of the absolute relative errors (§V-C's 4.1% metric)."""
    return float(np.median(relative_errors(estimated, measured)))


def mean_signed_error(estimated: np.ndarray, measured: np.ndarray) -> float:
    """Mean signed relative error (§V-C's −33% metric)."""
    return float(np.mean(signed_relative_errors(estimated, measured)))


@dataclass(frozen=True, slots=True)
class ErrorSummary:
    """Distributional summary of estimate-vs-measurement errors."""

    n: int
    mean_signed: float
    mean_abs: float
    median_abs: float
    p90_abs: float
    max_abs: float

    def describe(self) -> str:
        return (
            f"n={self.n}: signed mean {self.mean_signed:+.1%}, "
            f"abs mean {self.mean_abs:.1%}, median {self.median_abs:.1%}, "
            f"p90 {self.p90_abs:.1%}, max {self.max_abs:.1%}"
        )


def summarize_errors(estimated: np.ndarray, measured: np.ndarray) -> ErrorSummary:
    """Build an :class:`ErrorSummary` from parallel estimate/measurement arrays."""
    signed = signed_relative_errors(estimated, measured)
    abs_err = np.abs(signed)
    return ErrorSummary(
        n=int(abs_err.size),
        mean_signed=float(np.mean(signed)),
        mean_abs=float(np.mean(abs_err)),
        median_abs=float(np.median(abs_err)),
        p90_abs=float(np.percentile(abs_err, 90)),
        max_abs=float(np.max(abs_err)),
    )

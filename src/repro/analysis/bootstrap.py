"""Bootstrap confidence intervals for fitted energy coefficients.

The paper reports point estimates (Table IV) with footnote-level fit
quality.  For a production tool, users characterising *their* machine
want uncertainty on each coefficient: resample the measured runs with
replacement, refit eq. (9) on each resample, and read percentile
intervals off the resulting coefficient distributions (the
case-resampling bootstrap — appropriate here because whole runs, not
residuals, are the independent units).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.exceptions import FittingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.fitting import EnergySample

__all__ = ["CoefficientInterval", "BootstrapResult", "bootstrap_fit"]


@dataclass(frozen=True, slots=True)
class CoefficientInterval:
    """A point estimate with a percentile confidence interval."""

    name: str
    estimate: float
    low: float
    high: float
    level: float

    @property
    def width(self) -> float:
        """Interval width (same units as the estimate)."""
        return self.high - self.low

    @property
    def relative_width(self) -> float:
        """Width over the estimate's magnitude — the precision figure."""
        if self.estimate == 0:
            return float("inf")
        return self.width / abs(self.estimate)

    def contains(self, value: float) -> bool:
        """Whether a value falls in the interval."""
        return self.low <= value <= self.high

    def describe(self) -> str:
        return (
            f"{self.name}: {self.estimate:.4g} "
            f"[{self.low:.4g}, {self.high:.4g}] @ {self.level:.0%}"
        )


@dataclass(frozen=True)
class BootstrapResult:
    """Intervals for every eq. (9) coefficient."""

    eps_single: CoefficientInterval
    eps_double: CoefficientInterval | None
    eps_mem: CoefficientInterval
    pi0: CoefficientInterval
    replicates: int

    def describe(self) -> str:
        lines = [f"bootstrap fit ({self.replicates} replicates):"]
        for interval in (self.eps_single, self.eps_double, self.eps_mem, self.pi0):
            if interval is not None:
                lines.append("  " + interval.describe())
        return "\n".join(lines)


def bootstrap_fit(
    samples: Sequence[EnergySample],
    *,
    replicates: int = 200,
    level: float = 0.95,
    seed: int = 0,
) -> BootstrapResult:
    """Case-resampling bootstrap of :func:`fit_energy_coefficients`.

    Resamples that happen to be degenerate (all one intensity →
    collinear design) are redrawn; a pathological sample set that cannot
    produce ``replicates`` valid fits raises :class:`FittingError`.
    """
    # Imported here: repro.core.fitting itself uses repro.analysis, so a
    # module-level import would be circular.
    from repro.core.fitting import fit_energy_coefficients

    if replicates < 10:
        raise FittingError("need at least 10 bootstrap replicates")
    if not 0.5 < level < 1.0:
        raise FittingError("confidence level must be in (0.5, 1)")
    point = fit_energy_coefficients(list(samples))
    rng = np.random.default_rng(seed)
    n = len(samples)

    draws: dict[str, list[float]] = {
        "eps_single": [], "eps_double": [], "eps_mem": [], "pi0": []
    }
    attempts = 0
    collected = 0
    while collected < replicates:
        attempts += 1
        if attempts > replicates * 10:
            raise FittingError(
                "bootstrap could not collect enough valid resamples; "
                "the sample set is too degenerate"
            )
        idx = rng.integers(0, n, size=n)
        resample = [samples[i] for i in idx]
        try:
            fit = fit_energy_coefficients(resample)
        except FittingError:
            continue
        if (point.eps_double is None) != (fit.eps_double is None):
            continue  # resample lost one precision class entirely
        draws["eps_single"].append(fit.eps_single)
        if fit.eps_double is not None:
            draws["eps_double"].append(fit.eps_double)
        draws["eps_mem"].append(fit.eps_mem)
        draws["pi0"].append(fit.pi0)
        collected += 1

    alpha = (1.0 - level) / 2.0

    def interval(name: str, estimate: float) -> CoefficientInterval:
        values = np.asarray(draws[name])
        return CoefficientInterval(
            name=name,
            estimate=estimate,
            low=float(np.quantile(values, alpha)),
            high=float(np.quantile(values, 1.0 - alpha)),
            level=level,
        )

    return BootstrapResult(
        eps_single=interval("eps_single", point.eps_single),
        eps_double=(
            interval("eps_double", point.eps_double)
            if point.eps_double is not None
            else None
        ),
        eps_mem=interval("eps_mem", point.eps_mem),
        pi0=interval("pi0", point.pi0),
        replicates=replicates,
    )

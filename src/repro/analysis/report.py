"""Report rendering: aligned text and Markdown tables.

Small, dependency-free table builders used by the CLI, the experiments,
and EXPERIMENTS.md-style outputs.  Cells are strings; numeric alignment
is the caller's choice of formatter (the :func:`fmt` helpers cover the
common cases used across the reproduction).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.exceptions import ParameterError

__all__ = ["text_table", "markdown_table", "fmt_si_time", "fmt_pct", "fmt_num"]


def _normalise(
    header: Sequence[str], rows: Iterable[Sequence[str]]
) -> tuple[list[str], list[list[str]]]:
    head = [str(h) for h in header]
    body = [[str(c) for c in row] for row in rows]
    if not head:
        raise ParameterError("table needs at least one column")
    for row in body:
        if len(row) != len(head):
            raise ParameterError(
                f"row has {len(row)} cells for {len(head)} columns: {row}"
            )
    return head, body


def text_table(header: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """Fixed-width aligned table with a rule under the header."""
    head, body = _normalise(header, rows)
    widths = [
        max(len(head[i]), *(len(r[i]) for r in body)) if body else len(head[i])
        for i in range(len(head))
    ]
    def line(cells: Sequence[str]) -> str:
        return "  ".join(f"{c:<{w}}" for c, w in zip(cells, widths)).rstrip()

    out = [line(head), line(["-" * w for w in widths])]
    out.extend(line(r) for r in body)
    return "\n".join(out)


def markdown_table(header: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """GitHub-flavoured Markdown table."""
    head, body = _normalise(header, rows)
    out = [
        "| " + " | ".join(head) + " |",
        "|" + "|".join("---" for _ in head) + "|",
    ]
    out.extend("| " + " | ".join(r) + " |" for r in body)
    return "\n".join(out)


def fmt_si_time(seconds: float) -> str:
    """Human-scale time: '12.3 ms', '4.56 s', '980 us'."""
    if seconds < 0:
        raise ParameterError("time must be non-negative")
    for scale, suffix in ((1.0, "s"), (1e-3, "ms"), (1e-6, "us"), (1e-9, "ns")):
        if seconds >= scale:
            return f"{seconds / scale:.3g} {suffix}"
    return f"{seconds:.3g} s"


def fmt_pct(fraction: float, *, signed: bool = False) -> str:
    """A fraction as a percentage string ('4.1%' or '+2.0%')."""
    sign = "+" if signed and fraction >= 0 else ""
    return f"{sign}{fraction * 100:.1f}%"


def fmt_num(value: float, *, digits: int = 4) -> str:
    """General-purpose significant-figure formatting."""
    return f"{value:.{digits}g}"

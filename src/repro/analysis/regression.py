"""Ordinary least squares with the inference statistics the paper reports.

The paper fits eq. (9) "using the standard regression routine in R" and
reports (footnote 8) R² near unity at p-values below 1e-14.  This module
provides an equivalent: OLS via :func:`numpy.linalg.lstsq` plus standard
errors, t statistics, two-sided p-values (Student's t via
:func:`scipy.stats`), and R².
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as _scipy_stats

from repro.exceptions import FittingError

__all__ = ["OLSResult", "ols"]


@dataclass(frozen=True)
class OLSResult:
    """Result of an ordinary-least-squares fit ``y ≈ X @ beta``.

    Attributes
    ----------
    coefficients:
        Fitted ``beta`` (length = number of regressors).
    std_errors:
        Standard error of each coefficient.
    t_values, p_values:
        Per-coefficient t statistics and two-sided p-values under the
        usual normal-errors assumptions.
    r_squared, adjusted_r_squared:
        Goodness of fit.
    residuals:
        ``y − X @ beta``.
    dof:
        Residual degrees of freedom (n − k).
    names:
        Regressor labels, parallel to ``coefficients``.
    """

    coefficients: np.ndarray
    std_errors: np.ndarray
    t_values: np.ndarray
    p_values: np.ndarray
    r_squared: float
    adjusted_r_squared: float
    residuals: np.ndarray
    dof: int
    names: tuple[str, ...]

    def coefficient(self, name: str) -> float:
        """Look up a coefficient by regressor name."""
        try:
            idx = self.names.index(name)
        except ValueError as exc:
            raise KeyError(f"no regressor named {name!r}; have {self.names}") from exc
        return float(self.coefficients[idx])

    def p_value(self, name: str) -> float:
        """Look up a p-value by regressor name."""
        idx = self.names.index(name)
        return float(self.p_values[idx])

    def summary(self) -> str:
        """R-style text summary of the fit."""
        lines = [
            f"OLS fit: n={len(self.residuals)}, k={len(self.coefficients)}, "
            f"R^2={self.r_squared:.6f} (adj {self.adjusted_r_squared:.6f})",
            f"{'regressor':<16}{'coef':>14}{'stderr':>14}{'t':>10}{'p':>12}",
        ]
        for i, name in enumerate(self.names):
            lines.append(
                f"{name:<16}{self.coefficients[i]:>14.6g}{self.std_errors[i]:>14.3g}"
                f"{self.t_values[i]:>10.2f}{self.p_values[i]:>12.3g}"
            )
        return "\n".join(lines)


def ols(
    design: np.ndarray,
    response: np.ndarray,
    names: tuple[str, ...] | list[str] | None = None,
) -> OLSResult:
    """Fit ``response ≈ design @ beta`` by ordinary least squares.

    Parameters
    ----------
    design:
        ``(n, k)`` design matrix.  Include an explicit ones column for an
        intercept; no column is added implicitly.
    response:
        Length-``n`` observations.
    names:
        Optional regressor labels (defaults to ``x0..x{k-1}``).

    Raises
    ------
    FittingError
        If the design is rank-deficient or has too few rows (``n <= k``).
    """
    X = np.asarray(design, dtype=float)
    y = np.asarray(response, dtype=float)
    if X.ndim != 2:
        raise FittingError(f"design must be 2-D, got shape {X.shape}")
    n, k = X.shape
    if y.shape != (n,):
        raise FittingError(f"response shape {y.shape} does not match design rows {n}")
    if n <= k:
        raise FittingError(f"need more observations ({n}) than regressors ({k})")
    if not (np.all(np.isfinite(X)) and np.all(np.isfinite(y))):
        raise FittingError("design and response must be finite")

    beta, _, rank, _ = np.linalg.lstsq(X, y, rcond=None)
    if rank < k:
        raise FittingError(
            f"design matrix is rank-deficient (rank {rank} < {k}); "
            "regressors are collinear"
        )

    resolved_names = tuple(names) if names is not None else tuple(
        f"x{i}" for i in range(k)
    )
    if len(resolved_names) != k:
        raise FittingError(
            f"got {len(resolved_names)} names for {k} regressors"
        )

    residuals = y - X @ beta
    dof = n - k
    rss = float(residuals @ residuals)
    sigma2 = rss / dof if dof > 0 else float("nan")
    xtx_inv = np.linalg.inv(X.T @ X)
    std_errors = np.sqrt(np.maximum(np.diag(xtx_inv) * sigma2, 0.0))

    with np.errstate(divide="ignore", invalid="ignore"):
        t_values = np.where(std_errors > 0, beta / std_errors, np.inf * np.sign(beta))
    p_values = 2.0 * _scipy_stats.t.sf(np.abs(t_values), dof)

    tss = float(np.sum((y - y.mean()) ** 2))
    r_squared = 1.0 - rss / tss if tss > 0 else 1.0
    adj = 1.0 - (1.0 - r_squared) * (n - 1) / dof if dof > 0 else float("nan")

    return OLSResult(
        coefficients=beta,
        std_errors=std_errors,
        t_values=np.asarray(t_values, dtype=float),
        p_values=np.asarray(p_values, dtype=float),
        r_squared=r_squared,
        adjusted_r_squared=adj,
        residuals=residuals,
        dof=dof,
        names=resolved_names,
    )

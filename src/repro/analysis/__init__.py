"""Statistical analysis utilities: OLS regression, error metrics, reports.

These are the numerical tools behind the paper's §IV "model instantiation"
(fitting eq. 9 by linear regression, footnote 8's R² and p-value quality
checks) and §V-C's median-relative-error evaluation of the FMM estimator.
"""

from repro.analysis.bootstrap import BootstrapResult, CoefficientInterval, bootstrap_fit
from repro.analysis.regression import OLSResult, ols
from repro.analysis.report import fmt_num, fmt_pct, fmt_si_time, markdown_table, text_table
from repro.analysis.stats import (
    ErrorSummary,
    mean_relative_error,
    median_relative_error,
    relative_errors,
    summarize_errors,
)

__all__ = [
    "OLSResult",
    "ols",
    "BootstrapResult",
    "CoefficientInterval",
    "bootstrap_fit",
    "text_table",
    "markdown_table",
    "fmt_si_time",
    "fmt_pct",
    "fmt_num",
    "ErrorSummary",
    "relative_errors",
    "mean_relative_error",
    "median_relative_error",
    "summarize_errors",
]

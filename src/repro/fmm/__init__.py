"""Fast multipole method U-list phase — the paper's §V-C case study.

The FMM's U-list (near-field) phase dominates its cost: for every leaf
box of a spatial octree, all pairs of points between the leaf and its
geometric neighbours interact directly (Algorithm 1: 11 flops per pair,
counting the reciprocal square root as one flop).

This package implements the method for real — points, octree, U-list
construction, a vectorised interaction kernel, and a multipole far
field (:mod:`repro.fmm.farfield`) validated against the O(n²) direct
sum — plus the apparatus
of the paper's study: a ~390-strong implementation-variant space with
per-variant DRAM/L1/L2 traffic counters (our analogue of the Compute
Visual Profiler), and the energy-estimation workflow that discovers the
cache-energy term (:mod:`repro.fmm.estimator`).
"""

from repro.fmm.counters import TrafficCounters, count_traffic
from repro.fmm.estimator import FmmEnergyStudy, StudyResult, VariantObservation
from repro.fmm.farfield import (
    LeafMoments,
    barnes_hut_evaluate,
    compute_node_moments,
    translate_moments,
    compute_moments,
    direct_reference,
    evaluate_far_field,
    evaluate_full,
)
from repro.fmm.kernel import (
    evaluate_ulist,
    interact,
    interact_reference,
    FLOPS_PER_PAIR,
)
from repro.fmm.points import clustered_cloud, plummer_cloud, uniform_cloud
from repro.fmm.tree import Leaf, Node, Octree
from repro.fmm.ulist import build_ulist
from repro.fmm.variants import Variant, MemoryPath, generate_variants

__all__ = [
    "uniform_cloud",
    "clustered_cloud",
    "plummer_cloud",
    "Octree",
    "Leaf",
    "Node",
    "build_ulist",
    "interact",
    "interact_reference",
    "evaluate_ulist",
    "FLOPS_PER_PAIR",
    "TrafficCounters",
    "count_traffic",
    "Variant",
    "MemoryPath",
    "generate_variants",
    "FmmEnergyStudy",
    "StudyResult",
    "VariantObservation",
    "LeafMoments",
    "compute_moments",
    "compute_node_moments",
    "translate_moments",
    "barnes_hut_evaluate",
    "evaluate_far_field",
    "evaluate_full",
    "direct_reference",
]

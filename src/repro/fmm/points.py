"""Point-cloud generators for FMM experiments.

Three distributions with different tree shapes:

* :func:`uniform_cloud` — uniform in the unit cube; near-perfect octrees,
  every interior leaf has the full 27-neighbour U-list.
* :func:`clustered_cloud` — Gaussian blobs; adaptive trees with mixed
  leaf sizes, exercising the U-list's unequal-box adjacency logic.
* :func:`plummer_cloud` — the Plummer model standard in n-body work;
  strong central concentration, deep trees.

All generators return ``(positions, densities)`` with positions scaled
into the unit cube (the tree's root domain) and strictly positive
densities.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import TreeError

__all__ = ["uniform_cloud", "clustered_cloud", "plummer_cloud"]


def _finalize(
    positions: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Scale into the open unit cube and attach random densities."""
    lo = positions.min(axis=0)
    hi = positions.max(axis=0)
    span = np.where(hi - lo > 0, hi - lo, 1.0)
    scaled = (positions - lo) / span
    # Keep strictly inside [0, 1) so root-box membership is unambiguous.
    scaled = scaled * (1.0 - 1e-9)
    densities = rng.uniform(0.5, 1.5, size=len(positions))
    return scaled, densities


def _check_n(n: int) -> None:
    if n < 1:
        raise TreeError(f"need at least one point, got {n}")


def uniform_cloud(n: int, *, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """``n`` points uniform in the unit cube."""
    _check_n(n)
    rng = np.random.default_rng(seed)
    return _finalize(rng.random((n, 3)), rng)


def clustered_cloud(
    n: int, *, clusters: int = 8, spread: float = 0.05, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """``n`` points in Gaussian blobs around random centres."""
    _check_n(n)
    if clusters < 1:
        raise TreeError(f"need at least one cluster, got {clusters}")
    if spread <= 0:
        raise TreeError(f"spread must be positive, got {spread}")
    rng = np.random.default_rng(seed)
    centres = rng.random((clusters, 3))
    assignment = rng.integers(0, clusters, size=n)
    positions = centres[assignment] + rng.normal(0.0, spread, size=(n, 3))
    return _finalize(positions, rng)


def plummer_cloud(n: int, *, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """``n`` points from the Plummer sphere (centrally concentrated)."""
    _check_n(n)
    rng = np.random.default_rng(seed)
    # Inverse-CDF radius; clip the mass fraction away from 1 to keep the
    # occasional far outlier from flattening the core after rescaling.
    m = rng.uniform(0.0, 0.99, size=n)
    radius = (m ** (-2.0 / 3.0) - 1.0) ** -0.5
    phi = rng.uniform(0.0, 2.0 * np.pi, size=n)
    costheta = rng.uniform(-1.0, 1.0, size=n)
    sintheta = np.sqrt(1.0 - costheta**2)
    positions = np.column_stack(
        (
            radius * sintheta * np.cos(phi),
            radius * sintheta * np.sin(phi),
            radius * costheta,
        )
    )
    return _finalize(positions, rng)

"""U-list construction: each leaf's geometrically adjacent source leaves.

In the FMM, a target leaf ``B`` interacts directly with its *U-list*
``U(B)`` — the leaves whose boxes touch ``B``'s box (including ``B``
itself); everything farther away is handled by multipole approximation.
For adaptive trees the neighbours may be larger or smaller boxes, so
adjacency is the box-overlap test

    ``|c_a[d] − c_b[d]| <= h_a + h_b + slack``  for every dimension d.

Construction uses a uniform spatial hash at the finest leaf scale to
avoid the O(L²) all-pairs test; a naive quadratic reference is kept for
property tests.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.exceptions import TreeError
from repro.fmm.tree import Octree

__all__ = ["build_ulist", "build_ulist_naive", "boxes_adjacent"]

#: Relative slack for the touch test; boxes meeting exactly at a face,
#: edge, or corner count as adjacent.
_SLACK = 1e-9


def boxes_adjacent(
    center_a: np.ndarray,
    half_a: float,
    center_b: np.ndarray,
    half_b: float,
) -> bool:
    """Whether two axis-aligned cubes touch or overlap."""
    limit = half_a + half_b + _SLACK
    return bool(np.all(np.abs(center_a - center_b) <= limit))


def build_ulist_naive(tree: Octree) -> list[list[int]]:
    """O(L²) reference construction; exact, used as the test oracle."""
    leaves = tree.leaves
    ulist: list[list[int]] = [[] for _ in leaves]
    for a in leaves:
        for b in leaves:
            if boxes_adjacent(a.center, a.half_width, b.center, b.half_width):
                ulist[a.index].append(b.index)
    return ulist


def build_ulist(tree: Octree) -> list[list[int]]:
    """Spatial-hash U-list construction.

    Bins every leaf by its centre on a grid at the finest leaf scale and
    tests only leaves from candidate bins.  Coarse leaves overlapping
    many fine bins are registered in each bin they intersect, so no
    adjacency is missed across resolution levels.

    Returns, for each leaf index, the sorted list of adjacent leaf
    indices (self included) — ``U(B)`` of Algorithm 1.
    """
    leaves = tree.leaves
    if not leaves:
        raise TreeError("tree has no leaves")
    centers = np.array([leaf.center for leaf in leaves], dtype=np.float64)
    halves = np.array([leaf.half_width for leaf in leaves], dtype=np.float64)
    finest = min(leaf.half_width for leaf in leaves)
    cell = 2.0 * finest  # bin edge = finest box edge
    bins: dict[tuple[int, int, int], list[int]] = defaultdict(list)

    def bin_range(leaf) -> tuple[np.ndarray, np.ndarray]:
        lo = np.floor((leaf.center - leaf.half_width) / cell - _SLACK).astype(int)
        hi = np.floor((leaf.center + leaf.half_width) / cell + _SLACK).astype(int)
        return lo, hi

    for leaf in leaves:
        lo, hi = bin_range(leaf)
        for ix in range(lo[0], hi[0] + 1):
            for iy in range(lo[1], hi[1] + 1):
                for iz in range(lo[2], hi[2] + 1):
                    bins[(ix, iy, iz)].append(leaf.index)

    ulist: list[list[int]] = []
    for leaf in leaves:
        lo, hi = bin_range(leaf)
        candidates: set[int] = set()
        # Expand by one bin on each side: neighbours merely *touching* the
        # box may live entirely in the adjacent bin.
        for ix in range(lo[0] - 1, hi[0] + 2):
            for iy in range(lo[1] - 1, hi[1] + 2):
                for iz in range(lo[2] - 1, hi[2] + 2):
                    candidates.update(bins.get((ix, iy, iz), ()))
        # One vectorized box-overlap reduction over all candidates —
        # identical arithmetic to `boxes_adjacent` per pair (same
        # operand order: (h_a + h_b) + slack, |c_a - c_b|).
        cand = np.fromiter(candidates, dtype=np.int64, count=len(candidates))
        cand.sort()
        limits = (leaf.half_width + halves[cand]) + _SLACK
        touching = np.all(
            np.abs(centers[cand] - leaf.center) <= limits[:, None], axis=1
        )
        ulist.append([int(i) for i in cand[touching]])
    return ulist

"""Far-field evaluation: Cartesian multipole expansions for ``1/r``.

§V-C needed only the U-list (near-field) phase, but a usable n-body
library needs the other half.  This module implements a single-level
treecode far field: each leaf's sources are summarised by Cartesian
moments up to quadrupole order, and every target evaluates non-adjacent
leaves through the expansion instead of point-by-point:

    ``φ(t) ≈ M/r + (d·r̂)/r² + (r·Q·r)/(2·r⁵)``  with
    ``M = Σ dₛ``,  ``d = Σ dₛ·(xₛ−c)``,
    ``Q = Σ dₛ·(3·(xₛ−c)(xₛ−c)ᵀ − |xₛ−c|²·I)``   (traceless quadrupole)

where ``r = t − c`` is the target's offset from the leaf centre.  The
truncation error falls as ``(leaf radius / distance)³``; U-list
adjacency guarantees non-adjacent leaves are at least one box away, so
accuracy is uniformly controlled — the property tests quantify it.

Combined with :func:`repro.fmm.kernel.evaluate_ulist` this gives a full
``O(n·L)`` evaluation validated against the ``O(n²)`` direct sum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ProfileError
from repro.fmm.kernel import evaluate_ulist, interact
from repro.fmm.tree import Octree

__all__ = [
    "LeafMoments",
    "translate_moments",
    "compute_node_moments",
    "barnes_hut_evaluate",
    "compute_moments",
    "evaluate_moments",
    "evaluate_far_field",
    "evaluate_full",
    "direct_reference",
]


@dataclass(frozen=True)
class LeafMoments:
    """Multipole summary of one leaf's sources about its box centre."""

    center: np.ndarray
    monopole: float
    dipole: np.ndarray
    quadrupole: np.ndarray

    def __post_init__(self) -> None:
        if self.dipole.shape != (3,) or self.quadrupole.shape != (3, 3):
            raise ProfileError("moment shapes must be (3,) and (3, 3)")


def compute_moments(tree: Octree) -> list[LeafMoments]:
    """Monopole/dipole/traceless-quadrupole moments for every leaf."""
    moments: list[LeafMoments] = []
    for leaf in tree.leaves:
        pts = tree.positions[leaf.points]
        dens = tree.densities[leaf.points]
        offsets = pts - leaf.center
        monopole = float(dens.sum())
        dipole = offsets.T @ dens
        r2 = np.einsum("ij,ij->i", offsets, offsets)
        quad = 3.0 * np.einsum("i,ij,ik->jk", dens, offsets, offsets)
        quad -= np.eye(3) * float(dens @ r2)
        moments.append(
            LeafMoments(
                center=leaf.center.copy(),
                monopole=monopole,
                dipole=dipole,
                quadrupole=quad,
            )
        )
    return moments


def evaluate_moments(targets: np.ndarray, moments: LeafMoments) -> np.ndarray:
    """Evaluate one leaf's expansion at target points (vectorised)."""
    t = np.asarray(targets, dtype=float)
    if t.ndim != 2 or t.shape[1] != 3:
        raise ProfileError(f"targets must be (m, 3), got {t.shape}")
    r = t - moments.center
    r2 = np.einsum("ij,ij->i", r, r)
    # replint: ignore[RL005] -- bit-exact: r2 is 0.0 only at the expansion centre itself (IEEE-754 x-x==0)
    if np.any(r2 == 0.0):
        raise ProfileError("far-field expansion evaluated at its own centre")
    inv_r = 1.0 / np.sqrt(r2)
    inv_r3 = inv_r / r2
    inv_r5 = inv_r3 / r2
    phi = moments.monopole * inv_r
    phi += (r @ moments.dipole) * inv_r3
    phi += 0.5 * np.einsum("ij,jk,ik->i", r, moments.quadrupole, r) * inv_r5
    return phi


def evaluate_far_field(
    tree: Octree,
    ulist: list[list[int]],
    *,
    moments: list[LeafMoments] | None = None,
) -> np.ndarray:
    """φ contributions from every non-adjacent (far) leaf, per point."""
    if len(ulist) != tree.n_leaves:
        raise ProfileError(
            f"ulist has {len(ulist)} entries for {tree.n_leaves} leaves"
        )
    if moments is None:
        moments = compute_moments(tree)
    phi = np.zeros(tree.n_points)
    all_leaves = set(range(tree.n_leaves))
    for leaf in tree.leaves:
        near = set(ulist[leaf.index])
        targets = tree.positions[leaf.points]
        for far_index in all_leaves - near:
            phi[leaf.points] += evaluate_moments(targets, moments[far_index])
    return phi


def evaluate_full(
    tree: Octree, ulist: list[list[int]]
) -> tuple[np.ndarray, dict[str, float]]:
    """Complete evaluation: direct near field + multipole far field.

    Returns (φ, stats) where stats reports the near/far pair counts —
    the treecode's ``O(n·L)`` versus the direct method's ``O(n²)``.
    """
    near_phi, near_pairs = evaluate_ulist(tree, ulist)
    far_phi = evaluate_far_field(tree, ulist)
    far_cells = sum(
        tree.leaves[i].size * (tree.n_leaves - len(ulist[i]))
        for i in range(tree.n_leaves)
    )
    direct_pairs = tree.n_points * tree.n_points
    return near_phi + far_phi, {
        "near_pairs": float(near_pairs),
        "far_cell_evaluations": float(far_cells),
        "direct_pairs": float(direct_pairs),
        "speedup_proxy": direct_pairs / (near_pairs + far_cells),
    }


def direct_reference(tree: Octree) -> np.ndarray:
    """The ``O(n²)`` all-pairs oracle (vectorised; self-pairs skipped)."""
    return interact(tree.positions, tree.positions, tree.densities)


# ---------------------------------------------------------------------------
# Hierarchical (Barnes-Hut) evaluation
# ---------------------------------------------------------------------------


def translate_moments(child: LeafMoments, new_center: np.ndarray) -> LeafMoments:
    """M2M: shift a moment set to a new expansion centre — exactly.

    With ``r = c_child − c_new`` and ``y = x − c_child``:

    * ``M' = M``;
    * ``D' = D + M·r``;
    * ``Q' = Q + 3(D rᵀ + r Dᵀ) − 2(D·r)·I + M·(3 r rᵀ − |r|²·I)``.

    The translation is *exact* (Cartesian moments of fixed order close
    under shifts), so a parent's translated-and-summed moments equal the
    moments computed directly from its points — a property test pins
    this identity.
    """
    new_center = np.asarray(new_center, dtype=float)
    r = child.center - new_center
    monopole = child.monopole
    dipole = child.dipole + monopole * r
    outer_dr = np.outer(child.dipole, r)
    quadrupole = (
        child.quadrupole
        + 3.0 * (outer_dr + outer_dr.T)
        - 2.0 * float(child.dipole @ r) * np.eye(3)
        + monopole * (3.0 * np.outer(r, r) - float(r @ r) * np.eye(3))
    )
    return LeafMoments(
        center=new_center.copy(),
        monopole=monopole,
        dipole=dipole,
        quadrupole=quadrupole,
    )


def _merge_moments(center: np.ndarray, parts: list[LeafMoments]) -> LeafMoments:
    """Sum several moment sets about a common centre (after M2M shifts)."""
    shifted = [translate_moments(p, center) for p in parts]
    return LeafMoments(
        center=np.asarray(center, dtype=float).copy(),
        monopole=sum(s.monopole for s in shifted),
        dipole=sum((s.dipole for s in shifted), np.zeros(3)),
        quadrupole=sum((s.quadrupole for s in shifted), np.zeros((3, 3))),
    )


def compute_node_moments(tree: Octree) -> list[LeafMoments]:
    """Moments for every tree node, bottom-up via M2M (upward pass)."""
    if not tree.nodes:
        raise ProfileError("tree has no node structure")
    leaf_moments = compute_moments(tree)
    node_moments: list[LeafMoments | None] = [None] * len(tree.nodes)
    # Children always have larger indices (pre-order build), so a reverse
    # sweep sees every child before its parent.
    for node in reversed(tree.nodes):
        if node.leaf_index is not None:
            node_moments[node.index] = leaf_moments[node.leaf_index]
        else:
            parts = [node_moments[c] for c in node.children]
            if any(p is None for p in parts):  # pragma: no cover - invariant
                raise ProfileError("child moments missing during upward pass")
            node_moments[node.index] = _merge_moments(node.center, parts)  # type: ignore[arg-type]
    return node_moments  # type: ignore[return-value]


def barnes_hut_evaluate(
    tree: Octree, *, theta: float = 0.4
) -> tuple[np.ndarray, dict[str, float]]:
    """Full hierarchical evaluation with a multipole acceptance criterion.

    Per target leaf ``B``, the tree is traversed from the root: a node
    whose opening ratio ``size / distance`` is below ``theta`` is
    evaluated through its (M2M-aggregated) moments for all of ``B``'s
    points at once; otherwise its children are visited; leaf-level
    encounters fall back to the direct kernel.  Distances are measured
    from the *surface* of the target leaf (conservative MAC), so the
    acceptance bound holds for every point in the leaf.

    Returns ``(φ, stats)``; smaller ``theta`` is more accurate and more
    expensive.  The classic ``O(n log n)`` shape — node evaluations per
    leaf grow logarithmically — is asserted by the tests.
    """
    if not 0.0 < theta < 1.0:
        raise ProfileError(f"theta must be in (0, 1), got {theta}")
    node_moments = compute_node_moments(tree)
    phi = np.zeros(tree.n_points)
    approx_evals = 0
    direct_pairs = 0

    for leaf in tree.leaves:
        targets = tree.positions[leaf.points]
        stack = [0]
        while stack:
            node = tree.nodes[stack.pop()]
            offset = node.center - leaf.center
            distance = float(np.linalg.norm(offset))
            # Conservative: measure from the target leaf's bounding sphere.
            effective = distance - leaf.half_width * math.sqrt(3.0)
            size = 2.0 * node.half_width
            if effective > 0 and size / effective < theta:
                phi[leaf.points] += evaluate_moments(
                    targets, node_moments[node.index]
                )
                approx_evals += 1
                continue
            if node.leaf_index is not None:
                source = tree.leaves[node.leaf_index]
                phi[leaf.points] += interact(
                    targets,
                    tree.positions[source.points],
                    tree.densities[source.points],
                )
                direct_pairs += leaf.size * source.size
                continue
            stack.extend(node.children)

    return phi, {
        "approx_evaluations": float(approx_evals),
        "direct_pairs": float(direct_pairs),
        "all_pairs": float(tree.n_points) ** 2,
        "direct_fraction": direct_pairs / float(tree.n_points) ** 2,
    }

"""Per-variant traffic counters — the Compute Visual Profiler analogue.

The paper derives a variant's flop count from the input data and its
DRAM bytes from hardware counters (L2 read misses), and later reads the
L1/L2 byte counters to quantify cache traffic.  Our counters compute the
same quantities from the actual tree/U-list geometry plus the variant's
staging strategy:

* **pairs / W** — exact: ``Σ_B |B| · Σ_{S ∈ U(B)} |S|`` point pairs at
  11 flops each;
* **Q_dram** — compulsory point traffic times a reuse-dependent re-fetch
  factor (bigger target blocks touch each source leaf from fewer blocks)
  plus potential read/write;
* **Q_L1 / Q_L2** — visible cache-read bytes.  For the L1/L2 path these
  scale with *pairs* (every interaction re-reads its source through the
  cache, coalescing and register blocking dividing the cost); for the
  shared/texture paths the L1/L2 counters see only the staging traffic,
  while the bulk of source reuse flows through shared memory or the
  texture cache — captured in the *hidden* ``q_shared``/``q_texture``
  fields, which the profiler-visible counters do NOT include.

Point records are 16 bytes (x, y, z, density as float32); potentials are
4-byte reads plus 4-byte writes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ProfileError
from repro.fmm.kernel import FLOPS_PER_PAIR
from repro.fmm.tree import Octree
from repro.fmm.variants import MemoryPath, Variant

__all__ = ["TrafficCounters", "count_pairs", "count_traffic"]

#: Bytes per source-point record: x, y, z, density (float32 each).
POINT_BYTES = 16
#: Bytes per potential value (float32).
PHI_BYTES = 4


@dataclass(frozen=True, slots=True)
class TrafficCounters:
    """Operation and byte counts for one variant on one tree.

    ``q_l1``/``q_l2`` are profiler-visible; ``q_shared``/``q_texture``
    are real data movement invisible to L1/L2 counters (and priced
    differently by the device truth).
    """

    pairs: int
    work: float
    q_dram: float
    q_l1: float
    q_l2: float
    q_shared: float
    q_texture: float

    @property
    def q_cache_visible(self) -> float:
        """What the profiler's L1+L2 byte counters report."""
        return self.q_l1 + self.q_l2

    @property
    def intensity_dram(self) -> float:
        """Two-level intensity seen by eq. (2): ``W / Q_dram``."""
        return self.work / self.q_dram


def count_pairs(tree: Octree, ulist: list[list[int]]) -> int:
    """Exact number of point pairs the U-list phase evaluates.

    All-integer and batched: one flat gather over the concatenated
    U-lists, segment-summed per leaf — identical (exact arithmetic) to
    the per-leaf loop it replaces.
    """
    if len(ulist) != tree.n_leaves:
        raise ProfileError(
            f"ulist has {len(ulist)} entries for {tree.n_leaves} leaves"
        )
    sizes = np.asarray(tree.leaf_sizes(), dtype=np.int64)
    counts = np.fromiter((len(u) for u in ulist), dtype=np.int64, count=len(ulist))
    total_neighbors = int(counts.sum())
    if total_neighbors == 0:
        return 0
    flat = np.fromiter(
        (j for neighbors in ulist for j in neighbors),
        dtype=np.int64,
        count=total_neighbors,
    )
    cumulative = np.append(0, np.cumsum(sizes[flat]))
    offsets = np.append(0, np.cumsum(counts))
    sweep = cumulative[offsets[1:]] - cumulative[offsets[:-1]]
    return int(np.dot(sizes, sweep))


def l2_refill_ratio(variant: Variant) -> float:
    """Fraction of L1 reads that refill from L2, for cached-path variants.

    Grows with the per-block working set (``source_tile ×
    targets_per_block``): bigger footprints overflow L1 more often.
    Clamped to ``[0.2, 0.8]``.  This per-variant variation is what limits
    a *single* fitted cache coefficient — the hidden truth prices L1 and
    L2 bytes differently, so variants whose L1:L2 mix differs from the
    reference keep a few percent of residual error, the paper's 4.1%.
    """
    footprint = variant.source_tile * variant.targets_per_block
    ratio = 0.2 + 0.12 * math.log2(footprint / 256.0)
    return min(0.9, max(0.15, ratio))


def _dram_refetch_factor(variant: Variant) -> float:
    """How many times the average source point travels from DRAM.

    Each source leaf is touched by ~27 neighbouring target leaves; the
    cache retains it across consecutive touches with a probability that
    improves with larger target blocks (fewer distinct block launches
    between re-uses).  Explicit staging paths prefetch more effectively.
    """
    base = {
        MemoryPath.L1L2: 2.2,
        MemoryPath.SHARED: 1.3,
        MemoryPath.TEXTURE: 1.6,
    }[variant.path]
    # Larger blocks → fewer re-fetches; anchored at 1.0 for 128 targets.
    block_factor = (1.0 + 128.0 / variant.targets_per_block) / 2.0
    return base * block_factor


def count_traffic(
    tree: Octree,
    ulist: list[list[int]],
    variant: Variant,
    *,
    pairs: int | None = None,
) -> TrafficCounters:
    """Full counters for a variant on a tree (see module docstring).

    ``pairs`` is geometry-only (identical for every variant); callers
    sweeping many variants over one tree can pass the
    :func:`count_pairs` result once instead of recounting per variant.
    """
    if pairs is None:
        pairs = count_pairs(tree, ulist)
    n = tree.n_points
    work = float(FLOPS_PER_PAIR * pairs)

    q_dram = n * POINT_BYTES * _dram_refetch_factor(variant) + n * 2.0 * PHI_BYTES

    reg = variant.register_block
    if variant.path is MemoryPath.L1L2:
        # Every pair pulls its source record through L1 (warp coalescing
        # lets 16 B serve ~2 lanes after replays); the fraction refilled
        # from L2 grows with the working set a block touches.
        q_l1 = pairs * POINT_BYTES / (1.8 * reg)
        q_l2 = q_l1 * l2_refill_ratio(variant)
        q_shared = 0.0
        q_texture = 0.0
    elif variant.path is MemoryPath.SHARED:
        # L1/L2 carry only the staging loads (each DRAM byte passes once);
        # per-pair reuse happens in shared memory.
        q_l1 = q_dram
        q_l2 = q_dram
        q_shared = pairs * POINT_BYTES / (8.0 * reg)
        q_texture = 0.0
    else:
        # Texture path: reads bypass L1; L2 backs the texture cache.
        q_l1 = n * POINT_BYTES * 0.5
        q_l2 = q_dram
        q_shared = 0.0
        q_texture = pairs * POINT_BYTES / (6.0 * reg)

    return TrafficCounters(
        pairs=pairs,
        work=work,
        q_dram=float(q_dram),
        q_l1=float(q_l1),
        q_l2=float(q_l2),
        q_shared=float(q_shared),
        q_texture=float(q_texture),
    )

"""The §V-C energy-estimation study, end to end.

Workflow (mirroring the paper exactly):

1. **Measure** every variant: execute its U-list kernel on the simulated
   GTX 580 under the PowerMon session, yielding per-phase time and
   energy.
2. **Estimate naively** with the two-level model, eq. (2):
   ``E = W·ε_flop + Q_dram·ε_mem + π0·T`` using the Table IV fitted
   coefficients (the experimenter's best knowledge) and the measured
   time.  The paper found these estimates "lower by 33% on average".
3. **Fit a cache energy cost** on the *reference implementation* —
   divide the measured-minus-estimated gap by its L1+L2 byte count
   (the paper got ≈187 pJ/B).
4. **Re-estimate** all L1/L2-only variants with the cache term; the
   paper reports a median error of 4.1%.

Variants that stage through shared or texture memory move most of their
bytes outside the L1/L2 counters, so the correction does not transfer to
them — which is why the paper applies it only to the ~160 L1/L2-only
kernels, and why :meth:`FmmEnergyStudy.run` reports those separately.
"""

from __future__ import annotations

import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from math import ceil

import numpy as np

from repro.analysis.stats import ErrorSummary, summarize_errors
from repro.config import DEFAULT_SEED, MeasurementProtocol, NoiseProfile
from repro.core.fitting import fit_cache_energy
from repro.core.params import MachineModel
from repro.exceptions import MeasurementError
from repro.fmm.counters import TrafficCounters, count_pairs, count_traffic
from repro.units import to_picojoules
from repro.fmm.tree import Octree
from repro.fmm.variants import Variant, reference_variant
from repro.machines.catalog import gtx580_single
from repro.powermon.channels import gpu_rails
from repro.powermon.session import MeasurementSession
from repro.simulator.device import DeviceTruth, SimulatedDevice, gtx580_truth
from repro.simulator.kernel import KernelSpec, Precision

__all__ = ["VariantObservation", "StudyResult", "FmmEnergyStudy"]


def _measure_chunk(
    study: "FmmEnergyStudy", chunk: "list[Variant]"
) -> "list[VariantObservation]":
    """Worker-process entry point: measure one contiguous variant chunk."""
    return [study.measure_variant(variant) for variant in chunk]

#: Hidden-truth energy ratios relative to the device's blended
#: ``eps_cache`` price.  An L1 byte is cheaper (small, close SRAM), an L2
#: byte dearer (bigger arrays, longer wires).  The experimenter's fit has
#: only ONE coefficient for both — "this estimate does not of course
#: distinguish between different levels of cache access" (§V-C) — which
#: is precisely why the corrected estimates keep a few percent of error.
L1_ENERGY_RATIO = 0.3
L2_ENERGY_RATIO = 2.4
#: Energy of a shared-memory byte relative to ``eps_cache``: the
#: shared-memory SRAM sits beside the ALUs, far cheaper per access.
SHARED_ENERGY_RATIO = 0.25
#: Texture-cache byte relative to ``eps_cache``: comparable circuitry
#: plus filtering/addressing overhead.
TEXTURE_ENERGY_RATIO = 1.15


@dataclass(frozen=True)
class VariantObservation:
    """Measured and estimated energies for one variant (per U-list phase)."""

    variant: Variant
    counters: TrafficCounters
    time: float
    measured_energy: float
    naive_estimate: float
    corrected_estimate: float | None = None

    @property
    def naive_error(self) -> float:
        """Signed relative error of the eq. (2) estimate."""
        return (self.naive_estimate - self.measured_energy) / self.measured_energy

    @property
    def corrected_error(self) -> float | None:
        """Signed relative error after the cache correction (if applied)."""
        if self.corrected_estimate is None:
            return None
        return (self.corrected_estimate - self.measured_energy) / self.measured_energy


@dataclass(frozen=True)
class StudyResult:
    """Outcome of the full §V-C study.

    ``eps_cache_fit`` is the fitted per-byte cache energy (J/B);
    ``naive_summary`` and ``corrected_summary`` are error statistics over
    the L1/L2-only variants (the population the paper reports on).
    """

    observations: tuple[VariantObservation, ...]
    eps_cache_fit: float
    naive_summary: ErrorSummary
    corrected_summary: ErrorSummary

    @property
    def l1l2_observations(self) -> list[VariantObservation]:
        """The ~160 variants the cache correction applies to."""
        return [o for o in self.observations if o.variant.uses_only_l1l2]

    def describe(self) -> str:
        """Paper-style summary of the study's headline numbers."""
        return "\n".join(
            [
                f"FMM U-list energy study: {len(self.observations)} variants "
                f"({len(self.l1l2_observations)} L1/L2-only)",
                f"  naive eq.(2) estimates:   {self.naive_summary.describe()}",
                f"  fitted cache energy:      {to_picojoules(self.eps_cache_fit):.1f} pJ/B "
                "(paper: 187 pJ/B)",
                f"  cache-corrected:          {self.corrected_summary.describe()}",
            ]
        )


class FmmEnergyStudy:
    """Runs the estimation workflow against a simulated GPU.

    Parameters
    ----------
    tree, ulist:
        The FMM geometry (shared by all variants — the paper's variants
        all compute the same U-list phase).
    truth:
        Device ground truth (defaults to the GTX 580).
    machine:
        The *experimenter's* coefficient set for eq. (2) estimates —
        defaults to the Table IV catalog entry at single precision
        (the FMM kernel uses ``rsqrtf``).
    """

    def __init__(
        self,
        tree: Octree,
        ulist: list[list[int]],
        *,
        truth: DeviceTruth | None = None,
        machine: MachineModel | None = None,
        protocol: MeasurementProtocol | None = None,
        noise: NoiseProfile | None = None,
        seed: int = DEFAULT_SEED,
    ):
        self.tree = tree
        self.ulist = ulist
        self.truth = truth or gtx580_truth()
        self.machine = machine or gtx580_single()
        self.device = SimulatedDevice(self.truth)
        self._protocol = protocol
        self._noise = noise
        self._seed = seed
        self.session = MeasurementSession(
            self.device, gpu_rails(), protocol=protocol, noise=noise, seed=seed
        )
        # Pair count is a property of the geometry, not the variant —
        # compute it once and share it across all 390 measurements.
        self._pairs = count_pairs(tree, ulist)

    # ------------------------------------------------------------------

    def _variant_session(self, vid: str) -> MeasurementSession:
        """A fresh measurement session seeded deterministically per variant.

        Deriving the RNG stream from ``(seed, vid)`` rather than sharing
        one session across the sweep makes every variant's measurement
        independent of evaluation *order* — which is what lets
        :meth:`run` split the variant list across worker processes and
        still produce bit-identical results for any ``jobs`` count.
        """
        return MeasurementSession(
            self.device,
            gpu_rails(),
            protocol=self._protocol,
            noise=self._noise,
            seed=[self._seed % (1 << 32), zlib.crc32(vid.encode("utf-8"))],
        )

    def _equivalent_cache_bytes(self, counters: TrafficCounters) -> float:
        """All on-chip traffic expressed in ``eps_cache``-cost bytes.

        The device truth prices each storage level differently; folding
        the ratios in here converts everything to equivalent bytes at the
        blended ``eps_cache`` price the simulator charges.  Only the
        simulator sees this; estimators see ``counters.q_cache_visible``.
        """
        return (
            counters.q_l1 * L1_ENERGY_RATIO
            + counters.q_l2 * L2_ENERGY_RATIO
            + counters.q_shared * SHARED_ENERGY_RATIO
            + counters.q_texture * TEXTURE_ENERGY_RATIO
        )

    def measure_variant(self, variant: Variant) -> VariantObservation:
        """Measure one variant and compute its naive eq. (2) estimate.

        Uses a per-variant RNG stream (see :meth:`_variant_session`), so
        the result depends only on the variant and the study seed — not
        on which variants were measured before it.
        """
        counters = count_traffic(
            self.tree, self.ulist, variant, pairs=self._pairs
        )
        efficiency = variant.efficiency()
        session = self._variant_session(variant.vid)

        # Size the run for the sampler: repeat the phase enough times that
        # one measured repetition spans >= 1/ sample-rate comfortably.
        protocol = session.protocol
        flop_rate, _ = self.device.effective_rates(
            KernelSpec(
                name=variant.vid,
                work=counters.work,
                traffic=counters.q_dram,
                precision=Precision.SINGLE,
            ),
            efficiency=efficiency,
        )
        phase_time = counters.work / flop_rate
        min_rep_time = 2.0 / protocol.sample_hz
        iterations = max(1, ceil(min_rep_time / phase_time))

        kernel = KernelSpec(
            name=f"fmm-{variant.vid}",
            work=counters.work * iterations,
            traffic=counters.q_dram * iterations,
            precision=Precision.SINGLE,
        )
        measurement = session.measure(
            kernel,
            cache_traffic=self._equivalent_cache_bytes(counters) * iterations,
            efficiency=efficiency,
        )
        time = measurement.time / iterations
        energy = measurement.energy / iterations

        naive = (
            counters.work * self.machine.eps_flop
            + counters.q_dram * self.machine.eps_mem
            + self.machine.pi0 * time
        )
        return VariantObservation(
            variant=variant,
            counters=counters,
            time=time,
            measured_energy=energy,
            naive_estimate=naive,
        )

    def fit_cache_cost(self, reference: VariantObservation) -> float:
        """§V-C's cache-energy fit from the reference implementation."""
        if not reference.variant.uses_only_l1l2:
            raise MeasurementError(
                "the cache fit requires an L1/L2-only reference variant"
            )
        return fit_cache_energy(
            [reference.measured_energy],
            [reference.naive_estimate],
            [reference.counters.q_cache_visible],
        )

    def _measure_all(
        self, variants: list[Variant], jobs: int
    ) -> list[VariantObservation]:
        """Measure every variant, fanning across ``jobs`` processes.

        Variants are split into one contiguous chunk per worker; each
        worker receives a pickled copy of the study and measures its
        chunk with :meth:`measure_variant`.  Because sessions are seeded
        per variant, the observation list is identical — bit for bit —
        to the sequential path, in the original variant order.
        """
        workers = min(jobs, len(variants))
        if workers <= 1:
            return [self.measure_variant(v) for v in variants]
        bounds = np.linspace(0, len(variants), workers + 1).astype(int)
        chunks = [
            variants[lo:hi]
            for lo, hi in zip(bounds[:-1], bounds[1:])
            if hi > lo
        ]
        observations: list[VariantObservation] = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for part in pool.map(_measure_chunk, [self] * len(chunks), chunks):
                observations.extend(part)
        return observations

    def run(self, variants: list[Variant], *, jobs: int = 1) -> StudyResult:
        """Execute the full study over a variant list.

        ``jobs > 1`` measures the variants across that many worker
        processes; results are identical to ``jobs=1`` for any job count
        (measurements are seeded per variant, not per session).
        """
        if not variants:
            raise MeasurementError("need at least one variant")
        if jobs < 1:
            raise MeasurementError(f"jobs must be >= 1, got {jobs}")
        observations = self._measure_all(variants, jobs)

        reference = next(
            (o for o in observations if o.variant == reference_variant()),
            None,
        )
        if reference is None:
            reference = next(
                (o for o in observations if o.variant.uses_only_l1l2), None
            )
        if reference is None:
            raise MeasurementError("no L1/L2-only variant to fit the cache cost on")
        eps_cache = self.fit_cache_cost(reference)

        corrected: list[VariantObservation] = []
        for obs in observations:
            if obs.variant.uses_only_l1l2:
                estimate = obs.naive_estimate + eps_cache * obs.counters.q_cache_visible
                corrected.append(
                    VariantObservation(
                        variant=obs.variant,
                        counters=obs.counters,
                        time=obs.time,
                        measured_energy=obs.measured_energy,
                        naive_estimate=obs.naive_estimate,
                        corrected_estimate=estimate,
                    )
                )
            else:
                corrected.append(obs)

        l1l2 = [o for o in corrected if o.variant.uses_only_l1l2]
        naive_summary = summarize_errors(
            np.array([o.naive_estimate for o in l1l2]),
            np.array([o.measured_energy for o in l1l2]),
        )
        corrected_summary = summarize_errors(
            np.array([o.corrected_estimate for o in l1l2]),
            np.array([o.measured_energy for o in l1l2]),
        )
        return StudyResult(
            observations=tuple(corrected),
            eps_cache_fit=eps_cache,
            naive_summary=naive_summary,
            corrected_summary=corrected_summary,
        )

"""The FMM implementation-variant space (§V-C's "approximately 390").

The paper draws on ~390 previously generated FMM U-list implementations
spanning "a variety of performance optimization techniques and tuning
parameter values", of which about 160 rely only on the L1/L2 caches for
data reuse.  We reconstruct an equivalent space:

* **memory path** — where source points are staged for reuse:
  ``L1L2`` (plain global loads through the cache hierarchy — the
  reference implementation's family), ``SHARED`` (explicit shared-memory
  tiling), ``TEXTURE`` (the read-only texture path);
* **targets per block**, **source tile size**, **unroll factor**,
  **register blocking** — the numeric tuning parameters.

The grids are sized so the space contains exactly 390 variants, 160 of
them L1/L2-only — matching the paper's counts.  Each variant carries a
deterministic execution-efficiency model (fraction of the device's
achievable throughput) and the traffic-model parameters the counters
use.
"""

from __future__ import annotations

import enum
import itertools
import math
from dataclasses import dataclass

from repro.exceptions import ProfileError

__all__ = ["MemoryPath", "Variant", "generate_variants", "reference_variant"]


class MemoryPath(enum.Enum):
    """Which on-chip storage a variant stages source data through."""

    L1L2 = "l1l2"
    SHARED = "shared"
    TEXTURE = "texture"


#: Per-path ceiling on execution efficiency: explicit shared-memory
#: staging wins; the plain cached path pays more replay overhead.
_PATH_EFFICIENCY = {
    MemoryPath.L1L2: 0.80,
    MemoryPath.SHARED: 0.95,
    MemoryPath.TEXTURE: 0.88,
}


@dataclass(frozen=True, slots=True)
class Variant:
    """One FMM U-list implementation variant.

    Attributes
    ----------
    vid:
        Stable identifier, e.g. ``"shared-b128-t32-u2-r1"``.
    path:
        Memory path for source staging.
    targets_per_block:
        Target points processed per thread block.
    source_tile:
        Source points staged per inner iteration.
    unroll:
        Inner-loop unroll factor.
    register_block:
        Targets held in registers per thread (register tiling).
    """

    vid: str
    path: MemoryPath
    targets_per_block: int
    source_tile: int
    unroll: int
    register_block: int

    def __post_init__(self) -> None:
        for attr in ("targets_per_block", "source_tile", "unroll", "register_block"):
            if getattr(self, attr) < 1:
                raise ProfileError(f"{attr} must be >= 1")

    @property
    def uses_only_l1l2(self) -> bool:
        """True for the variants the §V-C cache correction applies to."""
        return self.path is MemoryPath.L1L2

    # ------------------------------------------------------------------
    # Deterministic execution-efficiency model
    # ------------------------------------------------------------------

    def efficiency(self) -> float:
        """Fraction of achievable throughput this variant reaches, (0, 1].

        Path ceiling × an occupancy ridge over ``targets_per_block``
        (optimum 128) × saturating tile reuse (optimum ≥32) × saturating
        unroll (optimum ≥4) × a register-pressure trade-off that rewards
        moderate register blocking and punishes heavy blocking at large
        unroll.
        """
        occ_distance = math.log2(self.targets_per_block / 128.0)
        occupancy = 1.0 / (1.0 + (occ_distance / 2.0) ** 2)
        tile = min(1.0, 0.55 + 0.15 * math.log2(self.source_tile / 4.0))
        unroll = min(1.0, 0.7 + 0.1 * self.unroll)
        pressure = self.register_block * self.unroll
        registers = 1.0 if pressure <= 8 else max(0.4, 1.0 - 0.05 * (pressure - 8))
        reg_gain = min(1.0, 0.9 + 0.05 * self.register_block)
        value = _PATH_EFFICIENCY[self.path] * occupancy * tile * unroll * registers * reg_gain
        return max(0.05, min(1.0, value))


def _build(
    path: MemoryPath, tpb: int, tile: int, unroll: int, reg: int
) -> Variant:
    vid = f"{path.value}-b{tpb}-t{tile}-u{unroll}-r{reg}"
    return Variant(
        vid=vid,
        path=path,
        targets_per_block=tpb,
        source_tile=tile,
        unroll=unroll,
        register_block=reg,
    )


def generate_variants() -> list[Variant]:
    """The full 390-variant space (160 L1/L2-only), deterministic order.

    Grids:

    * L1/L2: 5 block sizes × 4 tiles × 4 unrolls × 2 register blockings
      = **160**;
    * shared: 5 × 3 (tiles ≥ 16 — staging smaller tiles is useless)
      × 4 × 2 = **120**;
    * texture: 5 × 4 × 4 with register blocking 1 (the texture path's
      generated kernels did not register-block) = 80, plus a
      texture+register-block-2 subfamily 5 × 3 × 2 = 30 → **110**.

    Total 390.
    """
    blocks = (32, 64, 128, 256, 512)
    variants: list[Variant] = []
    for tpb, tile, unroll, reg in itertools.product(
        blocks, (8, 16, 32, 64), (1, 2, 4, 8), (1, 2)
    ):
        variants.append(_build(MemoryPath.L1L2, tpb, tile, unroll, reg))
    for tpb, tile, unroll, reg in itertools.product(
        blocks, (16, 32, 64), (1, 2, 4, 8), (1, 2)
    ):
        variants.append(_build(MemoryPath.SHARED, tpb, tile, unroll, reg))
    for tpb, tile, unroll in itertools.product(blocks, (8, 16, 32, 64), (1, 2, 4, 8)):
        variants.append(_build(MemoryPath.TEXTURE, tpb, tile, unroll, 1))
    for tpb, tile, unroll in itertools.product(blocks, (16, 32, 64), (2, 4)):
        variants.append(_build(MemoryPath.TEXTURE, tpb, tile, unroll, 2))
    return variants


def reference_variant() -> Variant:
    """The §V-C reference implementation: plain cached loads, no tricks.

    "relies only on L1 and L2 caches for data reuse ... does not use
    shared or texture memory or register-level blocking."
    """
    return _build(MemoryPath.L1L2, 128, 32, 1, 1)

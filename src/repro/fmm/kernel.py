"""Algorithm 1: the direct (U-list) interaction kernel.

For each target point ``t`` and source point ``s`` with density ``d_s``:

    ``(δx, δy, δz) = t − s``
    ``r = δx² + δy² + δz²``
    ``w = rsqrt(r)``
    ``φ_t += d_s · w``

The paper counts 11 scalar flops per pair (three subtractions, three
squarings, two adds, the reciprocal square root as one flop, one
multiply, one accumulate).  Self-pairs (``r = 0``) are skipped — a point
does not interact with itself.

Two implementations: a scalar reference (the oracle for property tests)
and a numpy-vectorised version that tiles targets-by-sources, which the
examples and benchmarks use.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ProfileError
from repro.fmm.tree import Octree

__all__ = ["FLOPS_PER_PAIR", "interact", "interact_reference", "evaluate_ulist"]

#: Algorithm 1's operation count per point pair (rsqrt = 1 flop).
FLOPS_PER_PAIR = 11


def interact_reference(
    targets: np.ndarray,
    sources: np.ndarray,
    densities: np.ndarray,
) -> np.ndarray:
    """Scalar-loop reference of Algorithm 1; returns φ per target.

    Deliberately written as the pseudocode reads — four nested loops
    collapsed to two — to serve as the correctness oracle.
    """
    t = np.asarray(targets, dtype=float)
    s = np.asarray(sources, dtype=float)
    d = np.asarray(densities, dtype=float)
    _validate(t, s, d)
    phi = np.zeros(len(t))
    for i in range(len(t)):
        for j in range(len(s)):
            dx = t[i, 0] - s[j, 0]
            dy = t[i, 1] - s[j, 1]
            dz = t[i, 2] - s[j, 2]
            r = dx * dx + dy * dy + dz * dz
            # replint: ignore[RL005] -- bit-exact: r is 0.0 only for a point against itself (IEEE-754 x-x==0)
            if r == 0.0:
                continue  # skip self-interaction
            phi[i] += d[j] / np.sqrt(r)
    return phi


def interact(
    targets: np.ndarray,
    sources: np.ndarray,
    densities: np.ndarray,
    *,
    target_tile: int = 512,
) -> np.ndarray:
    """Vectorised Algorithm 1: pairwise rsqrt accumulation.

    Broadcasting forms an ``(m, k)`` distance matrix one target tile at
    a time (``target_tile`` rows, default 512), so peak memory is
    ``O(target_tile · k)`` instead of ``O(m · k)`` — large target sets
    no longer materialise a full pairwise matrix.  Each target row's
    arithmetic is unchanged by the tiling (rows are independent), so
    results are bitwise identical for every tile size.
    """
    t = np.asarray(targets, dtype=float)
    s = np.asarray(sources, dtype=float)
    d = np.asarray(densities, dtype=float)
    _validate(t, s, d)
    if target_tile < 1:
        raise ProfileError(f"target_tile must be >= 1, got {target_tile}")
    m = t.shape[0]
    phi = np.empty(m)
    for start in range(0, m, target_tile):
        block = t[start : start + target_tile]
        delta = block[:, None, :] - s[None, :, :]
        r = np.einsum("ijk,ijk->ij", delta, delta)
        with np.errstate(divide="ignore"):
            w = np.where(r > 0.0, 1.0 / np.sqrt(r), 0.0)
        # einsum (not ``w @ d``): its per-row accumulation order is
        # fixed by the source axis alone, while BLAS gemv reorders with
        # the row count — which would break tile-size invariance in the
        # last bit.
        phi[start : start + target_tile] = np.einsum("ij,j->i", w, d)
    return phi


def _validate(t: np.ndarray, s: np.ndarray, d: np.ndarray) -> None:
    if t.ndim != 2 or t.shape[1] != 3:
        raise ProfileError(f"targets must be (m, 3), got {t.shape}")
    if s.ndim != 2 or s.shape[1] != 3:
        raise ProfileError(f"sources must be (k, 3), got {s.shape}")
    if d.shape != (s.shape[0],):
        raise ProfileError("densities must have one entry per source")


def evaluate_ulist(
    tree: Octree,
    ulist: list[list[int]],
    *,
    count_flops: bool = True,
) -> tuple[np.ndarray, int]:
    """Run the full U-list phase over a tree.

    Returns ``(phi, pairs)``: the potential for every point (tree point
    order) and the number of point pairs evaluated.  Multiply pairs by
    :data:`FLOPS_PER_PAIR` for the phase's ``W``; self-pairs inside a
    leaf's own interaction are included in the pair count — the hardware
    executes them (the kernel computes and discards) — matching how the
    paper's flop derivation from input data works.
    """
    if len(ulist) != tree.n_leaves:
        raise ProfileError(
            f"ulist has {len(ulist)} entries for {tree.n_leaves} leaves"
        )
    phi = np.zeros(tree.n_points)
    pairs = 0
    for leaf in tree.leaves:
        target_idx = leaf.points
        targets = tree.positions[target_idx]
        for source_leaf_index in ulist[leaf.index]:
            source_leaf = tree.leaves[source_leaf_index]
            sources = tree.positions[source_leaf.points]
            densities = tree.densities[source_leaf.points]
            phi[target_idx] += interact(targets, sources, densities)
            if count_flops:
                pairs += targets.shape[0] * sources.shape[0]
    return phi, pairs

"""Adaptive octree over 3-D points.

The FMM arranges points in a spatial tree whose leaves hold at most
``q`` points (the user-selected leaf capacity of §V-C).  This is a
straightforward pointer-free octree: nodes subdivide recursively until
they fit the capacity or reach a depth limit (which handles duplicate
points gracefully), and only leaves retain point indices.

The implementation is numpy-vectorised per node (octant assignment is a
3-bit code computed for all points at once), following the
"vectorise the inner loop" idiom rather than per-point recursion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import TreeError

__all__ = ["Leaf", "Node", "Octree"]

#: Default subdivision depth limit; 2^-20 boxes are far below any
#: physically meaningful separation in the unit cube.
MAX_DEPTH = 20


@dataclass(frozen=True, slots=True)
class Leaf:
    """One leaf box of the octree.

    Attributes
    ----------
    index:
        Position in :attr:`Octree.leaves` — the leaf's identity for
        U-lists and traffic counters.
    center:
        Box centre (3-vector).
    half_width:
        Half the box edge length (boxes are cubes).
    points:
        Indices into the tree's point array.
    depth:
        Subdivision level (root children are depth 1).
    """

    index: int
    center: np.ndarray
    half_width: float
    points: np.ndarray
    depth: int

    @property
    def size(self) -> int:
        """Number of points in this leaf."""
        return int(self.points.size)


@dataclass(frozen=True, slots=True)
class Node:
    """One internal (or leaf-wrapping) node of the full tree structure.

    ``children`` are indices into :attr:`Octree.nodes`; a node wrapping a
    leaf has no children and carries that leaf's index in ``leaf_index``.
    The node list enables hierarchical traversals (Barnes-Hut, future
    M2M/L2L pipelines) without touching the flat leaf API.
    """

    index: int
    center: np.ndarray
    half_width: float
    depth: int
    children: tuple[int, ...]
    leaf_index: int | None


@dataclass
class Octree:
    """An adaptive octree with capacity-``q`` leaves.

    Build with :meth:`build`; the constructor is the raw container.
    ``leaves`` is the flat leaf list most consumers use; ``nodes`` is the
    full hierarchical structure (root at index 0) for tree traversals.
    """

    positions: np.ndarray
    densities: np.ndarray
    leaf_capacity: int
    leaves: list[Leaf] = field(default_factory=list)
    nodes: list[Node] = field(default_factory=list)

    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        positions: np.ndarray,
        densities: np.ndarray,
        *,
        leaf_capacity: int,
        max_depth: int = MAX_DEPTH,
    ) -> "Octree":
        """Construct the tree over points in the unit cube.

        Parameters
        ----------
        positions:
            ``(n, 3)`` coordinates, each in ``[0, 1)``.
        densities:
            Length-``n`` source densities (``d_s`` in Algorithm 1).
        leaf_capacity:
            Maximum points per leaf (``q``).
        max_depth:
            Subdivision cut-off; an over-full box at this depth becomes a
            leaf anyway (duplicate-point safety valve).
        """
        pos = np.asarray(positions, dtype=float)
        den = np.asarray(densities, dtype=float)
        if pos.ndim != 2 or pos.shape[1] != 3:
            raise TreeError(f"positions must be (n, 3), got {pos.shape}")
        if den.shape != (pos.shape[0],):
            raise TreeError("densities must have one entry per point")
        if pos.shape[0] == 0:
            raise TreeError("cannot build a tree over zero points")
        if leaf_capacity < 1:
            raise TreeError(f"leaf_capacity must be >= 1, got {leaf_capacity}")
        if max_depth < 0:
            raise TreeError(f"max_depth must be >= 0, got {max_depth}")
        if np.any(pos < 0.0) or np.any(pos >= 1.0):
            raise TreeError("positions must lie in [0, 1)^3")

        tree = cls(positions=pos, densities=den, leaf_capacity=leaf_capacity)
        root_center = np.full(3, 0.5)
        tree._subdivide(
            np.arange(pos.shape[0]), root_center, 0.5, depth=0, max_depth=max_depth
        )
        return tree

    def _subdivide(
        self,
        indices: np.ndarray,
        center: np.ndarray,
        half_width: float,
        *,
        depth: int,
        max_depth: int,
    ) -> int:
        """Recursively split a box; record leaves and nodes.

        Returns the created node's index in :attr:`nodes` (-1 for empty
        boxes, which create nothing).
        """
        if indices.size == 0:
            return -1
        node_index = len(self.nodes)
        if indices.size <= self.leaf_capacity or depth >= max_depth:
            leaf = Leaf(
                index=len(self.leaves),
                center=center.copy(),
                half_width=half_width,
                points=np.sort(indices),
                depth=depth,
            )
            self.leaves.append(leaf)
            self.nodes.append(
                Node(
                    index=node_index,
                    center=center.copy(),
                    half_width=half_width,
                    depth=depth,
                    children=(),
                    leaf_index=leaf.index,
                )
            )
            return node_index
        # Reserve the slot so children index consistently after us.
        self.nodes.append(
            Node(
                index=node_index,
                center=center.copy(),
                half_width=half_width,
                depth=depth,
                children=(),
                leaf_index=None,
            )
        )
        pts = self.positions[indices]
        # 3-bit octant code per point: bit d set iff coordinate d >= centre.
        codes = (
            (pts[:, 0] >= center[0]).astype(np.int64)
            | ((pts[:, 1] >= center[1]).astype(np.int64) << 1)
            | ((pts[:, 2] >= center[2]).astype(np.int64) << 2)
        )
        quarter = half_width / 2.0
        children: list[int] = []
        for octant in range(8):
            child_indices = indices[codes == octant]
            if child_indices.size == 0:
                continue
            offset = np.array(
                [
                    quarter if octant & 1 else -quarter,
                    quarter if octant & 2 else -quarter,
                    quarter if octant & 4 else -quarter,
                ]
            )
            child = self._subdivide(
                child_indices,
                center + offset,
                quarter,
                depth=depth + 1,
                max_depth=max_depth,
            )
            if child >= 0:
                children.append(child)
        # Replace the reserved placeholder with the completed node.
        self.nodes[node_index] = Node(
            index=node_index,
            center=center.copy(),
            half_width=half_width,
            depth=depth,
            children=tuple(children),
            leaf_index=None,
        )
        return node_index

    # ------------------------------------------------------------------

    @property
    def n_points(self) -> int:
        """Total points in the tree."""
        return int(self.positions.shape[0])

    @property
    def n_leaves(self) -> int:
        """Number of (non-empty) leaves."""
        return len(self.leaves)

    def leaf_sizes(self) -> np.ndarray:
        """Points per leaf, in leaf order."""
        return np.array([leaf.size for leaf in self.leaves], dtype=np.int64)

    def validate(self) -> None:
        """Structural invariants; raises :class:`TreeError` on violation.

        * every point is in exactly one leaf;
        * every leaf respects capacity (unless at the depth limit);
        * every leaf's points lie inside its box.
        """
        seen = np.concatenate([leaf.points for leaf in self.leaves]) if self.leaves else np.array([], dtype=np.int64)
        if seen.size != self.n_points or np.unique(seen).size != self.n_points:
            raise TreeError(
                f"leaves cover {np.unique(seen).size} of {self.n_points} points"
            )
        for leaf in self.leaves:
            if leaf.size > self.leaf_capacity and leaf.depth < MAX_DEPTH:
                raise TreeError(
                    f"leaf {leaf.index} overflows capacity "
                    f"({leaf.size} > {self.leaf_capacity}) above the depth limit"
                )
            pts = self.positions[leaf.points]
            # Half-open boxes: [c-h, c+h); points sit strictly inside up to fp slack.
            if np.any(pts < leaf.center - leaf.half_width - 1e-12) or np.any(
                pts >= leaf.center + leaf.half_width + 1e-12
            ):
                raise TreeError(f"leaf {leaf.index} contains out-of-box points")

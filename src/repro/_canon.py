"""Canonical JSON serialisation and content hashing.

Two subsystems key persistent state by "the exact meaning of a request":
the :class:`~repro.experiments.runner.ExperimentRunner` addresses its
on-disk result cache by experiment invocation, and the serving layer
(:mod:`repro.service`) addresses its in-memory response cache by request
body.  Both need the same guarantee — *semantically equal inputs hash
equal* — so the canonicalisation lives here, once:

* mappings serialise with sorted keys, so insertion order never changes
  the hash;
* separators are fixed (no whitespace drift between json versions);
* values without a native JSON form fall back to ``repr`` (stable for
  the numeric/py-literal payloads these subsystems carry).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

__all__ = ["canonical_json", "content_hash"]


def canonical_json(payload: Any) -> str:
    """Serialise ``payload`` to its canonical JSON form.

    Dict key order is irrelevant: ``{"a": 1, "b": 2}`` and
    ``{"b": 2, "a": 1}`` produce identical strings (recursively).
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=repr
    )


def content_hash(payload: Any) -> str:
    """Hex SHA-256 of the canonical JSON form of ``payload``."""
    blob = canonical_json(payload)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()

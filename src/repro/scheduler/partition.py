"""Two-device divisible-workload partitioning.

A *divisible* workload (data-parallel: any fraction can go to either
device, work and traffic splitting proportionally) runs concurrently on
two machines.  For a split ``α`` to device A:

* ``T(α) = max(T_A(α·load), T_B((1−α)·load))`` — devices overlap;
* ``E(α) = E_A(α·load) + E_B((1−α)·load) (+ idle energy)``.

Idle handling is a policy: a finished device either powers off
(``HALT`` — race-to-halt at the system level) or keeps burning its
constant power until the makespan (``IDLE`` — no power gating).  The
choice changes the energy-optimal split qualitatively, which is the
point of modelling it.

Closed forms used:

* the **time-optimal** split equalises finish times:
  ``α* = r_A / (r_A + r_B)`` where ``r`` is a device's throughput
  (work per second) at this workload's intensity — time is linear in
  the share under eq. (3) because intensity is split-invariant;
* the **energy-optimal** split under ``HALT`` is an endpoint or the
  time-balanced interior point, since each device's energy is linear in
  its share; under ``IDLE`` the makespan couples the devices and a scan
  resolves it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.algorithm import AlgorithmProfile
from repro.core.energy_model import EnergyModel
from repro.core.params import MachineModel
from repro.core.time_model import TimeModel
from repro.exceptions import ParameterError

__all__ = ["Device", "IdlePolicy", "PartitionPlan", "HeterogeneousScheduler"]


class IdlePolicy(enum.Enum):
    """What a device does after finishing its share."""

    HALT = "halt"
    IDLE = "idle"


@dataclass(frozen=True, slots=True)
class Device:
    """A named execution target."""

    name: str
    machine: MachineModel

    def throughput(self, intensity: float) -> float:
        """Work per second at an intensity: ``1 / (T/W)``."""
        return 1.0 / TimeModel(self.machine).time_per_flop(intensity)


@dataclass(frozen=True, slots=True)
class PartitionPlan:
    """One evaluated split.

    ``alpha`` is device A's share of the work; ``time`` the makespan;
    ``energy`` the system total under the scheduler's idle policy.
    """

    alpha: float
    time: float
    energy: float
    time_a: float
    time_b: float

    @property
    def power(self) -> float:
        """System average power over the makespan (W)."""
        return self.energy / self.time

    @property
    def imbalance(self) -> float:
        """Idle fraction of the earlier-finishing device's timeline."""
        if self.time == 0:
            return 0.0
        return 1.0 - min(self.time_a, self.time_b) / self.time


class HeterogeneousScheduler:
    """Partition divisible workloads across two devices."""

    def __init__(
        self,
        device_a: Device,
        device_b: Device,
        *,
        idle_policy: IdlePolicy = IdlePolicy.HALT,
    ):
        self.device_a = device_a
        self.device_b = device_b
        self.idle_policy = idle_policy

    # ------------------------------------------------------------------

    def evaluate(self, workload: AlgorithmProfile, alpha: float) -> PartitionPlan:
        """Time and energy for a specific split ``α ∈ [0, 1]``."""
        if not 0.0 <= alpha <= 1.0:
            raise ParameterError(f"alpha must be in [0, 1], got {alpha}")
        t_a = e_a = 0.0
        t_b = e_b = 0.0
        if alpha > 0.0:
            share = workload.scaled(alpha)
            t_a = TimeModel(self.device_a.machine).time(share)
            e_a = EnergyModel(self.device_a.machine).energy(share)
        if alpha < 1.0:
            share = workload.scaled(1.0 - alpha)
            t_b = TimeModel(self.device_b.machine).time(share)
            e_b = EnergyModel(self.device_b.machine).energy(share)
        makespan = max(t_a, t_b)
        energy = e_a + e_b
        if self.idle_policy is IdlePolicy.IDLE:
            # The earlier finisher burns its constant power to the makespan;
            # a device with zero share still idles for the whole run.
            energy += self.device_a.machine.pi0 * (makespan - t_a)
            energy += self.device_b.machine.pi0 * (makespan - t_b)
        return PartitionPlan(
            alpha=alpha, time=makespan, energy=energy, time_a=t_a, time_b=t_b
        )

    # ------------------------------------------------------------------

    def time_optimal_split(self, workload: AlgorithmProfile) -> PartitionPlan:
        """The finish-time-equalising split (minimises the makespan)."""
        rate_a = self.device_a.throughput(workload.intensity)
        rate_b = self.device_b.throughput(workload.intensity)
        alpha = rate_a / (rate_a + rate_b)
        return self.evaluate(workload, alpha)

    def energy_optimal_split(
        self, workload: AlgorithmProfile, *, grid: int = 257
    ) -> PartitionPlan:
        """The minimum-energy split.

        Under ``HALT`` the optimum is one of: all-A, all-B, or the
        time-balanced point (energy is piecewise linear in α with a
        single breakpoint there only through the π0·T terms — a scan
        over candidates suffices and a fine grid guards the IDLE case,
        where idle-burn makes the objective piecewise smooth).
        """
        if grid < 3:
            raise ParameterError("grid must be >= 3")
        candidates = np.linspace(0.0, 1.0, grid).tolist()
        candidates.append(self.time_optimal_split(workload).alpha)
        plans = [self.evaluate(workload, a) for a in candidates]
        return min(plans, key=lambda p: p.energy)

    def pareto_frontier(
        self, workload: AlgorithmProfile, *, grid: int = 101
    ) -> list[PartitionPlan]:
        """Non-dominated (time, energy) plans over an α grid, by time.

        The frontier's two ends are (approximately) the time- and
        energy-optimal plans; everything between prices the trade.
        """
        if grid < 2:
            raise ParameterError("grid must be >= 2")
        plans = [self.evaluate(workload, a) for a in np.linspace(0.0, 1.0, grid)]
        plans.sort(key=lambda p: (p.time, p.energy))
        frontier: list[PartitionPlan] = []
        best_energy = float("inf")
        for plan in plans:
            if plan.energy < best_energy - 1e-15:
                frontier.append(plan)
                best_energy = plan.energy
        return frontier

    def summary(self, workload: AlgorithmProfile) -> str:
        """Report: both optima and the price of choosing the other metric."""
        fastest = self.time_optimal_split(workload)
        greenest = self.energy_optimal_split(workload)
        lines = [
            f"partitioning {workload.name} (I = {workload.intensity:.3g} flop/B) "
            f"across {self.device_a.name} + {self.device_b.name} "
            f"[{self.idle_policy.value}]",
            f"  time-optimal:   alpha = {fastest.alpha:.3f}  "
            f"T = {fastest.time:.4g} s  E = {fastest.energy:.4g} J",
            f"  energy-optimal: alpha = {greenest.alpha:.3f}  "
            f"T = {greenest.time:.4g} s  E = {greenest.energy:.4g} J",
            f"  choosing energy costs {greenest.time / fastest.time - 1:.1%} time; "
            f"choosing time costs {fastest.energy / greenest.energy - 1:.1%} energy",
        ]
        return "\n".join(lines)

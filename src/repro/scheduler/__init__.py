"""Heterogeneous work partitioning under the time and energy models.

The related-work thread the paper builds on ("Multi-Amdahl: how should I
divide my heterogeneous chip?") asks how to split work between unlike
devices.  With a time model *and* an energy model per device, the answer
differs by objective: the time-optimal split equalises finish times,
while the energy-optimal split often runs everything on the greener
device — unless constant power burned while waiting changes the
calculus.  :mod:`repro.scheduler.partition` makes those trade-offs
computable.
"""

from repro.scheduler.partition import (
    Device,
    HeterogeneousScheduler,
    IdlePolicy,
    PartitionPlan,
)

__all__ = ["Device", "IdlePolicy", "PartitionPlan", "HeterogeneousScheduler"]

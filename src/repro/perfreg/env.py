"""Environment fingerprint attached to every trajectory record.

A perf number without its provenance is noise: 8000 req/s on a 16-core
runner and 8000 req/s on a 2-core laptop are different facts.  The
fingerprint records just enough to (a) explain a step change in a
trajectory and (b) let the baseline reader decide whether history from
a different environment should count (`same_environment`).
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
from typing import Any, Mapping

__all__ = ["env_fingerprint", "git_sha", "same_environment"]


def git_sha(root: str | os.PathLike[str] | None = None) -> str:
    """The repo's HEAD commit (short), ``"unknown"`` outside a checkout.

    A dirty worktree gets a ``-dirty`` suffix so a record can never
    silently claim to be a clean build of its commit.
    """
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
        dirty = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return f"{sha}-dirty" if dirty else sha


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 1


def env_fingerprint(
    root: str | os.PathLike[str] | None = None,
) -> dict[str, Any]:
    """The provenance block stored under ``"env"`` in every record."""
    import numpy

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy.__version__,
        "platform": f"{platform.system()}-{platform.machine()}",
        "cpu_count": os.cpu_count() or 1,
        "usable_cores": _usable_cores(),
        "git_sha": git_sha(root),
        "argv0": os.path.basename(sys.argv[0]) if sys.argv else "",
    }


#: Fingerprint keys that must agree for two records to be graded
#: against each other.  git sha and argv0 are provenance, not
#: environment; python patch version churn is tolerated via the
#: (major, minor) prefix.
_COMPARABLE_KEYS = ("implementation", "platform", "cpu_count", "usable_cores")


def same_environment(a: Mapping[str, Any], b: Mapping[str, Any]) -> bool:
    """Should a baseline built on ``a`` grade a run from ``b``?"""
    if any(a.get(key) != b.get(key) for key in _COMPARABLE_KEYS):
        return False
    a_py = str(a.get("python", "")).split(".")[:2]
    b_py = str(b.get("python", "")).split(".")[:2]
    return a_py == b_py

"""Run, grade, persist: the engine behind ``repro perfreg``.

``run_checks`` is the whole lifecycle for a set of instances:

1. expand ``--checks`` patterns against the registry;
2. per instance: honour ``skip_reason``, then ``setup`` -> warmup
   repetitions -> measured repetitions (``sanity`` after each) ->
   ``teardown`` (always);
3. aggregate per-metric medians + IQR across the measured reps;
4. grade each metric against the rolling baseline computed from the
   trajectory **as it stood before this run** (a batch of checks in
   one invocation cannot contaminate each other's baselines);
5. apply waivers (``fail`` -> ``warn``, reason attached);
6. append one record per instance to ``BENCH_<area>.json``;
7. fold the worst verdict into the 0/1/2 exit code.

A sanity failure voids the instance: no record is appended (a wrong
answer must never become baseline history) and the run exits 2.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro.perfreg.baseline import (
    DEFAULT_TOLERANCE,
    DEFAULT_WINDOW,
    Baseline,
    Tolerance,
    Verdict,
    exit_code,
    rolling_baseline,
    verdict_for,
    worst,
)
from repro.perfreg.check import SanityError, CheckContext
from repro.perfreg.env import env_fingerprint
from repro.perfreg.methodology import DEFAULT_METHODOLOGY, Methodology
from repro.perfreg.record import MetricStats, RunRecord, metric_stats
from repro.perfreg.registry import CheckInstance, expand_checks
from repro.perfreg.trajectory import (
    Trajectory,
    append_records,
    bench_path,
    load_trajectory,
)
from repro.perfreg.waivers import WAIVER_FILENAME, find_waiver, load_waivers

__all__ = [
    "CheckOutcome",
    "HarnessResult",
    "baseline_table",
    "run_checks",
]


@dataclass(frozen=True)
class CheckOutcome:
    """What happened to one check instance in one harness run."""

    instance_id: str
    area: str
    status: str  # "graded" | "skipped" | "sanity_failed"
    verdict: str  # pass/warn/fail (skips grade as pass)
    verdicts: tuple[Verdict, ...] = ()
    record: RunRecord | None = None
    reason: str = ""

    def summary(self) -> str:
        if self.status == "skipped":
            return f"{self.instance_id}: SKIP ({self.reason})"
        if self.status == "sanity_failed":
            return f"{self.instance_id}: FAIL sanity ({self.reason})"
        parts = ", ".join(
            f"{v.metric}={v.value:g}"
            + (f" ({v.ratio:+.1%} vs {v.baseline:g})" if v.baseline else "")
            for v in self.verdicts
        )
        return f"{self.instance_id}: {self.verdict.upper()} {parts}"


@dataclass(frozen=True)
class HarnessResult:
    """All outcomes of one ``perfreg run`` plus the exit code."""

    outcomes: tuple[CheckOutcome, ...]
    exit_code: int
    env: dict[str, Any] = field(default_factory=dict)

    @property
    def verdict(self) -> str:
        return worst([o.verdict for o in self.outcomes])


def _measure_instance(
    inst: CheckInstance,
    methodology: Methodology,
    clock: Callable[[], float],
) -> tuple[dict[str, MetricStats], int]:
    """Lifecycle + aggregation for one instance; returns (stats, reps)."""
    check = inst.check
    ctx = CheckContext(
        params=dict(inst.params),
        reps=methodology.reps,
        warmup=methodology.warmup,
        clock=clock,
    )
    samples: dict[str, list[float]] = {m.name: [] for m in check.metrics}
    check.setup(ctx)
    try:
        for rep in range(-methodology.warmup, methodology.reps):
            ctx.rep = rep
            values = dict(check.run(ctx))
            missing = [m.name for m in check.metrics if m.name not in values]
            if missing:
                raise SanityError(
                    f"check {check.name!r} did not report metric(s) "
                    f"{missing} (rep {rep})"
                )
            check.sanity(ctx, values)
            if rep < 0:
                continue  # warmup repetitions stay out of the stats
            for metric in check.metrics:
                samples[metric.name].append(float(values[metric.name]))
    finally:
        check.teardown(ctx)
    stats = {
        metric.name: metric_stats(
            samples[metric.name], unit=metric.unit, direction=metric.direction
        )
        for metric in check.metrics
    }
    return stats, methodology.reps


def _grade(
    inst: CheckInstance,
    stats: Mapping[str, MetricStats],
    history: Trajectory,
    env: Mapping[str, Any],
    tolerance: Tolerance,
    window: int,
    waivers,
) -> tuple[list[Verdict], dict[str, Any], str]:
    """Verdict per metric (waivers applied) + the record details block."""
    verdicts: list[Verdict] = []
    details: dict[str, Any] = {}
    for name, stat in stats.items():
        base = rolling_baseline(
            history.records,
            inst.instance_id,
            name,
            window=window,
            env=env,
        )
        verdict = verdict_for(
            stat.median,
            base,
            instance=inst.instance_id,
            metric=name,
            direction=stat.direction,
            tolerance=tolerance,
        )
        if verdict.verdict == "fail":
            waiver = find_waiver(waivers, inst.instance_id, name)
            if waiver is not None:
                verdict = Verdict(
                    instance=verdict.instance,
                    metric=verdict.metric,
                    verdict="warn",
                    ratio=verdict.ratio,
                    value=verdict.value,
                    baseline=verdict.baseline,
                    reason=f"waived: {waiver.reason} ({verdict.reason})",
                )
        verdicts.append(verdict)
        details[name] = {
            "verdict": verdict.verdict,
            "ratio": round(verdict.ratio, 6),
            "baseline": verdict.baseline,
            "reason": verdict.reason,
        }
    return verdicts, details, worst([v.verdict for v in verdicts])


def run_checks(
    patterns: Sequence[str] | None = None,
    *,
    root: str | Path = ".",
    reps: int | None = None,
    warmup: int | None = None,
    tolerance: Tolerance = DEFAULT_TOLERANCE,
    window: int = DEFAULT_WINDOW,
    waivers_path: str | Path | None = None,
    clock: Callable[[], float] = time.perf_counter,
    registry: Mapping[str, type] | None = None,
    dry_run: bool = False,
) -> HarnessResult:
    """Execute matching checks and append graded trajectory records.

    ``registry`` and ``clock`` are injection points for the harness's
    own tests (synthetic checks, fake time); production callers leave
    them alone.  ``dry_run`` measures and grades but appends nothing.
    """
    root = Path(root)
    methodology = DEFAULT_METHODOLOGY.with_reps(reps)
    if warmup is not None:
        methodology = Methodology(warmup=warmup, reps=methodology.reps)
    instances = expand_checks(patterns, registry=registry)
    env = env_fingerprint(root)
    waivers = load_waivers(
        Path(waivers_path) if waivers_path else root / WAIVER_FILENAME
    )
    timestamp = datetime.now(timezone.utc).isoformat(timespec="seconds")

    histories: dict[str, Trajectory] = {}
    for inst in instances:
        if inst.area not in histories:
            histories[inst.area] = load_trajectory(bench_path(root, inst.area))

    outcomes: list[CheckOutcome] = []
    new_records: dict[str, list[tuple[int, RunRecord]]] = {}
    for index, inst in enumerate(instances):
        skip = inst.check.skip_reason(inst.params)
        if skip is not None:
            outcomes.append(
                CheckOutcome(
                    instance_id=inst.instance_id,
                    area=inst.area,
                    status="skipped",
                    verdict="pass",
                    reason=skip,
                )
            )
            continue
        try:
            stats, measured_reps = _measure_instance(inst, methodology, clock)
        except SanityError as exc:
            outcomes.append(
                CheckOutcome(
                    instance_id=inst.instance_id,
                    area=inst.area,
                    status="sanity_failed",
                    verdict="fail",
                    reason=str(exc),
                )
            )
            continue
        verdicts, details, overall = _grade(
            inst, stats, histories[inst.area], env, tolerance, window, waivers
        )
        record = RunRecord(
            run_id=0,  # assigned on file by append_records
            check=inst.check.name,
            instance=inst.instance_id,
            area=inst.area,
            params=dict(inst.params),
            metrics=dict(stats),
            reps=measured_reps,
            warmup=methodology.warmup,
            env=dict(env),
            timestamp=timestamp,
            verdict=overall,
            details=details,
        )
        outcomes.append(
            CheckOutcome(
                instance_id=inst.instance_id,
                area=inst.area,
                status="graded",
                verdict=overall,
                verdicts=tuple(verdicts),
                record=record,
            )
        )
        new_records.setdefault(inst.area, []).append(
            (len(outcomes) - 1, record)
        )

    if not dry_run:
        for area, pairs in new_records.items():
            written = append_records(
                bench_path(root, area), [record for _, record in pairs]
            )
            for (outcome_index, _), record in zip(pairs, written):
                old = outcomes[outcome_index]
                outcomes[outcome_index] = CheckOutcome(
                    instance_id=old.instance_id,
                    area=old.area,
                    status=old.status,
                    verdict=old.verdict,
                    verdicts=old.verdicts,
                    record=record,
                )

    code = max((exit_code(o.verdict) for o in outcomes), default=0)
    return HarnessResult(
        outcomes=tuple(outcomes), exit_code=code, env=dict(env)
    )


def baseline_table(
    patterns: Sequence[str] | None = None,
    *,
    root: str | Path = ".",
    window: int = DEFAULT_WINDOW,
    registry: Mapping[str, type] | None = None,
) -> list[Baseline]:
    """Current rolling baselines for matching instances (env-agnostic)."""
    root = Path(root)
    baselines: list[Baseline] = []
    for inst in expand_checks(patterns, registry=registry):
        history = load_trajectory(bench_path(root, inst.area))
        for metric in inst.check.metrics:
            base = rolling_baseline(
                history.records, inst.instance_id, metric.name, window=window
            )
            if base is not None:
                baselines.append(base)
    return baselines

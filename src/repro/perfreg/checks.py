"""Built-in checks and the measurement functions the gates share.

Every timing loop in this module exists exactly once.  The perfreg
checks call the ``measure_*`` functions with ``repeats=1`` (the
harness supplies repetition: N measured reps after warmup, medians to
the trajectory); the pytest gates in ``benchmarks/`` call the same
functions with ``repeats=methodology.reps`` (best-of, for a stable
speedup ratio) and assert the ``MIN_*`` floors.  One methodology, one
sanity layer, two consumers — the two paths cannot disagree on *how*
a number was produced.

Sanity assertions live *inside* the measurement functions and raise
:class:`~repro.perfreg.check.SanityError`: a perf number from a wrong
answer must be void in both the trajectory and the gate.
"""

from __future__ import annotations

import os
from typing import Any, Mapping

import numpy as np

from repro import units
from repro.perfreg.check import (
    CheckContext,
    LOWER_IS_BETTER,
    Metric,
    PerfCheck,
    SanityError,
)
from repro.perfreg.registry import register

__all__ = [
    "MAX_ROUTER_P50_OVERHEAD",
    "MIN_BATCH_SPEEDUP",
    "MIN_CACHESIM_SPEEDUP",
    "MIN_COST_ADMISSION_P99_SPEEDUP",
    "MIN_MICROBATCH_SPEEDUP",
    "MIN_WIRE_P99_SPEEDUP",
    "MIN_WORKER_SPEEDUP",
    "measure_batch_sweep",
    "measure_cachesim_trace",
    "measure_cost_admission",
    "measure_micro_batching",
    "measure_router_path",
    "measure_serving",
    "measure_wire_path",
    "measure_worker_pool",
    "usable_cores",
]

# ---------------------------------------------------------------------------
# Acceptance floors (the gates' single source of truth)
# ---------------------------------------------------------------------------

#: ``*_batch`` sweep vs scalar python loop on a 10k grid.
MIN_BATCH_SPEEDUP = 5.0
#: Batched cache-trace engine vs scalar per-access replay.
MIN_CACHESIM_SPEEDUP = 10.0
#: Micro-batched serving vs ``max_batch=1``.
MIN_MICROBATCH_SPEEDUP = 5.0
#: Four worker processes vs in-loop execution on the heavy workload.
MIN_WORKER_SPEEDUP = 2.0
#: Zero-copy hot path (binary framing + shm rings + plan cache) vs the
#: NDJSON + per-job-pickle + uncached stack, p99 over TCP, mixed
#: workload, two workers.
MIN_WIRE_P99_SPEEDUP = 5.0
#: The scale-out router's hop tax: one extra loopback hop plus the
#: re-wrap must cost at most this factor in *median* latency over a
#: direct single server on the same wire and workload.  The median,
#: not p99: in this single-process harness every tier shares one event
#: loop, so the routed tail measures scheduler contention, not the hop.
MAX_ROUTER_P50_OVERHEAD = 5.0
#: Cost-model admission + deadline batching vs depth admission at the
#: same past-saturation offered load: p99 latency (measured from the
#: intended arrival instant, rejections included) must improve at
#: least this factor.  The baseline queues everything it accepts and
#: pins its tail at the request deadline; the governed server bounds
#: predicted work in flight, so its tail is the service time of what
#: it admits plus a fast retriable refusal for the rest.
MIN_COST_ADMISSION_P99_SPEEDUP = 1.5

#: Seed of the shared intensity grid (the paper's publication date).
_GRID_SEED = 20130520

#: The scalar/batch comparison machine (the paper's flagship GPU).
_SWEEP_MACHINE = "gtx580-double"


def usable_cores() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 1


# ---------------------------------------------------------------------------
# Core-batch sweep (shared with benchmarks/test_bench_batch.py)
# ---------------------------------------------------------------------------


def _sweep_grid(points: int) -> np.ndarray:
    rng = np.random.default_rng(_GRID_SEED)
    return 10.0 ** rng.uniform(-3.0, 3.0, points)


def measure_batch_sweep(
    *, points: int = 10_000, repeats: int = 1, warmup: int = 1
) -> dict[str, float]:
    """Time the vectorised model sweep against the scalar python loop.

    Returns ``scalar_ms`` / ``batch_ms`` (best-of over ``repeats``,
    rounds interleaved) and their ``speedup``.  Sanity: the two paths
    agree to 1e-12 before anything is timed.
    """
    from repro.core.energy_model import EnergyModel
    from repro.core.power_model import PowerModel
    from repro.core.time_model import TimeModel
    from repro.machines.catalog import get_machine
    from repro.perfreg.methodology import Methodology

    machine = get_machine(_SWEEP_MACHINE)
    grid = _sweep_grid(points)
    t = TimeModel(machine)
    e = EnergyModel(machine)
    p = PowerModel(machine)

    def scalar_sweep() -> np.ndarray:
        return np.array(
            [
                [
                    t.attainable_gflops(float(x)),
                    e.attainable_gflops_per_joule(float(x)),
                    p.power(float(x)),
                ]
                for x in grid
            ]
        )

    def batch_sweep() -> np.ndarray:
        return np.column_stack(
            [
                t.attainable_gflops_batch(grid),
                e.attainable_gflops_per_joule_batch(grid),
                p.power_batch(grid),
            ]
        )

    scalar_values = scalar_sweep()
    batch_values = batch_sweep()
    if not np.allclose(batch_values, scalar_values, rtol=1e-12, atol=0.0):
        raise SanityError(
            "batch sweep diverged from the scalar loop; timing aborted"
        )
    method = Methodology(warmup=warmup, reps=repeats)
    batch_s, scalar_s = method.best_pair(batch_sweep, scalar_sweep)
    return {
        "scalar_ms": units.to_milliseconds(scalar_s),
        "batch_ms": units.to_milliseconds(batch_s),
        "speedup": scalar_s / batch_s,
        "grid_points": float(points),
    }


# ---------------------------------------------------------------------------
# Cachesim FMM trace (shared with benchmarks/test_bench_cachesim.py)
# ---------------------------------------------------------------------------


def measure_cachesim_trace(
    *,
    n_points: int = 4000,
    leaf_capacity: int = 64,
    seed: int = 3,
    repeats: int = 1,
    warmup: int = 1,
) -> dict[str, float]:
    """Time the batched trace engine against the scalar replay.

    The fmm experiment's default geometry; counter-for-counter
    equivalence is asserted on this exact geometry before timing.
    """
    from repro.cachesim import simulate_ulist_traffic
    from repro.fmm.points import uniform_cloud
    from repro.fmm.tree import Octree
    from repro.fmm.ulist import build_ulist
    from repro.fmm.variants import reference_variant
    from repro.perfreg.methodology import Methodology

    positions, densities = uniform_cloud(n_points, seed=seed)
    tree = Octree.build(positions, densities, leaf_capacity=leaf_capacity)
    ulist = build_ulist(tree)
    variant = reference_variant()

    def run_batch():
        return simulate_ulist_traffic(tree, ulist, variant, engine="batch")

    def run_scalar():
        return simulate_ulist_traffic(tree, ulist, variant, engine="scalar")

    # First batch round also compiles and memoises the trace; do the
    # equivalence pin before any timing so the memo is warm for both.
    batch_result = run_batch()
    scalar_result = run_scalar()
    if batch_result.measured != scalar_result.measured:
        raise SanityError(
            "batch trace engine counters diverged from the scalar replay"
        )
    if batch_result.pairs != scalar_result.pairs:
        raise SanityError(
            "batch trace engine pairs diverged from the scalar replay"
        )
    method = Methodology(warmup=warmup, reps=repeats)
    batch_s, scalar_s = method.best_pair(run_batch, run_scalar)
    return {
        "batch_ms": units.to_milliseconds(batch_s),
        "scalar_ms": units.to_milliseconds(scalar_s),
        "speedup": scalar_s / batch_s,
        "accesses": float(batch_result.measured.accesses),
    }


# ---------------------------------------------------------------------------
# Serving (shared with benchmarks/test_bench_service.py)
# ---------------------------------------------------------------------------

#: The serving comparison workload (heaviest analytic scalar path).
_SERVE_MODEL, _SERVE_METRIC = "capped", "energy_per_flop"
_SERVE_MACHINES = ("gtx580-double", "i7-950-double")
#: Four catalog machines whose crc32 routing keys land on four
#: distinct shards at ``workers=4`` — full pool utilisation.
_POOL_MACHINES = (
    "gtx580-double", "gtx580-single", "i7-950-double", "i7-950-single"
)


def _best_report(reports):
    """Highest-throughput run (min-noise analogue of best-of wall time)."""
    return max(reports, key=lambda report: report.throughput)


def measure_serving(
    *,
    requests: int,
    concurrency: int = 64,
    max_batch: int = 64,
    workers: int = 0,
    workload: str = "scalar",
    machines=(),
    open_loop_rate: float | None = None,
    wire: str = "inproc",
    job_transport: str | None = None,
    plan_cache_size: int | None = None,
    router_backends: int = 0,
    replication: int = 1,
    repeats: int = 1,
):
    """One serving configuration, best-of ``repeats`` full runs.

    Returns the winning :class:`~repro.service.loadgen.LoadReport`.
    Sanity: zero transport errors, every request served, and the wire
    framing actually negotiated — on every run, not just the winner.
    """
    from repro.service.loadgen import bench_serving

    machines = tuple(machines) or (
        _POOL_MACHINES if workers else _SERVE_MACHINES
    )
    reports = []
    for _ in range(max(1, repeats)):
        report = bench_serving(
            requests=requests,
            concurrency=concurrency,
            max_batch=max_batch,
            flush_window=units.milliseconds(2.0),
            cache_size=0,
            machines=machines,
            model=_SERVE_MODEL,
            metric=_SERVE_METRIC,
            workload=workload,
            workers=workers,
            open_loop_rate=open_loop_rate,
            wire=wire,
            job_transport=job_transport,
            plan_cache_size=plan_cache_size,
            router_backends=router_backends,
            replication=replication,
        )
        if report.errors:
            raise SanityError(
                f"serving run reported {report.errors} errors "
                f"(workers={workers}, workload={workload})"
            )
        if report.requests != requests:
            raise SanityError(
                f"served {report.requests} of {requests} requests"
            )
        if report.wire != wire:
            raise SanityError(
                f"negotiated {report.wire!r} framing, requested {wire!r}"
            )
        if report.router_backends != router_backends:
            raise SanityError(
                f"ran {report.router_backends} router backends, "
                f"requested {router_backends}"
            )
        reports.append(report)
    return _best_report(reports)


def measure_micro_batching(
    *, requests: int = 4000, repeats: int = 1
) -> dict[str, Any]:
    """Micro-batched vs unbatched serving on the scalar workload.

    Batches only fill when concurrency >= max_batch * n_machines, so
    the batched run offers 128-way concurrency over two machines.
    Sanity: batching genuinely happened in one run and not the other.
    """
    batched = measure_serving(
        requests=requests, concurrency=128, max_batch=64, repeats=repeats
    )
    unbatched = measure_serving(
        requests=requests, concurrency=64, max_batch=1, repeats=repeats
    )
    if batched.mean_batch <= 8.0:
        raise SanityError(
            f"batched run coalesced only {batched.mean_batch:.1f} "
            "requests/batch; the comparison is void"
        )
    if unbatched.engine_calls != requests:
        raise SanityError(
            "unbatched run did not make one engine call per request"
        )
    return {
        "batched": batched,
        "unbatched": unbatched,
        "speedup": batched.throughput / unbatched.throughput,
    }


def measure_wire_path(
    *, requests: int = 1200, workers: int = 2, repeats: int = 1
) -> dict[str, Any]:
    """Zero-copy hot path vs the first-generation serving stack.

    Both runs drive the identical mixed workload over a real loopback
    TCP socket.  The hot path is binary framing, shared-memory ring
    job transport, and the compiled curve-plan cache; the baseline is
    NDJSON framing, per-job pickle transport, and no plan cache — the
    stack as PR 5 left it.  The headline metric is the **p99 latency
    ratio** (text encode/decode and per-job serialisation dominate the
    tail, not the mean); bytes-on-wire ride along.
    """
    fast = measure_serving(
        requests=requests,
        workers=workers,
        workload="mixed",
        wire="binary",
        repeats=repeats,
    )
    slow = measure_serving(
        requests=requests,
        workers=workers,
        workload="mixed",
        wire="ndjson",
        job_transport="pickle",
        plan_cache_size=0,
        repeats=repeats,
    )
    if not (fast.bytes_sent and slow.bytes_sent):
        raise SanityError("a TCP wire run recorded zero bytes on the wire")
    fast_bytes = fast.bytes_sent + fast.bytes_received
    slow_bytes = slow.bytes_sent + slow.bytes_received
    return {
        "binary": fast,
        "ndjson": slow,
        "p99_speedup": slow.p99_ms / fast.p99_ms,
        "throughput_speedup": fast.throughput / slow.throughput,
        "bytes_ratio": slow_bytes / fast_bytes,
    }


def measure_router_path(
    *,
    requests: int = 600,
    backends: int = 2,
    replication: int = 2,
    repeats: int = 1,
) -> dict[str, Any]:
    """Scale-out router over local backends vs one direct server.

    Both runs drive the identical scalar workload over real loopback
    TCP with binary framing.  The routed run inserts a
    :class:`~repro.service.router.RouterServer` (consistent-hash ring
    over ``backends`` local servers at the given replication factor)
    between the client and the engines; the direct run talks to a
    single server.  The headline metric is the **p50 overhead ratio**
    (routed / direct — the cost of the extra hop and the re-wrap);
    p99 and routed throughput ride along.  The median is the graded
    number because all three tiers share one event loop here, so the
    routed tail measures scheduler contention rather than the hop.
    """
    routed = measure_serving(
        requests=requests,
        wire="binary",
        router_backends=backends,
        replication=replication,
        repeats=repeats,
    )
    direct = measure_serving(
        requests=requests,
        wire="binary",
        repeats=repeats,
    )
    if not (routed.bytes_sent and direct.bytes_sent):
        raise SanityError("a TCP wire run recorded zero bytes on the wire")
    return {
        "routed": routed,
        "direct": direct,
        "p50_overhead": routed.p50_ms / direct.p50_ms,
        "p99_overhead": routed.p99_ms / direct.p99_ms,
        "throughput_ratio": routed.throughput / direct.throughput,
    }


#: Request deadline shared by both cost-admission runs: the baseline's
#: tail blows past it once its queue holds a deadline's worth of work
#: (the replies — mostly ``deadline_exceeded`` — arrive even later
#: than this, because the saturated loop fires its timers late).
_ADMISSION_TIMEOUT_MS = 250.0
#: Predicted seconds of admitted work in flight under the governed
#: run — a few dozen heavy requests' worth, so the governed server
#: holds a short queue and refuses the overflow.
_ADMISSION_WORK_BUDGET_S = 0.05


def measure_cost_admission(
    *, requests: int = 600, rate: float = 3000.0, repeats: int = 1
) -> dict[str, Any]:
    """Cost-governed admission vs depth admission past saturation.

    Both runs drive the identical seeded open-loop arrival schedule —
    ``rate`` req/s of the heavy workload, chosen well past single-loop
    capacity — at the same request deadline, with the response cache
    and the curve-plan cache off so every request costs real work.
    The *baseline* admits by queue depth (the deep default queue), so
    accepted requests wait behind everything ahead of them and the
    tail collapses to the deadline.  The *governed* run predicts each
    request's service time with the roofline cost model, bounds
    predicted work in flight to a small budget, sizes batches against
    member deadlines, and refuses the overflow immediately with the
    retriable ``overloaded`` envelope.

    Open-loop latency is measured from the intended arrival instant
    for every request, refused or served — coordinated omission would
    otherwise hide exactly the queueing this measures.  Sanity: the
    governed run genuinely refused some of the stream and genuinely
    served some of it, and the baseline saturated (its p99 is past
    the deadline) — otherwise the comparison is void.
    """
    from repro.service.loadgen import bench_serving

    kwargs: dict[str, Any] = dict(
        requests=requests,
        concurrency=64,
        max_batch=64,
        flush_window=units.milliseconds(2.0),
        cache_size=0,
        machines=_SERVE_MACHINES,
        model=_SERVE_MODEL,
        metric=_SERVE_METRIC,
        workload="heavy",
        open_loop_rate=rate,
        timeout_ms=_ADMISSION_TIMEOUT_MS,
        plan_cache_size=0,
    )
    governed_runs, baseline_runs = [], []
    for _ in range(max(1, repeats)):
        governed = bench_serving(
            admission="cost",
            work_budget=_ADMISSION_WORK_BUDGET_S,
            deadline_batching=True,
            **kwargs,
        )
        baseline = bench_serving(**kwargs)
        if governed.requests != requests or baseline.requests != requests:
            raise SanityError(
                f"admission runs drove {governed.requests}/"
                f"{baseline.requests} of {requests} requests"
            )
        if not 0 < governed.errors < requests:
            raise SanityError(
                f"governed run refused {governed.errors} of {requests} "
                "requests; the budget never engaged (0) or starved "
                "everything (all) — the comparison is void"
            )
        if baseline.p99_ms < _ADMISSION_TIMEOUT_MS:
            raise SanityError(
                f"baseline p99 {baseline.p99_ms:.0f} ms never reached "
                f"the {_ADMISSION_TIMEOUT_MS:.0f} ms deadline; the "
                "offered load did not saturate the server"
            )
        governed_runs.append(governed)
        baseline_runs.append(baseline)
    governed = min(governed_runs, key=lambda report: report.p99_ms)
    baseline = min(baseline_runs, key=lambda report: report.p99_ms)
    return {
        "governed": governed,
        "baseline": baseline,
        "p99_speedup": baseline.p99_ms / governed.p99_ms,
        "p50_speedup": baseline.p50_ms / governed.p50_ms,
        "refused": governed.errors,
    }


def measure_worker_pool(
    *, requests: int = 1600, repeats: int = 1
) -> dict[str, Any]:
    """Four worker processes vs in-loop execution, heavy workload."""
    pooled = measure_serving(
        requests=requests, workers=4, workload="heavy", repeats=repeats
    )
    inloop = measure_serving(
        requests=requests, workers=0, workload="heavy",
        machines=_POOL_MACHINES, repeats=repeats,
    )
    if pooled.workers != 4 or inloop.workers != 0:
        raise SanityError("worker topology did not match the request")
    return {
        "pooled": pooled,
        "inloop": inloop,
        "speedup": pooled.throughput / inloop.throughput,
    }


# ---------------------------------------------------------------------------
# The registered checks
# ---------------------------------------------------------------------------

_MS_METRICS = (
    Metric("p50_ms", "ms", LOWER_IS_BETTER),
    Metric("p99_ms", "ms", LOWER_IS_BETTER),
)


@register
class BatchSweepCheck(PerfCheck):
    """Vectorised model sweep vs the scalar loop (PR 1's 5x win)."""

    name = "batch.sweep"
    area = "batch"
    params = {"points": (10_000,)}
    metrics = (
        Metric("speedup", "x"),
        Metric("batch_ms", "ms", LOWER_IS_BETTER),
        Metric("scalar_ms", "ms", LOWER_IS_BETTER),
    )

    def run(self, ctx: CheckContext) -> Mapping[str, float]:
        values = measure_batch_sweep(
            points=ctx.params["points"], repeats=1, warmup=0
        )
        values.pop("grid_points")
        return values


@register
class CachesimTraceCheck(PerfCheck):
    """Batched FMM cache-trace engine vs scalar replay (PR 2's 10x win)."""

    name = "cachesim.fmm_batch_lru"
    area = "cachesim"
    params = {"n_points": (4000,)}
    metrics = (
        Metric("speedup", "x"),
        Metric("batch_ms", "ms", LOWER_IS_BETTER),
        Metric("scalar_ms", "ms", LOWER_IS_BETTER),
    )

    def setup(self, ctx: CheckContext) -> None:
        # The geometry survives across reps via the memoised trace
        # cache inside cachesim; nothing to stash explicitly.
        pass

    def run(self, ctx: CheckContext) -> Mapping[str, float]:
        values = measure_cachesim_trace(
            n_points=ctx.params["n_points"], repeats=1, warmup=0
        )
        values.pop("accesses")
        return values


class _ServingCheck(PerfCheck):
    """Shared scaffolding for the serving-path checks."""

    area = "service"
    #: Request-stream length for trajectory runs (smaller than the
    #: gates' streams: a trajectory point repeats N times per run).
    requests = 800

    def _report_values(self, report) -> dict[str, float]:
        return {
            "throughput_rps": report.throughput,
            "p50_ms": report.p50_ms,
            "p99_ms": report.p99_ms,
        }


@register
class ClosedLoopCheck(_ServingCheck):
    """Closed-loop serving throughput/latency at workers 0 and 4."""

    name = "service.closed_loop"
    params = {"workers": (0, 4)}
    metrics = (Metric("throughput_rps", "req/s"),) + _MS_METRICS

    def run(self, ctx: CheckContext) -> Mapping[str, float]:
        workers = ctx.params["workers"]
        report = measure_serving(
            requests=self.requests,
            workers=workers,
            workload="mixed" if workers else "scalar",
        )
        return self._report_values(report)


@register
class OpenLoopCheck(_ServingCheck):
    """Open-loop (Poisson) latency under a fixed offered rate."""

    name = "service.open_loop"
    params = {"workers": (0, 4)}
    requests = 400
    #: Offered rate kept well under capacity: open-loop percentiles
    #: measure queueing discipline, not saturation collapse.
    rate = 400.0
    metrics = (Metric("throughput_rps", "req/s"),) + _MS_METRICS

    def run(self, ctx: CheckContext) -> Mapping[str, float]:
        report = measure_serving(
            requests=self.requests,
            workers=ctx.params["workers"],
            workload="mixed",
            open_loop_rate=self.rate,
        )
        return self._report_values(report)


@register
class MicroBatchingCheck(_ServingCheck):
    """The 5x micro-batching win as a tracked trajectory."""

    name = "service.micro_batching"
    requests = 1500
    metrics = (
        Metric("speedup", "x"),
        Metric("batched_rps", "req/s"),
        Metric("unbatched_rps", "req/s"),
    )

    def run(self, ctx: CheckContext) -> Mapping[str, float]:
        values = measure_micro_batching(requests=self.requests)
        return {
            "speedup": values["speedup"],
            "batched_rps": values["batched"].throughput,
            "unbatched_rps": values["unbatched"].throughput,
        }


@register
class WireFramingCheck(_ServingCheck):
    """The 5x zero-copy hot-path win as a tracked trajectory."""

    name = "service.wire_framing"
    requests = 600
    metrics = (
        Metric("p99_speedup", "x"),
        Metric("binary_p99_ms", "ms", LOWER_IS_BETTER),
        Metric("ndjson_p99_ms", "ms", LOWER_IS_BETTER),
        Metric("bytes_ratio", "x"),
    )

    def skip_reason(self, params: Mapping[str, Any]) -> str | None:
        cores = usable_cores()
        if cores < 2:
            return (
                f"wire-path comparison runs two workers; needs >= 2 "
                f"usable cores, have {cores}"
            )
        return None

    def run(self, ctx: CheckContext) -> Mapping[str, float]:
        values = measure_wire_path(requests=self.requests)
        return {
            "p99_speedup": values["p99_speedup"],
            "binary_p99_ms": values["binary"].p99_ms,
            "ndjson_p99_ms": values["ndjson"].p99_ms,
            "bytes_ratio": values["bytes_ratio"],
        }


@register
class RouterCheck(_ServingCheck):
    """The scale-out router's hop tax as a tracked trajectory.

    Grades only self-normalising ratios: routed and direct runs are
    measured back to back in the same process, so routed/direct
    cancels whatever speed the container happens to have that minute.
    Absolute req/s and ms swing ±30% run to run here and would flake
    any fixed regression band; the benchmark prints them instead.
    """

    name = "service.router"
    requests = 600
    metrics = (
        Metric("p50_overhead", "x", LOWER_IS_BETTER),
        Metric("throughput_ratio", "x"),
    )

    def run(self, ctx: CheckContext) -> Mapping[str, float]:
        values = measure_router_path(requests=self.requests)
        return {
            "p50_overhead": values["p50_overhead"],
            "throughput_ratio": values["throughput_ratio"],
        }


@register
class CostAdmissionCheck(_ServingCheck):
    """Cost-model admission's p99 win over depth admission.

    Self-normalising like the router check: governed and baseline are
    measured back to back at the identical seeded offered load, so
    the graded ratio cancels container speed.  The governed run's own
    percentiles ride along for the trajectory.
    """

    name = "service.cost_admission"
    requests = 400
    metrics = (
        Metric("p99_speedup", "x"),
        Metric("governed_p99_ms", "ms", LOWER_IS_BETTER),
        Metric("baseline_p99_ms", "ms", LOWER_IS_BETTER),
    )

    def run(self, ctx: CheckContext) -> Mapping[str, float]:
        values = measure_cost_admission(requests=self.requests)
        return {
            "p99_speedup": values["p99_speedup"],
            "governed_p99_ms": values["governed"].p99_ms,
            "baseline_p99_ms": values["baseline"].p99_ms,
        }


@register
class WorkerPoolCheck(_ServingCheck):
    """The 2x worker-pool win as a tracked trajectory."""

    name = "service.worker_pool"
    requests = 800
    metrics = (
        Metric("speedup", "x"),
        Metric("pooled_rps", "req/s"),
        Metric("inloop_rps", "req/s"),
    )

    def skip_reason(self, params: Mapping[str, Any]) -> str | None:
        cores = usable_cores()
        if cores < 4:
            return f"worker-pool speedup needs >= 4 usable cores, have {cores}"
        return None

    def run(self, ctx: CheckContext) -> Mapping[str, float]:
        values = measure_worker_pool(requests=self.requests)
        return {
            "speedup": values["speedup"],
            "pooled_rps": values["pooled"].throughput,
            "inloop_rps": values["inloop"].throughput,
        }

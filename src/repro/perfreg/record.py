"""The trajectory record schema and its JSON round-trip.

One :class:`RunRecord` is one (check instance, run) data point: the
median and IQR of every metric across the measured repetitions, the
methodology that produced them, the environment fingerprint, and the
verdict the run was graded with.  Records serialise to a single JSON
object per line of ``BENCH_<area>.json`` (JSON Lines — the only layout
where "append" is a real operation and a torn final write cannot
corrupt history).

``SCHEMA_VERSION`` is embedded in every record; ``from_json`` rejects
records from the future rather than misreading them, and tolerates
(ignores) unknown extra keys from the past.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from typing import Any, Mapping

from repro.exceptions import ReproError

__all__ = [
    "MetricStats",
    "RecordError",
    "RunRecord",
    "SCHEMA_VERSION",
    "metric_stats",
]

SCHEMA_VERSION = 1


class RecordError(ReproError):
    """A trajectory line does not decode to a schema-valid record."""


@dataclass(frozen=True)
class MetricStats:
    """Median + spread of one metric across a run's repetitions."""

    median: float
    iqr: float
    unit: str
    direction: str

    def __post_init__(self) -> None:
        for label, value in (("median", self.median), ("iqr", self.iqr)):
            if not math.isfinite(value):
                raise RecordError(f"metric {label} must be finite, got {value}")
        if self.iqr < 0:
            raise RecordError(f"iqr must be >= 0, got {self.iqr}")


def metric_stats(
    values: list[float], *, unit: str, direction: str
) -> MetricStats:
    """Median + interquartile range of per-rep values (sorted copy).

    Quartiles use the linear-interpolation convention (numpy's default
    ``quantile`` method) but are computed in pure python: the record
    layer must not care how large the rep count is, and 3-5 reps is
    the norm.
    """
    if not values:
        raise RecordError("metric_stats needs at least one value")
    ordered = sorted(float(v) for v in values)

    def quantile(q: float) -> float:
        pos = q * (len(ordered) - 1)
        lo = int(math.floor(pos))
        hi = int(math.ceil(pos))
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    return MetricStats(
        median=quantile(0.5),
        iqr=quantile(0.75) - quantile(0.25),
        unit=unit,
        direction=direction,
    )


@dataclass(frozen=True)
class RunRecord:
    """One trajectory data point: a graded, fingerprinted measurement."""

    run_id: int
    check: str
    instance: str
    area: str
    params: dict[str, Any]
    metrics: dict[str, MetricStats]
    reps: int
    warmup: int
    env: dict[str, Any]
    timestamp: str
    verdict: str = "pass"
    #: Per-metric verdicts plus optional reasons (bootstrap, waiver).
    details: dict[str, Any] = field(default_factory=dict)
    schema: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.run_id < 0:
            raise RecordError(f"run_id must be >= 0, got {self.run_id}")
        if self.verdict not in ("pass", "warn", "fail"):
            raise RecordError(f"unknown verdict {self.verdict!r}")
        if not self.metrics:
            raise RecordError(f"record {self.instance!r} has no metrics")

    def to_json(self) -> str:
        """One compact JSON line (no embedded newlines, sorted keys)."""
        payload = asdict(self)
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "RunRecord":
        """Decode one trajectory line; raise :class:`RecordError` if torn."""
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise RecordError(f"undecodable trajectory line: {exc}") from exc
        if not isinstance(payload, dict):
            raise RecordError(
                f"trajectory line is {type(payload).__name__}, not an object"
            )
        schema = payload.get("schema")
        if not isinstance(schema, int) or schema < 1:
            raise RecordError(f"bad schema marker {schema!r}")
        if schema > SCHEMA_VERSION:
            raise RecordError(
                f"record schema {schema} is newer than this reader "
                f"({SCHEMA_VERSION}); refusing to guess"
            )
        try:
            metrics = {
                name: MetricStats(**stats)
                for name, stats in payload["metrics"].items()
            }
            return cls(
                run_id=payload["run_id"],
                check=payload["check"],
                instance=payload["instance"],
                area=payload["area"],
                params=dict(payload["params"]),
                metrics=metrics,
                reps=payload["reps"],
                warmup=payload["warmup"],
                env=dict(payload["env"]),
                timestamp=payload["timestamp"],
                verdict=payload.get("verdict", "pass"),
                details=dict(payload.get("details", {})),
                schema=schema,
            )
        except (KeyError, TypeError, AttributeError) as exc:
            raise RecordError(f"malformed trajectory record: {exc}") from exc

    def metric_median(self, name: str) -> float:
        return self.metrics[name].median

    def summary(self) -> str:
        """One human line: instance, headline metrics, verdict."""
        parts = ", ".join(
            f"{name}={stats.median:g}{' ' + stats.unit if stats.unit else ''}"
            for name, stats in sorted(self.metrics.items())
        )
        return f"run {self.run_id} {self.instance}: {parts} [{self.verdict}]"


def validate_record_payload(payload: Mapping[str, Any]) -> RunRecord:
    """Dict -> record via the JSON path (the schema test entry point)."""
    return RunRecord.from_json(json.dumps(payload))

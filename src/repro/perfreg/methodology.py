"""The one set of measurement-methodology constants.

Before this module existed, every ``benchmarks/test_bench_*.py`` file
carried its own ad-hoc warmup/repeat constants (``repeats=3`` here,
``ROUNDS = 5`` there), and nothing forced the pytest gates and any
other timing path to agree.  Now both the perfreg checks and the
benchmark gates (via the ``methodology`` fixture in
``benchmarks/conftest.py``) consume this single definition, so the two
paths cannot drift apart on *how* a number was measured.

``best_of`` deliberately takes the **minimum** wall time over repeats:
for a deterministic CPU-bound workload the minimum is the least-noise
estimator (everything above it is scheduler/throttling interference).
Medians across reps are what the *trajectory* records — the min is for
intra-rep speedup ratios, where both sides of the ratio should see the
machine at its best.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable, TypeVar

__all__ = [
    "DEFAULT_METHODOLOGY",
    "GATE_METHODOLOGY",
    "Methodology",
]

T = TypeVar("T")


@dataclass(frozen=True)
class Methodology:
    """How a perf number gets measured: warmup + repetition policy."""

    #: Untimed repetitions before measurement (JIT-style one-time costs,
    #: trace compilation, pool cold boot stay out of the numbers).
    warmup: int = 1
    #: Timed repetitions; the trajectory records median + IQR across
    #: them, ratio-style gates take the best.
    reps: int = 5

    def __post_init__(self) -> None:
        if self.warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup}")
        if self.reps < 1:
            raise ValueError(f"reps must be >= 1, got {self.reps}")

    def with_reps(self, reps: int | None) -> "Methodology":
        """This methodology with ``reps`` overridden (``None`` keeps it)."""
        return self if reps is None else replace(self, reps=reps)

    def best_of(
        self,
        func: Callable[[], object],
        *,
        clock: Callable[[], float] = time.perf_counter,
    ) -> float:
        """Fastest wall time of ``func`` over ``reps`` timed calls.

        Warmup calls run first, untimed.  The min damps scheduler
        noise — see the module docstring for why min, not mean.
        """
        for _ in range(self.warmup):
            func()
        best = float("inf")
        for _ in range(self.reps):
            started = clock()
            func()
            best = min(best, clock() - started)
        return best

    def best_pair(
        self,
        first: Callable[[], object],
        second: Callable[[], object],
        *,
        clock: Callable[[], float] = time.perf_counter,
    ) -> tuple[float, float]:
        """Best wall time of two competing paths, rounds *interleaved*.

        (first, second, first, second, …) so both paths see the same
        machine mood — the ratio stays stable even when absolute times
        wobble under CPU throttling.  This is the discipline the
        cachesim gate pioneered, promoted to the shared methodology.
        """
        for _ in range(self.warmup):
            first()
            second()
        best_first = float("inf")
        best_second = float("inf")
        for _ in range(self.reps):
            started = clock()
            first()
            best_first = min(best_first, clock() - started)
            started = clock()
            second()
            best_second = min(best_second, clock() - started)
        return best_first, best_second


#: What ``repro perfreg run`` uses unless ``--reps/--warmup`` override.
DEFAULT_METHODOLOGY = Methodology(warmup=1, reps=5)

#: What the pytest benchmark gates use: fewer reps (each gate repeats
#: a heavyweight end-to-end workload; 3 best-of rounds match the
#: pre-perfreg constants the gates were tuned with).
GATE_METHODOLOGY = Methodology(warmup=1, reps=3)

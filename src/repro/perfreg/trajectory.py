"""The append-only ``BENCH_<area>.json`` trajectory store.

Layout: JSON Lines — one :class:`~repro.perfreg.record.RunRecord`
object per line, oldest first.  Three invariants, all property-tested
in ``tests/perfreg/test_trajectory.py``:

* **Atomic append.**  A writer never mutates the live file in place:
  it reads the current history, writes history + new records to a
  temp file in the same directory, then ``os.replace``\\ s it over the
  target.  A reader (or a crash) can therefore never observe a
  half-written *history* — at worst the final line of a pre-perfreg
  writer is torn, which the loader tolerates.
* **Serialised writers.**  The read-modify-replace cycle runs under an
  ``O_CREAT | O_EXCL`` lock file (with stale-lock expiry), so two
  concurrent appenders cannot lose each other's records.
* **Monotone run ids.**  ``next_run_id`` is 1 + the max id on file;
  ids never repeat and never decrease down the file.

Corruption policy: a truncated or undecodable **last** line (torn
write, disk-full) is skipped with a note and history before it
survives.  Undecodable lines *before* the last are reported the same
way — data loss is logged, never silently absorbed into a verdict.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.exceptions import ReproError
from repro.perfreg.record import RecordError, RunRecord

__all__ = [
    "Trajectory",
    "TrajectoryLockError",
    "append_record",
    "append_records",
    "bench_path",
    "load_records",
    "load_trajectory",
    "next_run_id",
]

#: Seconds after which a writer lock is presumed orphaned (a crashed
#: writer) and broken.  Appends are milliseconds of work; a minute is
#: conservative by three orders of magnitude.
_LOCK_STALE_S = 60.0

#: Seconds a writer waits for the lock before giving up.
_LOCK_TIMEOUT_S = 30.0


class TrajectoryLockError(ReproError):
    """Could not acquire the trajectory writer lock in time."""


def bench_path(root: str | os.PathLike[str], area: str) -> Path:
    """``<root>/BENCH_<area>.json`` — the per-area trajectory file."""
    if not area or any(ch in area for ch in "/\\. "):
        raise ValueError(f"bad trajectory area {area!r}")
    return Path(root) / f"BENCH_{area}.json"


@dataclass(frozen=True)
class Trajectory:
    """Decoded history of one ``BENCH_*.json`` file."""

    path: Path
    records: tuple[RunRecord, ...]
    #: (line number, reason) for lines that failed to decode.
    skipped: tuple[tuple[int, str], ...] = field(default_factory=tuple)

    def last_green(
        self, instance: str, *, limit: int
    ) -> tuple[RunRecord, ...]:
        """Up to ``limit`` most recent ``pass`` records for an instance."""
        green = [
            record
            for record in self.records
            if record.instance == instance and record.verdict == "pass"
        ]
        return tuple(green[-limit:])

    def instances(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.instance, None)
        return tuple(seen)


def load_trajectory(path: str | os.PathLike[str]) -> Trajectory:
    """Decode a trajectory file, tolerating a torn/corrupt tail.

    Missing file -> empty trajectory (the first-run bootstrap path).
    """
    target = Path(path)
    if not target.exists():
        return Trajectory(path=target, records=())
    records: list[RunRecord] = []
    skipped: list[tuple[int, str]] = []
    with target.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                records.append(RunRecord.from_json(stripped))
            except RecordError as exc:
                skipped.append((lineno, str(exc)))
    return Trajectory(
        path=target, records=tuple(records), skipped=tuple(skipped)
    )


def load_records(path: str | os.PathLike[str]) -> tuple[RunRecord, ...]:
    """Just the decodable records of a trajectory file."""
    return load_trajectory(path).records


def next_run_id(records: Iterable[RunRecord]) -> int:
    """1 + the largest run id on file (1 for an empty/missing file)."""
    largest = 0
    for record in records:
        largest = max(largest, record.run_id)
    return largest + 1


def _acquire_lock(lock_path: Path, *, timeout: float) -> None:
    deadline = time.monotonic() + timeout
    while True:
        try:
            fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            try:
                age = time.time() - lock_path.stat().st_mtime
            except FileNotFoundError:
                continue  # holder just released; retry immediately
            if age > _LOCK_STALE_S:
                # Orphaned lock (crashed writer): break it and retry.
                try:
                    lock_path.unlink()
                except FileNotFoundError:
                    pass
                continue
            if time.monotonic() >= deadline:
                raise TrajectoryLockError(
                    f"timed out after {timeout:g}s waiting for "
                    f"{lock_path} (held {age:.1f}s)"
                )
            time.sleep(0.01)
        else:
            os.write(fd, str(os.getpid()).encode("ascii"))
            os.close(fd)
            return


def _release_lock(lock_path: Path) -> None:
    try:
        lock_path.unlink()
    except FileNotFoundError:  # pragma: no cover - stale-broken by a peer
        pass


def append_records(
    path: str | os.PathLike[str],
    records: Sequence[RunRecord],
    *,
    timeout: float = _LOCK_TIMEOUT_S,
) -> tuple[RunRecord, ...]:
    """Atomically append ``records`` to a trajectory file.

    Each record's ``run_id`` is rewritten to the next id on file at
    append time (ids are an on-file property, not a caller promise —
    that is what keeps them monotone under concurrent writers).
    Returns the records as written.  The whole read-modify-replace
    cycle holds the writer lock; the replace itself is ``os.replace``
    on a temp file created in the target's directory, so readers see
    either the old file or the new one, never a mixture.
    """
    if not records:
        return ()
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    lock_path = target.with_name(target.name + ".lock")
    _acquire_lock(lock_path, timeout=timeout)
    try:
        existing = load_trajectory(target)
        run_id = next_run_id(existing.records)
        written: list[RunRecord] = []
        for offset, record in enumerate(records):
            written.append(
                RunRecord(
                    run_id=run_id + offset,
                    check=record.check,
                    instance=record.instance,
                    area=record.area,
                    params=record.params,
                    metrics=record.metrics,
                    reps=record.reps,
                    warmup=record.warmup,
                    env=record.env,
                    timestamp=record.timestamp,
                    verdict=record.verdict,
                    details=record.details,
                    schema=record.schema,
                )
            )
        tmp_path = target.with_name(
            f".{target.name}.{os.getpid()}.{time.monotonic_ns()}.tmp"
        )
        lines = [record.to_json() for record in existing.records]
        lines.extend(record.to_json() for record in written)
        tmp_path.write_text("".join(line + "\n" for line in lines), "utf-8")
        os.replace(tmp_path, target)
        return tuple(written)
    finally:
        _release_lock(lock_path)


def append_record(
    path: str | os.PathLike[str],
    record: RunRecord,
    *,
    timeout: float = _LOCK_TIMEOUT_S,
) -> RunRecord:
    """Append one record (see :func:`append_records`)."""
    return append_records(path, [record], timeout=timeout)[0]

"""Reasoned waivers for known regressions.

Sometimes a regression is real, understood, and accepted for now (a
dependency upgrade, a correctness fix that costs throughput).  The
harness must not teach people to delete checks or inflate tolerances;
instead a waiver downgrades a specific ``fail`` to ``warn`` — visibly,
with a mandatory reason, exactly like replint's
``# replint: ignore[RLnnn] -- reason`` discipline.

Waiver file (default ``.perfreg-waivers`` at the trajectory root), one
waiver per line::

    <instance-glob> <metric-glob> -- <reason>

    # comments and blank lines are skipped
    service.closed_loop[workers=4] throughput_rps -- runner downgraded to 2 cores, tracked in ROADMAP item 1
    cachesim.* * -- numpy 2.x upgrade costs ~15%, accepted 2026-08-08

A waiver without a reason is a hard error — an unexplained waiver is
just a deleted check with extra steps.  Waivers never touch ``warn``
or ``pass`` verdicts and never hide the regression: the waived verdict
keeps the measured ratio and gains the waiver's reason.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Sequence

from repro.exceptions import ReproError

__all__ = [
    "Waiver",
    "WaiverError",
    "find_waiver",
    "load_waivers",
    "parse_waiver_line",
]

#: Default waiver file name, resolved against the trajectory root.
WAIVER_FILENAME = ".perfreg-waivers"


class WaiverError(ReproError):
    """A waiver line is malformed (usually: missing ``-- reason``)."""


@dataclass(frozen=True)
class Waiver:
    """One ``fail -> warn`` downgrade rule with its justification."""

    instance_pattern: str
    metric_pattern: str
    reason: str

    def matches(self, instance: str, metric: str) -> bool:
        return fnmatchcase(instance, self.instance_pattern) and fnmatchcase(
            metric, self.metric_pattern
        )


def parse_waiver_line(line: str, *, lineno: int = 0) -> Waiver | None:
    """One line -> a waiver, ``None`` for blanks/comments.

    Grammar: ``<instance-glob> <metric-glob> -- <reason>``; the reason
    is mandatory and must be non-empty after stripping.
    """
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    where = f"waiver line {lineno}" if lineno else "waiver line"
    head, sep, reason = stripped.partition("--")
    if not sep:
        raise WaiverError(
            f"{where}: missing ' -- reason' (an unexplained waiver is a "
            f"deleted check with extra steps): {stripped!r}"
        )
    reason = reason.strip()
    if not reason:
        raise WaiverError(f"{where}: empty reason after '--': {stripped!r}")
    fields = head.split()
    if len(fields) != 2:
        raise WaiverError(
            f"{where}: expected '<instance-glob> <metric-glob> -- reason', "
            f"got {stripped!r}"
        )
    return Waiver(
        instance_pattern=fields[0], metric_pattern=fields[1], reason=reason
    )


def load_waivers(path: str | Path) -> tuple[Waiver, ...]:
    """Parse a waiver file; a missing file is an empty waiver set."""
    target = Path(path)
    if not target.exists():
        return ()
    waivers: list[Waiver] = []
    for lineno, line in enumerate(
        target.read_text("utf-8").splitlines(), start=1
    ):
        waiver = parse_waiver_line(line, lineno=lineno)
        if waiver is not None:
            waivers.append(waiver)
    return tuple(waivers)


def find_waiver(
    waivers: Sequence[Waiver], instance: str, metric: str
) -> Waiver | None:
    """First waiver covering (instance, metric), or ``None``."""
    for waiver in waivers:
        if waiver.matches(instance, metric):
            return waiver
    return None

"""Rolling-baseline policy and verdict mapping.

The baseline for a (check instance, metric) is the **median of that
metric's medians over the last K green runs** in the trajectory (green
= overall verdict ``pass``).  Median-of-medians is deliberately dull:
one lucky or throttled run cannot drag the reference, and a slow
regression that sneaks in under the warn band still has to fight K/2
healthy runs before it owns the baseline.

Grading is direction-aware and relative.  With baseline ``b`` and
fresh value ``v``, the *regression ratio* is::

    higher_is_better:  r = (b - v) / b     (throughput fell)
    lower_is_better:   r = (v - b) / b     (latency rose)

and the tolerance band maps ``r`` to a verdict::

    r <= warn_ratio                  -> pass
    warn_ratio < r <= fail_ratio     -> warn
    r >  fail_ratio                  -> fail

Improvements (negative ``r``) always pass — this harness gates
regressions, it does not punish getting faster.  A first run with no
green history **bootstraps**: verdict ``pass`` with a recorded reason,
and the run seeds the baseline for its successors.

Exit codes: ``pass`` -> 0, ``warn`` -> 1, ``fail`` -> 2 (the CLI/CI
contract, mirroring replint's 0/1/2 discipline).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import median
from typing import Mapping, Sequence

from repro.perfreg.check import HIGHER_IS_BETTER, LOWER_IS_BETTER
from repro.perfreg.env import same_environment
from repro.perfreg.record import RunRecord

__all__ = [
    "Baseline",
    "DEFAULT_TOLERANCE",
    "DEFAULT_WINDOW",
    "Tolerance",
    "Verdict",
    "exit_code",
    "regression_ratio",
    "rolling_baseline",
    "verdict_for",
    "worst",
]

#: K: how many green runs the rolling median looks back over.
DEFAULT_WINDOW = 5

_VERDICT_ORDER = {"pass": 0, "warn": 1, "fail": 2}


@dataclass(frozen=True)
class Tolerance:
    """The band around the baseline: how much regression is how bad."""

    warn_ratio: float = 0.10
    fail_ratio: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.warn_ratio <= self.fail_ratio:
            raise ValueError(
                f"need 0 <= warn_ratio <= fail_ratio, got "
                f"warn={self.warn_ratio!r} fail={self.fail_ratio!r}"
            )


DEFAULT_TOLERANCE = Tolerance()


@dataclass(frozen=True)
class Baseline:
    """The reference value one metric is graded against."""

    instance: str
    metric: str
    value: float
    direction: str
    #: Run ids of the green records the rolling median covers.
    run_ids: tuple[int, ...]

    @property
    def window(self) -> int:
        return len(self.run_ids)


@dataclass(frozen=True)
class Verdict:
    """One graded metric: the ratio, the band it landed in, and why."""

    instance: str
    metric: str
    verdict: str
    ratio: float
    value: float
    baseline: float | None
    reason: str = ""


def exit_code(verdict: str) -> int:
    """``pass``/``warn``/``fail`` -> 0/1/2."""
    return _VERDICT_ORDER[verdict]


def worst(verdicts: Sequence[str]) -> str:
    """The most severe of several verdicts (``pass`` if none)."""
    if not verdicts:
        return "pass"
    return max(verdicts, key=lambda v: _VERDICT_ORDER[v])


def regression_ratio(
    value: float, baseline: float, direction: str
) -> float:
    """Signed relative regression; positive means *worse*."""
    if baseline == 0 or not math.isfinite(baseline):
        return 0.0
    if direction == HIGHER_IS_BETTER:
        return (baseline - value) / abs(baseline)
    if direction == LOWER_IS_BETTER:
        return (value - baseline) / abs(baseline)
    raise ValueError(f"unknown direction {direction!r}")


def rolling_baseline(
    records: Sequence[RunRecord],
    instance: str,
    metric: str,
    *,
    window: int = DEFAULT_WINDOW,
    env: Mapping[str, object] | None = None,
) -> Baseline | None:
    """Median of the metric over the last ``window`` green runs.

    ``env`` (the fresh run's fingerprint) filters history down to
    comparable environments — a baseline earned on a 16-core runner
    must not grade a 2-core laptop.  Returns ``None`` when no green,
    comparable history exists (the bootstrap case).
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    green = [
        record
        for record in records
        if record.instance == instance
        and record.verdict == "pass"
        and metric in record.metrics
        and (env is None or same_environment(record.env, env))
    ]
    if not green:
        return None
    tail = green[-window:]
    sample = tail[0].metrics[metric]
    return Baseline(
        instance=instance,
        metric=metric,
        value=median(r.metrics[metric].median for r in tail),
        direction=sample.direction,
        run_ids=tuple(r.run_id for r in tail),
    )


def verdict_for(
    value: float,
    baseline: Baseline | None,
    *,
    instance: str,
    metric: str,
    direction: str,
    tolerance: Tolerance = DEFAULT_TOLERANCE,
) -> Verdict:
    """Grade one fresh metric value against its rolling baseline."""
    if baseline is None:
        return Verdict(
            instance=instance,
            metric=metric,
            verdict="pass",
            ratio=0.0,
            value=value,
            baseline=None,
            reason="bootstrap: no green history, this run seeds the baseline",
        )
    ratio = regression_ratio(value, baseline.value, direction)
    if ratio <= tolerance.warn_ratio:
        label, reason = "pass", ""
    elif ratio <= tolerance.fail_ratio:
        label = "warn"
        reason = (
            f"regressed {ratio:.1%} vs rolling baseline {baseline.value:g} "
            f"(warn band {tolerance.warn_ratio:.0%}..{tolerance.fail_ratio:.0%})"
        )
    else:
        label = "fail"
        reason = (
            f"regressed {ratio:.1%} vs rolling baseline {baseline.value:g} "
            f"(fail threshold {tolerance.fail_ratio:.0%})"
        )
    return Verdict(
        instance=instance,
        metric=metric,
        verdict=label,
        ratio=ratio,
        value=value,
        baseline=baseline.value,
        reason=reason,
    )

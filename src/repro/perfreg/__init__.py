"""Continuous performance-regression harness (``repro perfreg``).

The repo's benchmark gates (``benchmarks/test_bench_*.py``) answer one
binary question per run — "is the fast path still >= Kx?" — and then
throw the numbers away.  This package keeps them: every registered
check runs its workload N repetitions (after warmup), records the
median and IQR of each declared metric together with an environment
fingerprint, appends the record to a rolling ``BENCH_<area>.json``
trajectory at the repo root, and grades the fresh numbers against a
rolling baseline (median of the last K green runs) with a tolerance
band.  The verdict maps to an exit code the CI job can act on:

===========  ==========  =============================================
verdict      exit code   meaning
===========  ==========  =============================================
``pass``     0           within the warn tolerance of the baseline
``warn``     1           regressed past warn but not past fail
``fail``     2           regressed past the fail tolerance
===========  ==========  =============================================

Layout:

* :mod:`repro.perfreg.check` — the declarative check model
  (parameters, setup/run/teardown lifecycle, sanity assertions, named
  metrics with a direction).
* :mod:`repro.perfreg.registry` — check registration and glob-based
  parameter expansion.
* :mod:`repro.perfreg.methodology` — the one set of warmup/repeat
  constants shared with the pytest benchmark gates.
* :mod:`repro.perfreg.trajectory` — the append-only ``BENCH_*.json``
  store (atomic temp-file + rename, lock-guarded, corruption-tolerant).
* :mod:`repro.perfreg.baseline` — rolling-median baseline policy and
  verdict mapping.
* :mod:`repro.perfreg.waivers` — reasoned waivers for known
  regressions (the replint ``ignore -- reason`` discipline).
* :mod:`repro.perfreg.checks` — the built-in service / cachesim /
  core-batch checks and the measurement functions the benchmark gates
  wrap.
* :mod:`repro.perfreg.harness` — the run/report/baseline entry points
  behind the CLI verb.

See ``docs/PERFREG.md`` for the check-author guide.
"""

from __future__ import annotations

from repro.perfreg.baseline import (
    Baseline,
    Tolerance,
    Verdict,
    exit_code,
    rolling_baseline,
    verdict_for,
)
from repro.perfreg.check import (
    CheckContext,
    Metric,
    PerfCheck,
    SanityError,
)
from repro.perfreg.harness import HarnessResult, run_checks
from repro.perfreg.methodology import DEFAULT_METHODOLOGY, Methodology
from repro.perfreg.record import MetricStats, RunRecord, SCHEMA_VERSION
from repro.perfreg.registry import all_checks, expand_checks, register
from repro.perfreg.trajectory import (
    Trajectory,
    append_record,
    bench_path,
    load_records,
)
from repro.perfreg.waivers import Waiver, load_waivers, parse_waiver_line

__all__ = [
    "Baseline",
    "CheckContext",
    "DEFAULT_METHODOLOGY",
    "HarnessResult",
    "Methodology",
    "Metric",
    "MetricStats",
    "PerfCheck",
    "RunRecord",
    "SCHEMA_VERSION",
    "SanityError",
    "Tolerance",
    "Trajectory",
    "Verdict",
    "Waiver",
    "all_checks",
    "append_record",
    "bench_path",
    "exit_code",
    "expand_checks",
    "load_records",
    "load_waivers",
    "parse_waiver_line",
    "register",
    "rolling_baseline",
    "run_checks",
    "verdict_for",
]

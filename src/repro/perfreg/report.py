"""Rendering for ``perfreg run`` / ``report`` / ``baseline`` output."""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Sequence

from repro.perfreg.baseline import Baseline
from repro.perfreg.harness import HarnessResult
from repro.perfreg.trajectory import Trajectory

__all__ = [
    "render_baselines",
    "render_result_json",
    "render_result_text",
    "render_trajectories_json",
    "render_trajectories_text",
]


def render_result_text(result: HarnessResult) -> str:
    """Human-readable run report: one line per instance, then a tally."""
    lines = [outcome.summary() for outcome in result.outcomes]
    graded = [o for o in result.outcomes if o.status == "graded"]
    skipped = sum(o.status == "skipped" for o in result.outcomes)
    voided = sum(o.status == "sanity_failed" for o in result.outcomes)
    tally = (
        f"{len(graded)} graded"
        f" ({sum(o.verdict == 'pass' for o in graded)} pass, "
        f"{sum(o.verdict == 'warn' for o in graded)} warn, "
        f"{sum(o.verdict == 'fail' for o in graded)} fail)"
    )
    if skipped:
        tally += f", {skipped} skipped"
    if voided:
        tally += f", {voided} sanity-failed"
    lines.append(f"perfreg: {tally} -> {result.verdict} "
                 f"(exit {result.exit_code})")
    return "\n".join(lines)


def render_result_json(result: HarnessResult) -> str:
    """Machine-readable run report (schema mirrors the record layer)."""
    payload = {
        "verdict": result.verdict,
        "exit_code": result.exit_code,
        "env": result.env,
        "outcomes": [
            {
                "instance": o.instance_id,
                "area": o.area,
                "status": o.status,
                "verdict": o.verdict,
                "reason": o.reason,
                "record": (
                    json.loads(o.record.to_json()) if o.record else None
                ),
            }
            for o in result.outcomes
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_trajectories_text(
    trajectories: Sequence[Trajectory], *, last: int = 10
) -> str:
    """Per-file history: the most recent ``last`` records, one line each."""
    blocks: list[str] = []
    for trajectory in trajectories:
        lines = [f"{Path(trajectory.path).name}: "
                 f"{len(trajectory.records)} records"]
        for lineno, reason in trajectory.skipped:
            lines.append(f"  ! line {lineno} skipped: {reason}")
        for record in trajectory.records[-last:]:
            lines.append("  " + record.summary())
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks) if blocks else "no trajectories recorded yet"


def render_trajectories_json(
    trajectories: Sequence[Trajectory], *, last: int = 10
) -> str:
    payload = [
        {
            "path": str(t.path),
            "records": [
                json.loads(r.to_json()) for r in t.records[-last:]
            ],
            "skipped_lines": [
                {"line": lineno, "reason": reason}
                for lineno, reason in t.skipped
            ],
            "total_records": len(t.records),
        }
        for t in trajectories
    ]
    return json.dumps(payload, indent=2, sort_keys=True)


def render_baselines(
    baselines: Sequence[Baseline], *, as_json: bool = False
) -> str:
    """Current rolling baselines, one line (or object) per metric."""
    if as_json:
        return json.dumps(
            [asdict(b) for b in baselines], indent=2, sort_keys=True
        )
    if not baselines:
        return "no baselines yet (no green history on file)"
    width = max(len(b.instance) for b in baselines)
    lines = [
        f"{b.instance:<{width}}  {b.metric:<16} {b.value:>12g}  "
        f"({b.direction}, median of {b.window} green run(s): "
        f"ids {', '.join(str(i) for i in b.run_ids)})"
        for b in baselines
    ]
    return "\n".join(lines)

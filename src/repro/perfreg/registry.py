"""Check registration and parameter expansion.

``register`` collects :class:`~repro.perfreg.check.PerfCheck` classes
into a process-wide table (validated at registration, so a malformed
check fails at import time, not mid-run).  ``expand_checks`` turns
glob patterns into concrete :class:`CheckInstance` objects — one per
point of each matching check's parameter cartesian product — with a
stable, human-readable instance id like
``service.closed_loop[workers=4]``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Any, Iterable, Mapping, Sequence, Type

from repro.exceptions import ReproError
from repro.perfreg.check import PerfCheck

__all__ = [
    "CheckInstance",
    "UnknownCheckError",
    "all_checks",
    "clear_registry",
    "expand_checks",
    "instance_id",
    "register",
]

_REGISTRY: dict[str, Type[PerfCheck]] = {}


class UnknownCheckError(ReproError):
    """A ``--checks`` pattern matched nothing in the registry."""


def register(cls: Type[PerfCheck]) -> Type[PerfCheck]:
    """Class decorator: validate and add a check to the registry."""
    check = cls()
    check.validate()
    if check.name in _REGISTRY:
        raise ValueError(f"duplicate check name {check.name!r}")
    _REGISTRY[check.name] = cls
    return cls


def clear_registry() -> None:
    """Drop every registered check (test isolation hook)."""
    _REGISTRY.clear()


def all_checks() -> dict[str, Type[PerfCheck]]:
    """Name -> class for every registered check, import side effects in.

    Importing :mod:`repro.perfreg.checks` here (not at module import)
    keeps the registry module dependency-free for the unit tests that
    register synthetic checks.
    """
    import repro.perfreg.checks  # noqa: F401  - registration side effect

    return dict(sorted(_REGISTRY.items()))


def instance_id(name: str, params: Mapping[str, Any]) -> str:
    """``name[key=value,...]`` with keys sorted — the trajectory key."""
    if not params:
        return name
    inner = ",".join(f"{k}={params[k]}" for k in sorted(params))
    return f"{name}[{inner}]"


@dataclass(frozen=True)
class CheckInstance:
    """One concrete (check, parameter point) pair, ready to run."""

    check: PerfCheck
    params: dict[str, Any]

    @property
    def instance_id(self) -> str:
        return instance_id(self.check.name, self.params)

    @property
    def area(self) -> str:
        return self.check.area


def _expand_params(params: Mapping[str, tuple]) -> Iterable[dict[str, Any]]:
    if not params:
        yield {}
        return
    keys = sorted(params)
    for combo in itertools.product(*(params[k] for k in keys)):
        yield dict(zip(keys, combo))


def expand_checks(
    patterns: Sequence[str] | None = None,
    *,
    registry: Mapping[str, Type[PerfCheck]] | None = None,
) -> list[CheckInstance]:
    """Glob patterns -> parameter-expanded instances, name-sorted.

    ``None`` or an empty sequence selects everything.  Patterns match
    either the bare check name (``service.closed_loop``, globs fine)
    or a full instance id (``service.closed_loop[workers=4]``), so a
    single parameter point can be targeted from the CLI.  A pattern
    that matches nothing raises :class:`UnknownCheckError` — a typo'd
    check name must not silently grade as "all green".
    """
    table = dict(registry) if registry is not None else all_checks()
    instances: list[CheckInstance] = []
    for name in sorted(table):
        check = table[name]()
        for params in _expand_params(check.params):
            instances.append(CheckInstance(check=check, params=params))
    if not patterns:
        return instances
    selected: list[CheckInstance] = []
    matched: set[str] = set()
    for inst in instances:
        for pattern in patterns:
            # Exact instance-id equality comes first: fnmatch would
            # read the id's literal ``[workers=0]`` as a character
            # class, so ``--checks service.closed_loop[workers=0]``
            # must not have to be glob-escaped by hand.
            if (
                inst.instance_id == pattern
                or fnmatchcase(inst.check.name, pattern)
                or fnmatchcase(inst.instance_id, pattern)
            ):
                matched.add(pattern)
                selected.append(inst)
                break
    unmatched = [p for p in patterns if p not in matched]
    if unmatched:
        known = ", ".join(sorted(table)) or "<none>"
        raise UnknownCheckError(
            f"pattern(s) {unmatched} match no registered check; "
            f"known checks: {known}"
        )
    return selected

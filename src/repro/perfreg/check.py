"""The declarative check model.

A *check* is a named, parameterised measurement with a lifecycle:

* ``params`` — a mapping of parameter name to the tuple of values it
  takes; the registry expands the cartesian product into one *instance*
  per combination (the ReFrame idiom).
* ``setup(ctx)`` / ``run(ctx)`` / ``teardown(ctx)`` — ``setup`` builds
  whatever state the measurement needs (geometry, request streams) and
  stashes it on ``ctx.state``; ``run`` performs **one repetition** and
  returns ``{metric_name: value}``; ``teardown`` releases resources.
  The runner calls ``setup`` once, ``run`` once per warmup/measured
  repetition, and ``teardown`` exactly once (even on failure).
* ``sanity(ctx, values)`` — correctness preconditions (bit-identity,
  zero errors).  Raise :class:`SanityError` to invalidate the run: a
  perf number from a wrong answer is worse than no number.
* ``metrics`` — the named quantities ``run`` must report, each with a
  unit and a *direction* so the baseline grader knows which way is a
  regression.

Checks declare; the runner (:mod:`repro.perfreg.harness`) measures,
aggregates, persists, and grades.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.exceptions import ReproError

__all__ = [
    "CheckContext",
    "HIGHER_IS_BETTER",
    "LOWER_IS_BETTER",
    "Metric",
    "PerfCheck",
    "SanityError",
]

#: Direction tokens: which way does a *larger* value point?
HIGHER_IS_BETTER = "higher_is_better"
LOWER_IS_BETTER = "lower_is_better"

_DIRECTIONS = (HIGHER_IS_BETTER, LOWER_IS_BETTER)


class SanityError(ReproError):
    """A check's correctness precondition failed; its numbers are void."""


@dataclass(frozen=True)
class Metric:
    """One named quantity a check reports per repetition."""

    name: str
    unit: str
    direction: str = HIGHER_IS_BETTER

    def __post_init__(self) -> None:
        if self.direction not in _DIRECTIONS:
            raise ValueError(
                f"metric {self.name!r}: direction must be one of "
                f"{_DIRECTIONS}, got {self.direction!r}"
            )


@dataclass
class CheckContext:
    """Everything one check instance sees while it runs.

    ``clock`` is injectable so the harness's own tests can fabricate
    timings (a fake clock proving a 2x slowdown flips the verdict)
    without patching global state.
    """

    params: Mapping[str, Any]
    reps: int
    warmup: int
    clock: Callable[[], float] = time.perf_counter
    state: dict[str, Any] = field(default_factory=dict)
    #: Repetition index, -warmup .. -1 for warmup reps, 0 .. reps-1 for
    #: measured reps; set by the runner before each ``run`` call.
    rep: int = 0

    def elapsed(self, func: Callable[[], Any]) -> tuple[float, Any]:
        """Time one call of ``func`` on the context clock."""
        started = self.clock()
        value = func()
        return self.clock() - started, value


class PerfCheck:
    """Base class for declarative perf-regression checks.

    Subclasses set the class attributes and override ``run`` (always)
    and ``setup`` / ``teardown`` / ``sanity`` / ``skip_reason`` (as
    needed), then register with
    :func:`repro.perfreg.registry.register`.
    """

    #: Dotted id, ``<area>.<name>`` by convention.
    name: str = ""
    #: Trajectory family: records land in ``BENCH_<area>.json``.
    area: str = ""
    #: Parameter space; the registry expands the cartesian product.
    params: Mapping[str, tuple] = {}
    #: Metrics every ``run`` must report.
    metrics: tuple[Metric, ...] = ()

    def skip_reason(self, params: Mapping[str, Any]) -> str | None:
        """A human-readable reason to skip this instance, or ``None``.

        The environment gate (a GPU test without a GPU): skipped
        instances produce no record and no verdict.
        """
        return None

    def setup(self, ctx: CheckContext) -> None:
        """Build per-instance state; runs once before any repetition."""

    def run(self, ctx: CheckContext) -> Mapping[str, float]:
        """One repetition; returns a value for every declared metric."""
        raise NotImplementedError

    def teardown(self, ctx: CheckContext) -> None:
        """Release per-instance state; runs once, even after failure."""

    def sanity(self, ctx: CheckContext, values: Mapping[str, float]) -> None:
        """Correctness preconditions; raise :class:`SanityError` to void."""

    # -- helpers -----------------------------------------------------------

    def metric(self, name: str) -> Metric:
        for metric in self.metrics:
            if metric.name == name:
                return metric
        raise KeyError(f"check {self.name!r} declares no metric {name!r}")

    def validate(self) -> None:
        """Structural self-check; the registry calls this on register."""
        if not self.name or "." not in self.name:
            raise ValueError(
                f"check name must be '<area>.<name>', got {self.name!r}"
            )
        if not self.area:
            raise ValueError(f"check {self.name!r} must set an area")
        if not self.metrics:
            raise ValueError(f"check {self.name!r} declares no metrics")
        seen: set[str] = set()
        for metric in self.metrics:
            if metric.name in seen:
                raise ValueError(
                    f"check {self.name!r} declares metric "
                    f"{metric.name!r} twice"
                )
            seen.add(metric.name)
        for key, values in self.params.items():
            if not isinstance(values, tuple) or not values:
                raise ValueError(
                    f"check {self.name!r}: param {key!r} must be a "
                    f"non-empty tuple, got {values!r}"
                )

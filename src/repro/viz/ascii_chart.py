"""Log-log ASCII charts: the paper's figures in a terminal.

Renders :class:`~repro.core.rooflines.CurveSeries` (lines),
:class:`~repro.viz.series.ScatterSeries` (dots), and vertical markers
(balance points) on a character grid with log-2 axes — the same visual
grammar as the paper's roofline/arch-line/powerline plots.

The renderer is deliberately dependency-free; it is used by the CLI
(``energy-roofline curves ...``) and by the examples, and its output is
stable enough to assert on in tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.rooflines import CurveSeries
from repro.exceptions import ParameterError
from repro.viz.series import ScatterSeries

__all__ = ["AsciiChart", "render_chart"]

#: Glyphs assigned to successive curve series.
_CURVE_GLYPHS = "*#@%&+=~"
#: Glyph for scatter (measured) points.
_SCATTER_GLYPH = "o"
#: Glyph for vertical markers.
_MARKER_GLYPH = "|"


@dataclass
class AsciiChart:
    """A character-grid chart with log-2 x and y axes.

    Build one, add series and markers, then :meth:`render`.
    """

    width: int = 72
    height: int = 20
    title: str = ""
    _curves: list[CurveSeries] = field(default_factory=list)
    _scatters: list[ScatterSeries] = field(default_factory=list)
    _markers: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.width < 20 or self.height < 6:
            raise ParameterError("chart must be at least 20x6 characters")

    def add_curve(self, series: CurveSeries) -> "AsciiChart":
        """Add a model curve (rendered as a connected glyph line)."""
        self._curves.append(series)
        return self

    def add_scatter(self, series: ScatterSeries) -> "AsciiChart":
        """Add measured points (rendered as ``o``)."""
        self._scatters.append(series)
        return self

    def add_marker(self, label: str, intensity: float) -> "AsciiChart":
        """Add a dashed vertical line (e.g. a balance point)."""
        if intensity <= 0:
            raise ParameterError("marker intensity must be positive")
        self._markers[label] = intensity
        return self

    # ------------------------------------------------------------------

    def _bounds(self) -> tuple[float, float, float, float]:
        xs: list[float] = []
        ys: list[float] = []
        for c in self._curves:
            xs.extend(c.intensities.tolist())
            ys.extend(c.values.tolist())
        for s in self._scatters:
            xs.extend(s.intensities.tolist())
            ys.extend(s.values.tolist())
        xs.extend(self._markers.values())
        positive_ys = [y for y in ys if y > 0]
        if not xs or not positive_ys:
            raise ParameterError("chart has nothing to draw")
        return min(xs), max(xs), min(positive_ys), max(positive_ys)

    def render(self) -> str:
        """Render the chart to a multi-line string."""
        x_lo, x_hi, y_lo, y_hi = self._bounds()
        lx_lo, lx_hi = math.log2(x_lo), math.log2(x_hi)
        ly_lo, ly_hi = math.log2(y_lo), math.log2(y_hi)
        if lx_hi - lx_lo < 1e-9:
            lx_hi = lx_lo + 1.0
        if ly_hi - ly_lo < 1e-9:
            ly_hi = ly_lo + 1.0

        grid = [[" "] * self.width for _ in range(self.height)]

        def col(x: float) -> int:
            frac = (math.log2(x) - lx_lo) / (lx_hi - lx_lo)
            return min(self.width - 1, max(0, int(round(frac * (self.width - 1)))))

        def row(y: float) -> int | None:
            if y <= 0:
                return None
            frac = (math.log2(y) - ly_lo) / (ly_hi - ly_lo)
            r = int(round((1.0 - frac) * (self.height - 1)))
            return min(self.height - 1, max(0, r))

        for intensity in self._markers.values():
            c = col(intensity)
            for r in range(self.height):
                grid[r][c] = _MARKER_GLYPH

        for i, curve in enumerate(self._curves):
            glyph = _CURVE_GLYPHS[i % len(_CURVE_GLYPHS)]
            # Dense resample in log-x so the line is visually continuous.
            dense = np.exp2(np.linspace(lx_lo, lx_hi, self.width * 2))
            lo, hi = curve.intensities[0], curve.intensities[-1]
            for x in dense:
                if not lo <= x <= hi:
                    continue
                r = row(curve.at(float(x)))
                if r is not None:
                    grid[r][col(float(x))] = glyph

        for scatter in self._scatters:
            for x, y in scatter.as_rows():
                r = row(y)
                if r is not None:
                    grid[r][col(x)] = _SCATTER_GLYPH

        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        top = f"{y_hi:.3g}"
        bottom = f"{y_lo:.3g}"
        pad = max(len(top), len(bottom))
        for r, chars in enumerate(grid):
            label = top if r == 0 else bottom if r == self.height - 1 else ""
            lines.append(f"{label:>{pad}} |{''.join(chars)}")
        lines.append(f"{'':>{pad}} +{'-' * self.width}")
        left = f"{x_lo:.3g}"
        right = f"{x_hi:.3g}"
        gap = self.width - len(left) - len(right)
        lines.append(f"{'':>{pad}}  {left}{' ' * max(1, gap)}{right}")

        legend: list[str] = []
        for i, curve in enumerate(self._curves):
            legend.append(f"{_CURVE_GLYPHS[i % len(_CURVE_GLYPHS)]} {curve.label}")
        for scatter in self._scatters:
            legend.append(f"{_SCATTER_GLYPH} {scatter.label}")
        for label, intensity in sorted(self._markers.items(), key=lambda kv: kv[1]):
            legend.append(f"{_MARKER_GLYPH} {label} = {intensity:.3g}")
        if legend:
            lines.append("  " + "   ".join(legend))
        return "\n".join(lines)


def render_chart(
    curves: Sequence[CurveSeries] = (),
    scatters: Sequence[ScatterSeries] = (),
    markers: dict[str, float] | None = None,
    *,
    title: str = "",
    width: int = 72,
    height: int = 20,
) -> str:
    """One-shot convenience wrapper over :class:`AsciiChart`."""
    chart = AsciiChart(width=width, height=height, title=title)
    for c in curves:
        chart.add_curve(c)
    for s in scatters:
        chart.add_scatter(s)
    for label, x in (markers or {}).items():
        chart.add_marker(label, x)
    return chart.render()

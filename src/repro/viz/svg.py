"""Dependency-free SVG rendering of roofline-style charts.

The ASCII charts serve the terminal; this module produces real figures —
log-log axes, model curves as smooth polylines, measured points as
circles, balance markers as dashed verticals, a legend — as standalone
SVG documents, with no plotting library required.  Output is
deterministic, which keeps it testable and diff-friendly.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Sequence
from xml.sax.saxutils import escape

import numpy as np

from repro.core.rooflines import CurveSeries
from repro.exceptions import ParameterError
from repro.viz.series import ScatterSeries

__all__ = ["svg_chart", "write_svg"]

#: Deterministic palette for successive curves (colour-blind safe).
_COLORS = ("#0072B2", "#D55E00", "#009E73", "#CC79A7", "#56B4E9", "#E69F00")
_MARKER_COLOR = "#888888"
_POINT_COLOR = "#222222"

_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 64, 16, 36, 44


def _log_ticks(lo: float, hi: float) -> list[float]:
    """Powers of two spanning [lo, hi] (at most ~12, thinned if needed)."""
    k_lo = math.ceil(math.log2(lo) - 1e-9)
    k_hi = math.floor(math.log2(hi) + 1e-9)
    ticks = [2.0**k for k in range(k_lo, k_hi + 1)]
    while len(ticks) > 12:
        ticks = ticks[::2]
    return ticks


def _fmt(value: float) -> str:
    if value >= 1 and value == int(value):
        return str(int(value))
    return f"{value:.3g}"


def svg_chart(
    curves: Sequence[CurveSeries] = (),
    scatters: Sequence[ScatterSeries] = (),
    markers: dict[str, float] | None = None,
    *,
    title: str = "",
    width: int = 640,
    height: int = 400,
    y_label: str = "",
) -> str:
    """Render a log-log chart as an SVG document string."""
    if width < 160 or height < 120:
        raise ParameterError("SVG chart must be at least 160x120")
    markers = markers or {}
    xs: list[float] = []
    ys: list[float] = []
    for c in curves:
        xs += c.intensities.tolist()
        ys += [y for y in c.values.tolist() if y > 0]
    for s in scatters:
        xs += s.intensities.tolist()
        ys += [y for y in s.values.tolist() if y > 0]
    xs += list(markers.values())
    if not xs or not ys:
        raise ParameterError("SVG chart has nothing to draw")

    lx_lo, lx_hi = math.log2(min(xs)), math.log2(max(xs))
    ly_lo, ly_hi = math.log2(min(ys)), math.log2(max(ys))
    if lx_hi - lx_lo < 1e-9:
        lx_hi = lx_lo + 1.0
    if ly_hi - ly_lo < 1e-9:
        ly_hi = ly_lo + 1.0
    # Breathe a little at the top/bottom.
    ly_lo -= 0.15
    ly_hi += 0.15

    plot_w = width - _MARGIN_L - _MARGIN_R
    plot_h = height - _MARGIN_T - _MARGIN_B

    def px(x: float) -> float:
        return _MARGIN_L + (math.log2(x) - lx_lo) / (lx_hi - lx_lo) * plot_w

    def py(y: float) -> float:
        return _MARGIN_T + (1.0 - (math.log2(y) - ly_lo) / (ly_hi - ly_lo)) * plot_h

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<rect x="{_MARGIN_L}" y="{_MARGIN_T}" width="{plot_w}" '
        f'height="{plot_h}" fill="none" stroke="#333" stroke-width="1"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2:.1f}" y="20" text-anchor="middle" '
            f'font-size="13">{escape(title)}</text>'
        )
    if y_label:
        cy = _MARGIN_T + plot_h / 2
        parts.append(
            f'<text x="14" y="{cy:.1f}" text-anchor="middle" '
            f'transform="rotate(-90 14 {cy:.1f})">{escape(y_label)}</text>'
        )

    # Grid + ticks.
    for tick in _log_ticks(2.0**lx_lo, 2.0**lx_hi):
        x = px(tick)
        parts.append(
            f'<line x1="{x:.1f}" y1="{_MARGIN_T}" x2="{x:.1f}" '
            f'y2="{_MARGIN_T + plot_h}" stroke="#eee"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{_MARGIN_T + plot_h + 14}" '
            f'text-anchor="middle">{_fmt(tick)}</text>'
        )
    for tick in _log_ticks(2.0**ly_lo, 2.0**ly_hi):
        y = py(tick)
        parts.append(
            f'<line x1="{_MARGIN_L}" y1="{y:.1f}" x2="{_MARGIN_L + plot_w}" '
            f'y2="{y:.1f}" stroke="#eee"/>'
        )
        parts.append(
            f'<text x="{_MARGIN_L - 6}" y="{y + 3:.1f}" '
            f'text-anchor="end">{_fmt(tick)}</text>'
        )
    parts.append(
        f'<text x="{_MARGIN_L + plot_w / 2:.1f}" y="{height - 8}" '
        f'text-anchor="middle">Intensity (flop:byte)</text>'
    )

    # Markers (dashed verticals).
    for label, value in sorted(markers.items(), key=lambda kv: kv[1]):
        x = px(value)
        parts.append(
            f'<line x1="{x:.1f}" y1="{_MARGIN_T}" x2="{x:.1f}" '
            f'y2="{_MARGIN_T + plot_h}" stroke="{_MARKER_COLOR}" '
            f'stroke-dasharray="4 3"/>'
        )
        parts.append(
            f'<text x="{x + 3:.1f}" y="{_MARGIN_T + 12}" fill="{_MARKER_COLOR}">'
            f"{escape(label)}={_fmt(value)}</text>"
        )

    # Curves (densely resampled in log-x for smoothness).
    for i, curve in enumerate(curves):
        color = _COLORS[i % len(_COLORS)]
        lo = float(curve.intensities[0])
        hi = float(curve.intensities[-1])
        dense = np.exp2(np.linspace(math.log2(lo), math.log2(hi), 160))
        points = []
        for x in dense:
            y = curve.at(float(x))
            if y > 0:
                points.append(f"{px(float(x)):.1f},{py(y):.1f}")
        parts.append(
            f'<polyline fill="none" stroke="{color}" stroke-width="2" '
            f'points="{" ".join(points)}"/>'
        )

    # Scatter points.
    for scatter in scatters:
        for x, y in scatter.as_rows():
            if y <= 0:
                continue
            parts.append(
                f'<circle cx="{px(x):.1f}" cy="{py(y):.1f}" r="3.2" '
                f'fill="{_POINT_COLOR}" fill-opacity="0.75"/>'
            )

    # Legend.
    legend_y = _MARGIN_T + 8
    for i, curve in enumerate(curves):
        color = _COLORS[i % len(_COLORS)]
        parts.append(
            f'<line x1="{_MARGIN_L + 8}" y1="{legend_y:.1f}" '
            f'x2="{_MARGIN_L + 28}" y2="{legend_y:.1f}" stroke="{color}" '
            f'stroke-width="2"/>'
        )
        parts.append(
            f'<text x="{_MARGIN_L + 32}" y="{legend_y + 3:.1f}">'
            f"{escape(curve.label)}</text>"
        )
        legend_y += 14
    for scatter in scatters:
        parts.append(
            f'<circle cx="{_MARGIN_L + 18}" cy="{legend_y:.1f}" r="3.2" '
            f'fill="{_POINT_COLOR}"/>'
        )
        parts.append(
            f'<text x="{_MARGIN_L + 32}" y="{legend_y + 3:.1f}">'
            f"{escape(scatter.label)}</text>"
        )
        legend_y += 14

    parts.append("</svg>")
    return "\n".join(parts)


def write_svg(
    path: str | Path,
    curves: Sequence[CurveSeries] = (),
    scatters: Sequence[ScatterSeries] = (),
    markers: dict[str, float] | None = None,
    **kwargs,
) -> Path:
    """Render and write an SVG chart; returns the path."""
    target = Path(path)
    target.write_text(svg_chart(curves, scatters, markers, **kwargs))
    return target

"""Rendering and export of model curves and measured points.

Pure-text tooling (no plotting dependency): log-log ASCII charts that
approximate the paper's figures in a terminal, and CSV/dict exporters so
any external plotting stack can regenerate publication-quality versions
from the same data.
"""

from repro.viz.ascii_chart import AsciiChart, render_chart
from repro.viz.series import ScatterSeries, series_to_csv, write_csv
from repro.viz.svg import svg_chart, write_svg

__all__ = [
    "AsciiChart",
    "render_chart",
    "ScatterSeries",
    "series_to_csv",
    "write_csv",
    "svg_chart",
    "write_svg",
]

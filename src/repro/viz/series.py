"""Data-series containers and CSV export.

:class:`~repro.core.rooflines.CurveSeries` covers model curves; this
module adds :class:`ScatterSeries` for measured points (the dots of
Figs. 4–5) and CSV writers for both, so external tools can replot every
figure from plain files.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.rooflines import CurveSeries
from repro.exceptions import ParameterError

__all__ = ["ScatterSeries", "series_to_csv", "write_csv"]


@dataclass(frozen=True)
class ScatterSeries:
    """Measured points: intensities against values, unordered allowed.

    Unlike :class:`CurveSeries` this permits duplicate or unsorted x
    values — measurements land where the sweep put them.
    """

    label: str
    intensities: np.ndarray
    values: np.ndarray
    units: str = ""

    def __post_init__(self) -> None:
        x = np.asarray(self.intensities, dtype=float)
        y = np.asarray(self.values, dtype=float)
        if x.ndim != 1 or y.shape != x.shape:
            raise ParameterError("intensities and values must be equal-length 1-D")
        if x.size == 0:
            raise ParameterError("a scatter series needs at least one point")
        if np.any(x <= 0):
            raise ParameterError("intensities must be positive")
        object.__setattr__(self, "intensities", x)
        object.__setattr__(self, "values", y)

    def as_rows(self) -> list[tuple[float, float]]:
        """(intensity, value) tuples in stored order."""
        return [(float(a), float(b)) for a, b in zip(self.intensities, self.values)]


def series_to_csv(series: Sequence[CurveSeries | ScatterSeries]) -> str:
    """Long-format CSV: ``series,intensity,value`` with a header row.

    Long format keeps differently gridded series in one file, which is
    what plotting front-ends (ggplot, seaborn, vega) want.
    """
    if not series:
        raise ParameterError("need at least one series")
    out = io.StringIO()
    out.write("series,intensity,value\n")
    for s in series:
        for x, y in s.as_rows():
            out.write(f"{s.label},{x!r},{y!r}\n")
    return out.getvalue()


def write_csv(
    series: Sequence[CurveSeries | ScatterSeries], path: str | Path
) -> Path:
    """Write :func:`series_to_csv` output to ``path``; returns the path."""
    target = Path(path)
    target.write_text(series_to_csv(series))
    return target

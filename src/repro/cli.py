"""Command-line interface: ``energy-roofline`` / ``python -m repro``.

Subcommands
-----------
``machines``
    List the machine catalog.
``describe MACHINE``
    Raw and derived parameters plus the balance/race-to-halt analysis.
``curves MACHINE``
    Render roofline/arch-line/powerline ASCII charts; ``--csv`` exports
    the series for external plotting.
``experiment list`` / ``experiment run ID``
    The paper's tables and figures (see :mod:`repro.experiments`).
``fit CSV``
    Fit eq. (9) energy coefficients from a measurement CSV with columns
    ``work,traffic,time,energy,double`` (header required).
``tradeoff MACHINE``
    Greenup thresholds for a work–communication trade at a baseline
    intensity.
``partition MACHINE_A MACHINE_B``
    Time- vs energy-optimal splits of a divisible workload across two
    devices.
``dvfs MACHINE``
    Frequency sweep and the energy-optimal operating point for a
    workload intensity.
``app NAME MACHINE``
    Per-phase cost table for a library application (cg, fmm,
    fft-poisson, jacobi).
``serve``
    Long-lived async model server (NDJSON over TCP, with negotiated
    binary framing — ``--wire``) with micro-batching, response
    caching, built-in metrics, and an optional sharded worker-process
    pool (``--workers N``, jobs over shared-memory rings by default —
    ``--job-transport``) (see :mod:`repro.service` and
    ``docs/SERVICE.md``).
``route``
    Multi-node scale-out router: a consistent-hash ring (virtual
    nodes, per-key replication — ``--replication``) over replicated
    ``serve`` instances (``--backend HOST:PORT`` each), with health
    probing, automatic failover of retriable failures, and
    zero-downtime membership changes (see
    :mod:`repro.service.router` and ``docs/SERVICE.md``).
``bench-serve``
    Load generator against an in-process server — closed loop by
    default, open loop (Poisson arrivals) with ``--open-loop RPS``;
    ``--wire ndjson|binary`` moves the run onto a real loopback
    socket under that framing; ``--router-backends N`` benches the
    full router path, ``--target HOST:PORT`` drives an external
    server or router; reports throughput, latency percentiles,
    batch-size histogram, bytes on the wire, and with ``--compare``
    the speedup over the baseline (NDJSON framing when ``--wire
    binary``, in-loop execution when ``--workers > 0``, unbatched
    otherwise).
``lint``
    Run replint, the repo's own AST-based static analysis, over the
    package source (or explicit paths).  Exit code 0 means clean, 1
    means findings, 2 means a usage error (see ``docs/LINT.md``).
``perfreg``
    Continuous performance-regression harness: run registered checks
    and append graded ``BENCH_<area>.json`` trajectory records
    (``run``), inspect recorded history (``report``), or show the
    rolling baselines (``baseline``).  ``run`` exits 0/1/2 for
    pass/warn/fail against the rolling baseline
    (see :mod:`repro.perfreg` and ``docs/PERFREG.md``).
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path

from repro.core.balance import analyze
from repro.core.fitting import EnergySample, fit_energy_coefficients
from repro.core.rooflines import (
    archline_series,
    powerline_series,
    roofline_series,
    vertical_markers,
)
from repro.core.tradeoff import TradeoffAnalyzer
from repro.core.algorithm import AlgorithmProfile
from repro.exceptions import ReproError
from repro.machines.catalog import list_machines, resolve_machine
from repro import units


def get_machine(key_or_path: str):
    """Resolve a machine argument: catalog key, or path to a JSON file.

    Thin alias for :func:`repro.machines.catalog.resolve_machine`, the
    lookup path shared with the serving layer; every failure raises
    :class:`~repro.exceptions.ReproError` and exits with a one-line
    diagnostic rather than a traceback.
    """
    return resolve_machine(key_or_path)
from repro.viz.ascii_chart import render_chart
from repro.viz.series import write_csv

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="energy-roofline",
        description="Energy roofline model analysis (IPDPS 2013 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("machines", help="list the machine catalog")

    p_desc = sub.add_parser("describe", help="show a machine's parameters")
    p_desc.add_argument("machine", help="catalog key, e.g. gtx580-double")

    p_curves = sub.add_parser("curves", help="render model curves")
    p_curves.add_argument("machine")
    p_curves.add_argument(
        "--kind",
        choices=("roofline", "archline", "powerline", "all"),
        default="all",
    )
    p_curves.add_argument("--lo", type=float, default=0.25)
    p_curves.add_argument("--hi", type=float, default=64.0)
    p_curves.add_argument("--csv", type=Path, help="also export series as CSV")
    p_curves.add_argument("--svg", type=Path, help="also render the chart as SVG")

    p_exp = sub.add_parser("experiment", help="run paper experiments")
    exp_sub = p_exp.add_subparsers(dest="exp_command", required=True)
    exp_sub.add_parser("list", help="list available experiments")
    exp_sub.add_parser(
        "summary", help="run everything; print the paper-vs-measured digest"
    )
    p_run = exp_sub.add_parser("run", help="run one or more experiments")
    p_run.add_argument(
        "id", nargs="+", help="experiment id(s), e.g. fig4 table4"
    )
    p_run.add_argument(
        "--output", type=Path,
        help="directory to archive the report (<id>.txt) and headline "
             "values (<id>.json)",
    )
    p_run.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes: parallelises across experiments and, "
             "inside sweep experiments, across device-precision panels",
    )
    p_run.add_argument(
        "--cache-dir", type=Path, metavar="DIR",
        help="content-addressed result cache; repeated runs with the "
             "same machine params, sweep config, and seed replay from disk",
    )
    p_run.add_argument(
        "--max-variants", type=int, default=None, metavar="K",
        help="for variant-sweep experiments (fmm): trim the variant "
             "space to K for quick smoke runs; ignored by experiments "
             "that do not take it",
    )

    p_fit = sub.add_parser("fit", help="fit eq. (9) coefficients from a CSV")
    p_fit.add_argument("csv", type=Path)

    p_trade = sub.add_parser("tradeoff", help="greenup thresholds for (f, m) trades")
    p_trade.add_argument("machine")
    p_trade.add_argument("--intensity", type=float, required=True)
    p_trade.add_argument(
        "--m", type=float, nargs="+", default=[2.0, 4.0, 8.0], dest="m_values"
    )

    p_part = sub.add_parser(
        "partition", help="split a divisible workload across two devices"
    )
    p_part.add_argument("machine_a")
    p_part.add_argument("machine_b")
    p_part.add_argument("--intensity", type=float, required=True)
    p_part.add_argument("--work", type=float, default=1e12)
    p_part.add_argument(
        "--idle-policy", choices=("halt", "idle"), default="halt"
    )

    p_dvfs = sub.add_parser("dvfs", help="frequency-scaling analysis")
    p_dvfs.add_argument("machine")
    p_dvfs.add_argument("--intensity", type=float, required=True)
    p_dvfs.add_argument("--static-fraction", type=float, default=0.5)
    p_dvfs.add_argument("--steps", type=int, default=7)

    p_scale = sub.add_parser(
        "scaling", help="distributed strong-scaling time/energy analysis"
    )
    p_scale.add_argument("machine", help="node machine (catalog key)")
    p_scale.add_argument(
        "workload", choices=("summa", "stencil", "allreduce")
    )
    p_scale.add_argument("--size", type=int, default=4096)
    p_scale.add_argument("--net-gbytes", type=float, default=4.0,
                         help="per-node network bandwidth (GB/s)")
    p_scale.add_argument("--eps-net", type=float, default=1000.0,
                         help="network energy (pJ/B)")
    p_scale.add_argument(
        "--nodes", type=int, nargs="+", default=[1, 4, 16, 64, 256]
    )

    p_app = sub.add_parser("app", help="phase-level application analysis")
    p_app.add_argument(
        "name", choices=("cg", "fmm", "fft-poisson", "jacobi")
    )
    p_app.add_argument("machine")
    p_app.add_argument("--size", type=int, default=None,
                       help="problem size (app-specific default)")

    p_serve = sub.add_parser(
        "serve", help="run the async model-serving daemon (NDJSON over TCP)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8733,
        help="TCP port (0 lets the OS pick; default 8733)",
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=64, metavar="N",
        help="micro-batch size cap; 1 disables coalescing",
    )
    p_serve.add_argument(
        "--flush-window-ms", type=float, default=1.0, metavar="MS",
        help="max time a non-full batch waits for company",
    )
    p_serve.add_argument(
        "--cache-size", type=int, default=2048, metavar="N",
        help="response-cache entries; 0 disables caching",
    )
    p_serve.add_argument(
        "--cache-ttl", type=float, default=300.0, metavar="S",
        help="response-cache staleness bound in seconds",
    )
    p_serve.add_argument(
        "--queue-limit", type=int, default=1024, metavar="N",
        help="admission limit; beyond it requests get 'overloaded' replies",
    )
    p_serve.add_argument(
        "--default-timeout-ms", type=float, default=None, metavar="MS",
        help="default per-request deadline (requests may override)",
    )
    p_serve.add_argument(
        "--access-log", action="store_true",
        help="emit one JSON access record per request on stderr",
    )
    p_serve.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="worker processes for model evaluation; 0 runs in-loop",
    )
    p_serve.add_argument(
        "--shard-by", choices=("machine", "model"), default="machine",
        help="worker routing key: per machine or per (machine, model)",
    )
    p_serve.add_argument(
        "--wire", choices=("auto", "binary", "ndjson"), default="auto",
        help="framing policy: auto/binary accept a client's binary "
        "upgrade, ndjson refuses it (connections always start NDJSON)",
    )
    p_serve.add_argument(
        "--job-transport", choices=("ring", "pickle"), default="ring",
        help="worker job transport: preallocated shared-memory rings "
        "or per-job pickle",
    )
    p_serve.add_argument(
        "--plan-cache-size", type=int, default=None, metavar="N",
        help="compiled curve-plan cache entries; 0 disables "
        "(default: the server's built-in size)",
    )
    p_serve.add_argument(
        "--admission", choices=("depth", "cost"), default="depth",
        help="admission policy: queue-depth limit, or predicted-work "
        "budget from the roofline cost model (needs --work-budget)",
    )
    p_serve.add_argument(
        "--work-budget", type=float, default=None, metavar="S",
        help="predicted seconds of admitted work allowed in flight "
        "under --admission cost",
    )
    p_serve.add_argument(
        "--power-cap", type=float, default=None, metavar="W",
        help="cap on aggregate predicted power (watts); over it, "
        "priority<=0 work is shed, higher priorities may wait",
    )
    p_serve.add_argument(
        "--admission-wait-ms", type=float, default=0.0, metavar="MS",
        help="max time a request may queue for budget/cap headroom "
        "before an 'overloaded' reply (0: reject immediately)",
    )
    p_serve.add_argument(
        "--deadline-batching", action="store_true",
        help="let predicted batch service time shrink batch windows "
        "so the earliest member's deadline holds",
    )
    p_serve.add_argument(
        "--autoscale-min", type=int, default=0, metavar="N",
        help="lower worker bound for the autoscaler (with "
        "--autoscale-max; both 0 disables autoscaling)",
    )
    p_serve.add_argument(
        "--autoscale-max", type=int, default=0, metavar="N",
        help="upper worker bound for the autoscaler",
    )
    p_serve.add_argument(
        "--autoscale-interval", type=float, default=0.25, metavar="S",
        help="seconds between autoscaler sizing decisions",
    )

    p_route = sub.add_parser(
        "route",
        help="run the scale-out router over replicated server instances",
    )
    p_route.add_argument(
        "--backend", action="append", required=True, metavar="HOST:PORT",
        dest="backends",
        help="backend server address; repeat for each instance",
    )
    p_route.add_argument("--host", default="127.0.0.1")
    p_route.add_argument(
        "--port", type=int, default=8732,
        help="client-facing TCP port (0 lets the OS pick; default 8732)",
    )
    p_route.add_argument(
        "--replication", type=int, default=1, metavar="R",
        help="distinct replicas per routing key (failover candidates)",
    )
    p_route.add_argument(
        "--vnodes", type=int, default=128, metavar="N",
        help="virtual ring points per backend",
    )
    p_route.add_argument(
        "--shard-by", choices=("machine", "model"), default="machine",
        help="routing key: per machine or per (machine, model)",
    )
    p_route.add_argument(
        "--wire", choices=("auto", "binary", "ndjson"), default="auto",
        help="client-side framing policy (same semantics as serve)",
    )
    p_route.add_argument(
        "--backend-wire", choices=("binary", "ndjson"), default="binary",
        help="framing offered to backends; binary degrades to NDJSON "
        "against servers that refuse it",
    )
    p_route.add_argument(
        "--attempts", type=int, default=3, metavar="N",
        help="failover attempts per request (including the first)",
    )
    p_route.add_argument(
        "--health-interval", type=float, default=1.0, metavar="S",
        help="seconds between backend health probes",
    )
    p_route.add_argument(
        "--down-after", type=int, default=3, metavar="M",
        help="consecutive failures that mark a backend down",
    )

    p_bench = sub.add_parser(
        "bench-serve",
        help="closed-loop load generator against an in-process server",
    )
    p_bench.add_argument("--requests", type=int, default=4000, metavar="N")
    p_bench.add_argument("--concurrency", type=int, default=128, metavar="N")
    p_bench.add_argument("--max-batch", type=int, default=64, metavar="N")
    p_bench.add_argument(
        "--flush-window-ms", type=float, default=2.0, metavar="MS"
    )
    p_bench.add_argument(
        "--cache-size", type=int, default=0, metavar="N",
        help="response-cache entries (default 0: isolate batching)",
    )
    p_bench.add_argument(
        "--machines", nargs="+", default=["gtx580-double", "i7-950-double"],
        help="catalog machines to spread requests across",
    )
    p_bench.add_argument(
        "--model", default="capped",
        choices=("time", "energy", "power", "capped"),
    )
    p_bench.add_argument("--metric", default="energy_per_flop")
    p_bench.add_argument(
        "--repeat-intensities", action="store_true",
        help="draw intensities from a small pool so the cache participates",
    )
    p_bench.add_argument(
        "--compare", action="store_true",
        help="also run the baseline and report the speedup: in-loop "
        "execution when --workers > 0, unbatched otherwise",
    )
    p_bench.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="worker processes for model evaluation; 0 runs in-loop",
    )
    p_bench.add_argument(
        "--shard-by", choices=("machine", "model"), default="machine",
        help="worker routing key: per machine or per (machine, model)",
    )
    p_bench.add_argument(
        "--workload", choices=("scalar", "mixed", "heavy"), default="scalar",
        help="request mix: scalar evals only; a mix of evals, grids, "
        "curves, and analyses; or the same mix with compute-dominated "
        "curve/grid sizes",
    )
    p_bench.add_argument(
        "--open-loop", type=float, default=None, metavar="RPS",
        help="open-loop (Poisson arrival) mode at RPS requests/s; "
        "latency is measured from intended arrival time",
    )
    p_bench.add_argument(
        "--arrival", default=None, metavar="SPEC",
        help="arrival-schedule spec, e.g. ramp:LO:HI:SECS for a seeded "
        "linear rate ramp (open loop; excludes --open-loop; the "
        "schedule sets the request count)",
    )
    p_bench.add_argument(
        "--timeout-ms", type=float, default=None, metavar="MS",
        help="per-request deadline stamped on every generated request",
    )
    p_bench.add_argument(
        "--admission", choices=("depth", "cost"), default=None,
        help="server admission policy (cost needs --work-budget)",
    )
    p_bench.add_argument(
        "--work-budget", type=float, default=None, metavar="S",
        help="predicted-work budget (seconds) for --admission cost",
    )
    p_bench.add_argument(
        "--power-cap", type=float, default=None, metavar="W",
        help="server cap on aggregate predicted power (watts)",
    )
    p_bench.add_argument(
        "--admission-wait-ms", type=float, default=None, metavar="MS",
        help="max queueing time for budget/cap headroom",
    )
    p_bench.add_argument(
        "--deadline-batching", action="store_true",
        help="enable deadline-aware batch sizing on the server",
    )
    p_bench.add_argument(
        "--autoscale-min", type=int, default=None, metavar="N",
        help="autoscaler lower worker bound",
    )
    p_bench.add_argument(
        "--autoscale-max", type=int, default=None, metavar="N",
        help="autoscaler upper worker bound",
    )
    p_bench.add_argument(
        "--autoscale-interval", type=float, default=None, metavar="S",
        help="seconds between autoscaler sizing decisions",
    )
    p_bench.add_argument(
        "--wire", choices=("inproc", "ndjson", "binary"), default="inproc",
        help="transport under test: direct handler calls (inproc), or "
        "real loopback TCP with NDJSON or binary framing; with "
        "--compare, binary is A/B'd against NDJSON",
    )
    p_bench.add_argument(
        "--job-transport", choices=("ring", "pickle"), default="ring",
        help="worker job transport: preallocated shared-memory rings "
        "or per-job pickle",
    )
    p_bench.add_argument(
        "--plan-cache-size", type=int, default=None, metavar="N",
        help="compiled curve-plan cache entries; 0 disables "
        "(default: the server's built-in size)",
    )
    p_bench.add_argument(
        "--router-backends", type=int, default=0, metavar="N",
        help="route through a consistent-hash router over N local "
        "backend servers (requires --wire ndjson|binary)",
    )
    p_bench.add_argument(
        "--replication", type=int, default=1, metavar="R",
        help="per-key replication factor in --router-backends mode",
    )
    p_bench.add_argument(
        "--target", default=None, metavar="HOST:PORT",
        help="drive an already-running server or router instead of "
        "spawning one in-process (requires --wire ndjson|binary)",
    )

    p_lint = sub.add_parser(
        "lint", help="run replint, the repo's AST-based static analysis"
    )
    p_lint.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    p_lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    p_lint.add_argument(
        "--rules", metavar="IDS",
        help="comma-separated rule ids, e.g. RL001,RL005 (default: all)",
    )
    p_lint.add_argument(
        "--project", action="store_true",
        help="also run the whole-program flow rules (RL007-RL010)",
    )
    p_lint.add_argument(
        "--changed", nargs="?", const="HEAD", default=None, metavar="REF",
        help="lint only files whose dependency closure intersects the "
        "git diff against REF (default REF: HEAD)",
    )
    p_lint.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="process-pool width for per-file analysis (default: 1)",
    )
    p_lint.add_argument(
        "--cache-dir", type=Path, metavar="DIR",
        help="content-addressed per-file result cache",
    )
    p_lint.add_argument(
        "--verbose", action="store_true",
        help="also list suppressed findings with their reasons",
    )
    p_lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )

    p_perfreg = sub.add_parser(
        "perfreg", help="continuous performance-regression harness"
    )
    perfreg_sub = p_perfreg.add_subparsers(dest="perfreg_command", required=True)

    def _perfreg_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--checks", action="append", default=None, metavar="GLOB",
            help="check name or instance-id glob, repeatable "
                 "(default: every registered check)",
        )
        p.add_argument(
            "--root", type=Path, default=Path("."), metavar="DIR",
            help="directory holding the BENCH_*.json trajectories "
                 "(default: current directory)",
        )
        p.add_argument(
            "--json", action="store_true", help="machine-readable output"
        )
        p.add_argument(
            "--window", type=int, default=None, metavar="K",
            help="rolling-baseline window: median of the last K green "
                 "runs (default: 5)",
        )

    p_pr_run = perfreg_sub.add_parser(
        "run", help="run checks, grade vs baseline, append trajectories"
    )
    _perfreg_common(p_pr_run)
    p_pr_run.add_argument(
        "--reps", type=int, default=None, metavar="N",
        help="measured repetitions per check (default: 5)",
    )
    p_pr_run.add_argument(
        "--warmup", type=int, default=None, metavar="N",
        help="untimed warmup repetitions per check (default: 1)",
    )
    p_pr_run.add_argument(
        "--warn-pct", type=float, default=None, metavar="P",
        help="warn when a metric regresses more than P%% (default: 10)",
    )
    p_pr_run.add_argument(
        "--fail-pct", type=float, default=None, metavar="P",
        help="fail when a metric regresses more than P%% (default: 25)",
    )
    p_pr_run.add_argument(
        "--waivers", type=Path, default=None, metavar="FILE",
        help="waiver file (default: <root>/.perfreg-waivers)",
    )
    p_pr_run.add_argument(
        "--dry-run", action="store_true",
        help="measure and grade but append nothing to the trajectories",
    )

    p_pr_report = perfreg_sub.add_parser(
        "report", help="show recorded trajectory history"
    )
    _perfreg_common(p_pr_report)
    p_pr_report.add_argument(
        "--last", type=int, default=10, metavar="N",
        help="records shown per trajectory (default: 10)",
    )

    p_pr_base = perfreg_sub.add_parser(
        "baseline", help="show current rolling baselines"
    )
    _perfreg_common(p_pr_base)
    return parser


def _cmd_machines() -> str:
    from repro.core.params import MachineModel

    machines = [get_machine(key) for key, _ in list_machines()]
    return MachineModel.table(machines)


def _cmd_describe(key: str) -> str:
    machine = get_machine(key)
    return machine.describe() + "\n\n" + analyze(machine).describe()


def _cmd_curves(args: argparse.Namespace) -> str:
    machine = get_machine(args.machine)
    kw = dict(lo=args.lo, hi=args.hi)
    series = []
    if args.kind in ("roofline", "all"):
        series.append(roofline_series(machine, normalized=True, **kw))
    if args.kind in ("archline", "all"):
        series.append(archline_series(machine, normalized=True, **kw))
    blocks = []
    if series:
        blocks.append(
            render_chart(series, markers=vertical_markers(machine), title=machine.name)
        )
    if args.kind in ("powerline", "all"):
        power = powerline_series(machine, normalized=False, **kw)
        blocks.append(
            render_chart(
                [power],
                markers={"B_tau": machine.b_tau},
                title=f"{machine.name} — powerline (W)",
            )
        )
        series.append(power)
    if args.csv:
        write_csv(series, args.csv)
        blocks.append(f"series written to {args.csv}")
    if args.svg:
        from repro.viz.svg import write_svg

        write_svg(
            args.svg,
            series,
            markers=vertical_markers(machine),
            title=machine.name,
        )
        blocks.append(f"chart written to {args.svg}")
    return "\n\n".join(blocks)


def _cmd_experiment(args: argparse.Namespace) -> str:
    from repro.experiments import list_experiments, run_experiment

    if args.exp_command == "list":
        return "\n".join(f"{eid:<10} {title}" for eid, title in list_experiments())
    if args.exp_command == "summary":
        from repro.experiments.summary import build_summary

        return build_summary()
    from repro.experiments.runner import ExperimentRunner

    runner = ExperimentRunner(
        jobs=getattr(args, "jobs", 1),
        cache_dir=getattr(args, "cache_dir", None),
    )
    run_kwargs = {}
    if getattr(args, "max_variants", None) is not None:
        run_kwargs["max_variants"] = args.max_variants
    results = runner.run_many(args.id, **run_kwargs)
    blocks = []
    for result in results:
        text = result.text
        if getattr(args, "output", None):
            import json

            args.output.mkdir(parents=True, exist_ok=True)
            (args.output / f"{result.experiment_id}.txt").write_text(
                result.text + "\n"
            )
            (args.output / f"{result.experiment_id}.json").write_text(
                json.dumps(
                    {"title": result.title, "values": result.values},
                    indent=2,
                    sort_keys=True,
                )
                + "\n"
            )
            text += (
                f"\n\nreport archived under {args.output}/"
                f"{result.experiment_id}.{{txt,json}}"
            )
        blocks.append(text)
    return "\n\n".join(blocks)


def _cmd_fit(path: Path) -> str:
    samples = []
    with path.open() as handle:
        reader = csv.DictReader(handle)
        required = {"work", "traffic", "time", "energy", "double"}
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            raise ReproError(
                f"CSV must have columns {sorted(required)}, "
                f"got {reader.fieldnames}"
            )
        for row in reader:
            samples.append(
                EnergySample(
                    work=float(row["work"]),
                    traffic=float(row["traffic"]),
                    time=float(row["time"]),
                    energy=float(row["energy"]),
                    double_precision=row["double"].strip().lower()
                    in ("1", "true", "yes"),
                )
            )
    fit = fit_energy_coefficients(samples)
    lines = [fit.regression.summary(), "", fit.table_row(path.stem)]
    return "\n".join(lines)


def _cmd_tradeoff(args: argparse.Namespace) -> str:
    machine = get_machine(args.machine)
    baseline = AlgorithmProfile.from_intensity(args.intensity, work=1e12)
    analyzer = TradeoffAnalyzer(machine, baseline)
    lines = [
        f"{machine.name}: baseline I = {args.intensity:g} flop/B",
        f"{'m':>8}{'f* eq.(10)':>14}{'f* exact':>12}",
    ]
    for m, closed, exact in analyzer.frontier(args.m_values):
        lines.append(f"{m:>8.2f}{closed:>14.3f}{exact:>12.3f}")
    return "\n".join(lines)


def _cmd_partition(args: argparse.Namespace) -> str:
    from repro.scheduler import Device, HeterogeneousScheduler, IdlePolicy

    scheduler = HeterogeneousScheduler(
        Device(args.machine_a, get_machine(args.machine_a)),
        Device(args.machine_b, get_machine(args.machine_b)),
        idle_policy=IdlePolicy(args.idle_policy),
    )
    workload = AlgorithmProfile.from_intensity(
        args.intensity, work=args.work, name="workload"
    )
    return scheduler.summary(workload)


def _cmd_dvfs(args: argparse.Namespace) -> str:
    from repro.core.dvfs import DvfsMachine, DvfsPolicy

    machine = get_machine(args.machine)
    dvfs = DvfsMachine(
        machine, DvfsPolicy(static_fraction=args.static_fraction)
    )
    profile = AlgorithmProfile.from_intensity(args.intensity, work=1e12)
    lines = [
        f"{machine.name}: I = {args.intensity:g} flop/B, "
        f"static pi0 fraction {args.static_fraction:g}",
        f"{'s':>6}{'time':>12}{'energy':>12}{'power':>10}",
    ]
    for point in dvfs.sweep(profile, steps=args.steps):
        lines.append(
            f"{point.s:>6.2f}{point.time:>11.4g}s{point.energy:>11.4g}J"
            f"{point.power:>9.1f}W"
        )
    best = dvfs.energy_optimal_setting(profile)
    verdict = "race-to-halt" if dvfs.race_to_halt_wins(profile) else "crawl"
    lines.append(
        f"energy-optimal s = {best.s:.3f} ({best.energy:.4g} J) -> {verdict}"
    )
    return "\n".join(lines)


def _cmd_scaling(args: argparse.Namespace) -> str:
    from repro.cluster import (
        ClusterModel,
        allreduce_workload,
        stencil_halo_workload,
        summa_matmul_workload,
    )

    builders = {
        "summa": summa_matmul_workload,
        "stencil": stencil_halo_workload,
        "allreduce": allreduce_workload,
    }
    workload = builders[args.workload](args.size)
    cluster = ClusterModel(
        get_machine(args.machine),
        net_bandwidth=units.gbytes_to_bytes_per_second(args.net_gbytes),
        eps_net=units.picojoules(args.eps_net),
    )
    lines = [cluster.describe_scaling(workload, args.nodes)]
    limit = cluster.energy_flat_limit(workload)
    lines.append(
        f"energy-flat (within 10%) up to p = {limit}"
        if limit < cluster.max_nodes
        else "energy-flat beyond the search limit"
    )
    return "\n".join(lines)


def _cmd_app(args: argparse.Namespace) -> str:
    from repro.workloads import (
        cg_solver,
        fft_poisson_solver,
        fmm_pipeline,
        jacobi_heat_solver,
    )

    builders = {
        "cg": lambda n: cg_solver(n or 1_000_000),
        "fmm": lambda n: fmm_pipeline(n or 200_000),
        "fft-poisson": lambda n: fft_poisson_solver(n or (1 << 20)),
        "jacobi": lambda n: jacobi_heat_solver(n or 128),
    }
    app = builders[args.name](args.size)
    machine = get_machine(args.machine)
    lines = [app.describe(machine)]
    tb = app.time_bottleneck(machine)
    eb = app.energy_bottleneck(machine)
    lines.append(
        f"time bottleneck: {tb.name} ({tb.time_fraction:.0%}); "
        f"energy bottleneck: {eb.name} ({eb.energy_fraction:.0%})"
    )
    return "\n".join(lines)


def _cmd_serve(args: argparse.Namespace) -> str:
    import asyncio
    import json as _json

    from repro.service import ModelServer, ServerConfig

    def _log(record: dict) -> None:
        print(_json.dumps(record, sort_keys=True), file=sys.stderr)

    config = ServerConfig(
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        flush_window=units.milliseconds(args.flush_window_ms),
        cache_size=args.cache_size,
        cache_ttl=args.cache_ttl if args.cache_ttl > 0 else None,
        queue_limit=args.queue_limit,
        default_timeout=(
            units.milliseconds(args.default_timeout_ms)
            if args.default_timeout_ms
            else None
        ),
        access_log=_log if args.access_log else None,
        workers=args.workers,
        shard_by=args.shard_by,
        wire=args.wire,
        job_transport=args.job_transport,
        admission=args.admission,
        work_budget=args.work_budget,
        power_cap=args.power_cap,
        admission_wait=units.milliseconds(args.admission_wait_ms),
        deadline_batching=args.deadline_batching,
        autoscale_min=args.autoscale_min,
        autoscale_max=args.autoscale_max,
        autoscale_interval=args.autoscale_interval,
        **(
            {"plan_cache_size": args.plan_cache_size}
            if args.plan_cache_size is not None
            else {}
        ),
    )

    async def _serve() -> str:
        import signal

        server = ModelServer(config)
        host, port = await server.start()
        print(
            f"serving energy-roofline models on {host}:{port} "
            f"(max_batch={config.max_batch}, "
            f"flush_window={config.flush_window * 1000:g} ms, "
            f"cache={config.cache_size} entries, "
            f"workers={config.workers}, wire={config.wire}); "
            "ctrl-c to drain and stop",
            file=sys.stderr,
            flush=True,
        )
        stop_requested = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop_requested.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-unix event loops
        serve_task = asyncio.ensure_future(server.serve_forever())
        try:
            await stop_requested.wait()
        finally:
            serve_task.cancel()
            await asyncio.gather(serve_task, return_exceptions=True)
            await server.stop()
        stats = server.stats()
        return (
            f"served {stats['counters'].get('requests_total', 0)} requests "
            f"({stats['counters'].get('errors_total', 0)} errors, "
            f"cache hit ratio {stats['cache']['hit_ratio']:.1%}); "
            "drained cleanly"
        )

    try:
        return asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler fallback
        return "interrupted; server stopped"


def _cmd_route(args: argparse.Namespace) -> str:
    import asyncio

    from repro.service import RouterConfig, RouterServer

    config = RouterConfig(
        host=args.host,
        port=args.port,
        wire=args.wire,
        backend_wire=args.backend_wire,
        replication=args.replication,
        vnodes=args.vnodes,
        shard_by=args.shard_by,
        attempts=args.attempts,
        health_interval=args.health_interval,
        down_after=args.down_after,
    )

    async def _route() -> str:
        import signal

        router = RouterServer(args.backends, config)
        host, port = await router.start()
        print(
            f"routing energy-roofline requests on {host}:{port} over "
            f"{len(router.ring)} backends "
            f"({', '.join(router.ring.backends)}; "
            f"replication={config.replication}, vnodes={config.vnodes}, "
            f"shard_by={config.shard_by}, wire={config.wire}); "
            "ctrl-c to drain and stop",
            file=sys.stderr,
            flush=True,
        )
        stop_requested = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop_requested.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-unix event loops
        serve_task = asyncio.ensure_future(router.serve_forever())
        try:
            await stop_requested.wait()
        finally:
            serve_task.cancel()
            await asyncio.gather(serve_task, return_exceptions=True)
            await router.stop()
        stats = router.stats()
        counters = stats["counters"]
        per_backend = ", ".join(
            f"{name}: {info.get('requests_total', 0)}"
            for name, info in sorted(stats["backends"].items())
        )
        return (
            f"routed {counters.get('requests_total', 0)} requests "
            f"({counters.get('retries_total', 0)} retries, "
            f"{counters.get('failovers_total', 0)} failovers; "
            f"{per_backend}); drained cleanly"
        )

    try:
        return asyncio.run(_route())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler fallback
        return "interrupted; router stopped"


def _cmd_bench_serve(args: argparse.Namespace) -> str:
    from repro.service import bench_serving

    if (args.target or args.router_backends) and args.wire == "inproc":
        where = "--target" if args.target else "--router-backends"
        raise SystemExit(
            f"bench-serve: {where} drives a real TCP connection and "
            "cannot use --wire inproc; pass --wire ndjson or "
            "--wire binary"
        )
    if args.target and args.job_transport != "ring":
        raise SystemExit(
            "bench-serve: --job-transport configures a locally built "
            "server and has no effect on an external --target"
        )
    kwargs = dict(
        requests=args.requests,
        concurrency=args.concurrency,
        flush_window=units.milliseconds(args.flush_window_ms),
        cache_size=args.cache_size,
        machines=args.machines,
        model=args.model,
        metric=args.metric,
        unique_intensities=not args.repeat_intensities,
        workload=args.workload,
        shard_by=args.shard_by,
        open_loop_rate=args.open_loop,
        arrival=args.arrival,
        timeout_ms=args.timeout_ms,
        wire=args.wire,
        job_transport=None if args.target else args.job_transport,
        plan_cache_size=args.plan_cache_size,
        admission=args.admission,
        work_budget=args.work_budget,
        power_cap=args.power_cap,
        admission_wait=(
            units.milliseconds(args.admission_wait_ms)
            if args.admission_wait_ms is not None
            else None
        ),
        deadline_batching=args.deadline_batching or None,
        autoscale_min=args.autoscale_min,
        autoscale_max=args.autoscale_max,
        autoscale_interval=args.autoscale_interval,
        router_backends=args.router_backends,
        replication=args.replication,
        target=args.target,
    )
    report = bench_serving(
        max_batch=args.max_batch,
        workers=0 if args.target else args.workers,
        **kwargs,
    )
    mode = (
        "open-loop"
        if args.open_loop is not None or args.arrival is not None
        else "closed-loop"
    )
    blocks = [
        f"{mode} serving benchmark ({args.model}/{args.metric}, "
        f"workload: {args.workload}, machines: {', '.join(args.machines)})",
        report.describe(),
    ]
    if args.compare and args.wire == "binary":
        kwargs["wire"] = "ndjson"
        baseline = bench_serving(
            max_batch=args.max_batch, workers=args.workers, **kwargs
        )
        blocks.append("NDJSON framing (same server knobs):")
        blocks.append(baseline.describe())
        report_bytes = report.bytes_sent + report.bytes_received
        baseline_bytes = baseline.bytes_sent + baseline.bytes_received
        blocks.append(
            f"binary framing: p99 {baseline.p99_ms / report.p99_ms:.1f}x "
            f"lower, p50 {baseline.p50_ms / report.p50_ms:.1f}x lower, "
            f"throughput {report.throughput / baseline.throughput:.1f}x, "
            f"bytes on wire {baseline_bytes / report_bytes:.1f}x fewer"
        )
    elif args.compare and args.workers > 0:
        baseline = bench_serving(max_batch=args.max_batch, workers=0, **kwargs)
        blocks.append("worker pool disabled (in-loop execution):")
        blocks.append(baseline.describe())
        blocks.append(
            f"worker-pool speedup ({args.workers} workers): "
            f"{report.throughput / baseline.throughput:.1f}x"
        )
    elif args.compare and args.max_batch > 1:
        baseline = bench_serving(max_batch=1, workers=args.workers, **kwargs)
        blocks.append("batching disabled (max_batch=1):")
        blocks.append(baseline.describe())
        blocks.append(
            f"micro-batching speedup: "
            f"{report.throughput / baseline.throughput:.1f}x"
        )
    return "\n\n".join(blocks)


def _git_changed_python_files(ref: str) -> set[Path] | None:
    """Python files touched relative to ``ref``, plus untracked ones.

    Returns ``None`` when git is unavailable or the ref does not
    resolve — the caller maps that to a usage error rather than
    silently linting nothing.
    """
    import subprocess

    def run(*argv: str) -> str:
        return subprocess.run(
            ["git", *argv], capture_output=True, text=True, check=True
        ).stdout

    try:
        root = Path(run("rev-parse", "--show-toplevel").strip())
        listed = run("diff", "--name-only", ref, "--").splitlines()
        listed += run(
            "ls-files", "--others", "--exclude-standard"
        ).splitlines()
    except (subprocess.CalledProcessError, FileNotFoundError, OSError):
        return None
    return {
        (root / line).resolve()
        for line in listed
        if line.endswith(".py") and (root / line).is_file()
    }


def _merged_report(file_report, project_report):
    from repro.lint import LintReport

    findings = sorted(
        [*file_report.findings, *project_report.findings],
        key=lambda f: (f.path, f.line, f.col, f.rule),
    )
    suppressed = sorted(
        [*file_report.suppressed, *project_report.suppressed],
        key=lambda item: (item[0].path, item[0].line, item[0].rule),
    )
    return LintReport(
        findings=findings,
        suppressed=suppressed,
        files_checked=file_report.files_checked,
        rule_ids=sorted(
            {*file_report.rule_ids, *project_report.rule_ids}
        ),
    )


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run replint; returns 0 clean, 1 findings, 2 usage error.

    Unlike the other subcommands this returns the exit code directly —
    lint distinguishes "violations found" (1) from "you asked for a rule
    that does not exist" (2), a contract the CI step and the pre-commit
    wrapper both rely on.  ``--project`` layers the whole-program pass
    (RL007–RL010) on top of the per-file rules and merges the reports;
    ``--changed REF`` restricts both passes to the files whose
    dependency closure intersects the diff against REF.
    """
    from repro.lint import (
        iter_python_files,
        module_relpath,
        render_json,
        render_sarif,
        render_text,
        run_lint,
        run_project_lint,
    )
    from repro.lint.registry import (
        UnknownRuleError,
        all_rules,
        project_rules,
        resolve_rules,
    )

    if args.list_rules:
        rules = all_rules()
        width = max(len(rid) for rid in rules)
        for rid, rule in rules.items():
            scope = " [project]" if rule.scope == "project" else ""
            print(f"{rid:<{width}}  {rule.title}{scope}")
        return 0
    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    paths = args.paths or [Path(__file__).resolve().parent]
    try:
        if args.rules is not None and not args.project:
            selected_project = project_rules(resolve_rules(args.rules))
            if selected_project:
                print(
                    "error: rule(s) "
                    f"{', '.join(selected_project)} are project-scope; "
                    "add --project to run them",
                    file=sys.stderr,
                )
                return 2
        file_targets: list[Path] | None = None
        changed_relpaths: set[str] | None = None
        if args.changed is not None:
            changed = _git_changed_python_files(args.changed)
            if changed is None:
                print(
                    f"error: cannot resolve git diff against "
                    f"{args.changed!r}",
                    file=sys.stderr,
                )
                return 2
            file_targets = [
                p for p in iter_python_files(paths) if p in changed
            ]
            changed_relpaths = {module_relpath(p) for p in file_targets}
        report = run_lint(
            file_targets if file_targets is not None else paths,
            rules=args.rules,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
        )
        if args.project:
            project_report = run_project_lint(
                paths,
                rules=args.rules,
                jobs=args.jobs,
                cache_dir=args.cache_dir,
                changed_only=changed_relpaths,
            )
            report = _merged_report(report, project_report)
    except UnknownRuleError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(report))
    elif args.format == "sarif":
        print(render_sarif(report))
    else:
        print(render_text(report, verbose=args.verbose))
    return 0 if report.clean else 1


def _cmd_perfreg(args: argparse.Namespace) -> int:
    """Run the perf-regression harness; returns the verdict exit code.

    Like ``lint``, this returns its exit code directly: ``run`` maps
    the worst verdict to 0 (pass) / 1 (warn) / 2 (fail), the contract
    the CI job keys on; usage errors (unknown check pattern, bad
    waiver line) also exit 2 with a one-line diagnostic.
    """
    from repro.perfreg import Tolerance, run_checks
    from repro.perfreg.baseline import DEFAULT_TOLERANCE, DEFAULT_WINDOW
    from repro.perfreg.harness import baseline_table
    from repro.perfreg.registry import UnknownCheckError, expand_checks
    from repro.perfreg.report import (
        render_baselines,
        render_result_json,
        render_result_text,
        render_trajectories_json,
        render_trajectories_text,
    )
    from repro.perfreg.trajectory import bench_path, load_trajectory
    from repro.perfreg.waivers import WaiverError

    window = args.window if args.window is not None else DEFAULT_WINDOW
    if window < 1:
        print(f"error: --window must be >= 1, got {window}", file=sys.stderr)
        return 2
    try:
        if args.perfreg_command == "run":
            warn_ratio = (
                units.percent(args.warn_pct)
                if args.warn_pct is not None
                else DEFAULT_TOLERANCE.warn_ratio
            )
            fail_ratio = (
                units.percent(args.fail_pct)
                if args.fail_pct is not None
                else DEFAULT_TOLERANCE.fail_ratio
            )
            result = run_checks(
                args.checks,
                root=args.root,
                reps=args.reps,
                warmup=args.warmup,
                tolerance=Tolerance(
                    warn_ratio=warn_ratio, fail_ratio=fail_ratio
                ),
                window=window,
                waivers_path=args.waivers,
                dry_run=args.dry_run,
            )
            print(
                render_result_json(result)
                if args.json
                else render_result_text(result)
            )
            return result.exit_code
        if args.perfreg_command == "report":
            areas = sorted(
                {inst.area for inst in expand_checks(args.checks)}
            )
            trajectories = [
                load_trajectory(bench_path(args.root, area))
                for area in areas
            ]
            trajectories = [t for t in trajectories if t.records or t.skipped]
            render = (
                render_trajectories_json
                if args.json
                else render_trajectories_text
            )
            print(render(trajectories, last=args.last))
            return 0
        baselines = baseline_table(
            args.checks, root=args.root, window=window
        )
        print(render_baselines(baselines, as_json=args.json))
        return 0
    except (UnknownCheckError, WaiverError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "perfreg":
        return _cmd_perfreg(args)
    try:
        if args.command == "machines":
            output = _cmd_machines()
        elif args.command == "describe":
            output = _cmd_describe(args.machine)
        elif args.command == "curves":
            output = _cmd_curves(args)
        elif args.command == "experiment":
            output = _cmd_experiment(args)
        elif args.command == "fit":
            output = _cmd_fit(args.csv)
        elif args.command == "tradeoff":
            output = _cmd_tradeoff(args)
        elif args.command == "partition":
            output = _cmd_partition(args)
        elif args.command == "dvfs":
            output = _cmd_dvfs(args)
        elif args.command == "scaling":
            output = _cmd_scaling(args)
        elif args.command == "app":
            output = _cmd_app(args)
        elif args.command == "serve":
            output = _cmd_serve(args)
        elif args.command == "route":
            output = _cmd_route(args)
        elif args.command == "bench-serve":
            output = _cmd_bench_serve(args)
        else:  # pragma: no cover - argparse enforces choices
            parser.error(f"unknown command {args.command}")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        # Missing input files, unreadable paths, ports already in use:
        # environmental failures deserve one line, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        print(output)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that is not our error.
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""repro — an energy roofline model library.

A production-grade reproduction of *"A Roofline Model of Energy"*
(Choi, Bedard, Fowler, Vuduc — IPDPS 2013): analytic time/energy/power
models for algorithm design, a simulated measurement substrate
(PowerMon 2 + PCIe interposer analogue), intensity microbenchmarks, an
FMM U-list case study, and a benchmark harness regenerating every table
and figure of the paper's evaluation.

Quickstart
----------
>>> from repro import machines, TimeModel, EnergyModel
>>> gpu = machines.gtx580_double()
>>> round(gpu.b_tau, 2), round(gpu.b_eps, 2)
(1.03, 2.42)
>>> EnergyModel(gpu).normalized_efficiency(gpu.effective_balance_crossing)
0.5

See ``examples/quickstart.py`` for a guided tour and ``DESIGN.md`` for the
full system inventory.
"""

from repro import machines
from repro.core.algorithm import AlgorithmProfile
from repro.core.balance import BalanceReport, BoundQuadrant, analyze, classify_quadrant
from repro.core.energy_model import EnergyBreakdown, EnergyModel
from repro.core.fitting import (
    EnergySample,
    FittedCoefficients,
    fit_cache_energy,
    fit_energy_coefficients,
)
from repro.core.multilevel import (
    HierarchicalProfile,
    MemoryHierarchy,
    MemoryLevel,
    MultiLevelEnergyModel,
)
from repro.core.params import MachineModel
from repro.core.power_model import PowerModel
from repro.core.powercap import CapAnalysis, CappedModel
from repro.core.rooflines import (
    CurveSeries,
    archline_series,
    powerline_series,
    roofline_series,
    roofline_vs_archline,
)
from repro.core.time_model import TimeBound, TimeBreakdown, TimeModel
from repro.core.tradeoff import (
    TradeOutcome,
    TradeoffAnalyzer,
    TradeoffPoint,
    greenup_threshold_work,
    greenup_work_ceiling,
)
from repro.core.workdepth import DepthProfile, WorkDepthTimeModel
from repro.core.ceilings import Ceiling, CeilingDiagnosis, RooflineCeilings
from repro.core.concurrency import ConcurrencyModel, MemorySubsystem
from repro.core.dvfs import DvfsMachine, DvfsPolicy, OperatingPoint
from repro.core.metrics import FusedMetrics, MetricPoint, edp, ed2p, generalized_edp
from repro.core.precision import MixedPrecisionAnalyzer, PrecisionOutcome
from repro.core.sensitivity import (
    EnergySensitivity,
    energy_sensitivity,
    whatif_pi0_zero,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "machines",
    # characterisation
    "MachineModel",
    "AlgorithmProfile",
    # models
    "TimeModel",
    "TimeBound",
    "TimeBreakdown",
    "EnergyModel",
    "EnergyBreakdown",
    "PowerModel",
    "CappedModel",
    "CapAnalysis",
    "WorkDepthTimeModel",
    "DepthProfile",
    # balance analysis
    "BalanceReport",
    "BoundQuadrant",
    "analyze",
    "classify_quadrant",
    # curves
    "CurveSeries",
    "roofline_series",
    "archline_series",
    "powerline_series",
    "roofline_vs_archline",
    # trade-offs
    "TradeoffAnalyzer",
    "TradeoffPoint",
    "TradeOutcome",
    "greenup_threshold_work",
    "greenup_work_ceiling",
    # fitting
    "EnergySample",
    "FittedCoefficients",
    "fit_energy_coefficients",
    "fit_cache_energy",
    # multi-level memory
    "MemoryLevel",
    "MemoryHierarchy",
    "HierarchicalProfile",
    "MultiLevelEnergyModel",
    # DVFS
    "DvfsMachine",
    "DvfsPolicy",
    "OperatingPoint",
    # fused metrics
    "FusedMetrics",
    "MetricPoint",
    "edp",
    "ed2p",
    "generalized_edp",
    # sensitivity
    "EnergySensitivity",
    "energy_sensitivity",
    "whatif_pi0_zero",
    # ceilings
    "Ceiling",
    "CeilingDiagnosis",
    "RooflineCeilings",
    # concurrency / latency refinement
    "ConcurrencyModel",
    "MemorySubsystem",
    # mixed precision
    "MixedPrecisionAnalyzer",
    "PrecisionOutcome",
]

"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation removes or varies one ingredient and records how far the
reproduction's headline numbers move:

* **measurement noise level** — how fit quality (coefficient recovery)
  degrades as ADC/sensor noise grows;
* **sampling rate** — energy-measurement error at 32/128/512 Hz (the
  paper samples at 128 Hz);
* **power cap on/off** — the Fig. 4b roofline sag disappears without the
  cap, confirming the §V-B attribution;
* **cache term on/off** — the §V-C estimator error with and without the
  fitted cache coefficient.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import MeasurementProtocol, NoiseProfile
from repro.core.fitting import fit_energy_coefficients
from repro.microbench.sweep import IntensitySweep
from repro.powermon.channels import gpu_rails
from repro.powermon.session import MeasurementSession
from repro.simulator.device import SimulatedDevice, gtx580_truth
from repro.simulator.kernel import KernelSpec, Precision

INTENSITIES = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0]


def _fit_error_at_noise(scale: float) -> float:
    """Worst relative coefficient-recovery error at a noise multiplier."""
    noise = NoiseProfile(
        voltage_sigma=0.002 * scale,
        current_sigma=0.005 * scale,
        adc_bits=12,
    )
    truth = gtx580_truth()
    samples = []
    for precision in (Precision.SINGLE, Precision.DOUBLE):
        sweep = IntensitySweep(truth, precision=precision, noise=noise, seed=99)
        samples.extend(sweep.run(INTENSITIES).energy_samples())
    fit = fit_energy_coefficients(samples)
    return max(
        abs(fit.eps_single / truth.eps_single - 1.0),
        abs(fit.eps_mem / truth.eps_mem - 1.0),
        abs(fit.pi0 / truth.pi0 - 1.0),
    )


def test_ablation_noise_vs_fit_quality(benchmark):
    """Fit error grows with sensor noise but stays graceful up to 4x."""

    def sweep_noise_levels():
        return {scale: _fit_error_at_noise(scale) for scale in (0.0, 1.0, 4.0)}

    errors = benchmark.pedantic(
        sweep_noise_levels, rounds=1, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info.update({f"err_at_{k}x": round(v, 5) for k, v in errors.items()})
    # scale 0 zeroes the Gaussian sigmas but keeps 12-bit quantisation,
    # so a small floor remains.
    assert errors[0.0] < 5e-3
    assert errors[0.0] <= errors[4.0]
    assert errors[4.0] < 0.10


def _energy_error_at_rate(sample_hz: float) -> float:
    """Relative energy error of one measured kernel at a sampling rate."""
    device = SimulatedDevice(gtx580_truth())
    session = MeasurementSession(
        device,
        gpu_rails(),
        protocol=MeasurementProtocol(sample_hz=sample_hz, repetitions=100),
        seed=7,
    )
    kernel = KernelSpec.from_intensity(
        4.0, work=8e10, precision=Precision.SINGLE,
        launch=device.truth.tuning.optimal_launch,
    )
    m = session.measure(kernel)
    return abs(m.energy / m.truth.energy - 1.0)


def test_ablation_sampling_rate_vs_energy_error(benchmark):
    """Energy error is already small at the paper's 128 Hz."""

    def sweep_rates():
        return {hz: _energy_error_at_rate(hz) for hz in (32.0, 128.0, 512.0)}

    errors = benchmark.pedantic(sweep_rates, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info.update(
        {f"err_at_{int(k)}hz": round(v, 5) for k, v in errors.items()}
    )
    assert errors[128.0] < 0.01
    assert errors[512.0] < 0.01


def test_ablation_power_cap_attribution(benchmark):
    """Removing the cap removes the Fig. 4b sag — §V-B's explanation."""
    import dataclasses

    def sag(with_cap: bool) -> float:
        truth = gtx580_truth()
        if not with_cap:
            truth = dataclasses.replace(truth, power_cap=None)
        sweep = IntensitySweep(truth, precision=Precision.SINGLE, seed=5)
        result = sweep.run(INTENSITIES)
        device = SimulatedDevice(truth)
        worst = 0.0
        for point in result.points:
            kernel = point.measurement.kernel
            free = device.execute(kernel, efficiency=None)
            ideal_rate = kernel.work / max(
                kernel.work / (truth.peak_flops(Precision.SINGLE)
                               * truth.nonideal_single.flop_fraction),
                kernel.traffic / (truth.peak_bandwidth
                                  * truth.nonideal_single.bandwidth_fraction),
            )
            achieved = kernel.work / point.measurement.time
            worst = max(worst, 1.0 - achieved / ideal_rate)
        return worst

    def both():
        return sag(True), sag(False)

    capped, uncapped = benchmark.pedantic(both, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info.update(
        {"sag_with_cap": round(capped, 4), "sag_without_cap": round(uncapped, 4)}
    )
    assert capped > 0.15
    assert uncapped < 0.02


def test_ablation_dvfs_model_vs_simulated_hardware(benchmark):
    """Validate the DVFS model against simulated scaled hardware.

    Build device truths whose spec peaks, flop energy, and constant
    power follow the same scaling policy, measure a kernel through the
    full PowerMon chain at each frequency, and check the DvfsMachine
    *model* predicts the measured energy ratios.
    """
    import dataclasses

    from repro.core.algorithm import AlgorithmProfile
    from repro.core.dvfs import DvfsMachine, DvfsPolicy
    from repro.machines.catalog import i7_950_double
    from repro.machines.specs import I7_950_SPEC
    from repro.powermon.channels import atx_cpu_rails
    from repro.powermon.session import MeasurementSession
    from repro.simulator.device import SimulatedDevice, i7_950_truth

    policy = DvfsPolicy(static_fraction=0.3)
    intensity = 8.0  # compute-bound at every frequency in range
    model = DvfsMachine(i7_950_double(), policy)
    profile = AlgorithmProfile.from_intensity(intensity, work=1e10)

    def measure_at(s: float) -> float:
        spec = dataclasses.replace(
            I7_950_SPEC,
            peak_sp_gflops=I7_950_SPEC.peak_sp_gflops * s,
            peak_dp_gflops=I7_950_SPEC.peak_dp_gflops * s,
        )
        truth = dataclasses.replace(
            i7_950_truth(),
            spec=spec,
            eps_double=i7_950_truth().eps_double * policy.flop_energy_scale(s),
            pi0=i7_950_truth().pi0 * policy.constant_power_scale(s),
        )
        device = SimulatedDevice(truth)
        session = MeasurementSession(device, atx_cpu_rails(), seed=21)
        kernel = KernelSpec.from_intensity(
            intensity, work=1e10, precision=Precision.DOUBLE,
            launch=truth.tuning.optimal_launch,
        )
        return session.measure(kernel).energy

    def compare():
        rows = {}
        for s in (0.5, 0.75, 1.0):
            measured = measure_at(s)
            predicted = model.evaluate(profile, s).energy
            rows[s] = (measured, predicted)
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1, warmup_rounds=0)
    base_m, base_p = rows[1.0]
    for s, (measured, predicted) in rows.items():
        model_ratio = predicted / base_p
        measured_ratio = measured / base_m
        benchmark.extra_info[f"ratio_err_s{s}"] = round(
            abs(model_ratio / measured_ratio - 1.0), 4
        )
        # The model is ideal-throughput; the hardware runs at achieved
        # fractions — ratios cancel that, so they should agree to ~2%.
        assert abs(model_ratio / measured_ratio - 1.0) < 0.02


def test_ablation_cache_term(benchmark):
    """The §V-C correction, quantified: naive vs cache-corrected error."""
    from repro.experiments import run_experiment

    def study():
        return run_experiment("fmm", n_points=2000, leaf_capacity=48)

    result = benchmark.pedantic(study, rounds=1, iterations=1, warmup_rounds=0)
    naive = abs(result.value("naive_mean_signed_error"))
    corrected = result.value("corrected_median_error")
    benchmark.extra_info.update(
        {"naive_mean_abs": round(naive, 4), "corrected_median": round(corrected, 4)}
    )
    assert corrected < naive / 4

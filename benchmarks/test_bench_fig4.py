"""Fig. 4 benchmark: the full four-panel measured-vs-model campaign.

Regenerates every Fig. 4 series: intensity sweeps on both simulated
devices at both precisions, measured through the PowerMon chain, with
the paper's headline achieved-performance numbers asserted:

=============  =================  ===========
 panel           paper GFLOP/s      paper GB/s
=============  =================  ===========
 GPU double      196                170
 GPU single      1398               168
 CPU double      49.7               18.9
 CPU single      99.4               18.7
=============  =================  ===========
"""

from __future__ import annotations

from repro.experiments import run_experiment

PAPER_PEAKS = {
    "gpu_double": (196.0, 170.0),
    "gpu_single": (1398.0, 168.0),
    "cpu_double": (49.7, 18.9),
    "cpu_single": (99.4, 18.7),
}


def test_fig4_reproduction(benchmark, run_once, record):
    result = run_once(run_experiment, "fig4")
    record(result)
    print()
    print(result.text)
    for key, (gflops, bandwidth) in PAPER_PEAKS.items():
        measured_gf = result.value(f"{key}_max_gflops")
        measured_bw = result.value(f"{key}_max_bandwidth")
        assert abs(measured_gf / gflops - 1.0) < 0.02, key
        assert abs(measured_bw / bandwidth - 1.0) < 0.02, key
    # The single-precision GPU panel departs from the roofline near B_tau
    # (power cap, §V-B); every other panel tracks its effective roofline.
    assert result.value("gpu_single_time_roofline_max_sag") > 0.15
    assert result.value("gpu_double_time_roofline_max_sag") < 0.02

"""Table II benchmark: Keckler-Fermi parameter derivation.

Paper values: tau_flop 1.9 ps, tau_mem 6.9 ps, B_tau 3.6, B_eps 14.4.
"""

from __future__ import annotations

from repro.experiments import run_experiment


def test_table2_reproduction(benchmark, run_once, record):
    result = run_once(run_experiment, "table2")
    record(result)
    print()
    print(result.text)
    assert abs(result.value("b_tau") - 3.576) < 0.01
    assert abs(result.value("b_eps") - 14.4) < 0.01

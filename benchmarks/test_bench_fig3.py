"""Fig. 3 benchmark: measurement-wiring validation."""

from __future__ import annotations

from repro.experiments import run_experiment


def test_fig3_reproduction(benchmark, run_once, record):
    result = run_once(run_experiment, "fig3")
    record(result)
    print()
    print(result.text)
    assert result.value("slot_within_spec") == 1.0
    assert result.value("interposer_undercount") > 0.10

"""Eq. (10) benchmark: the greenup/speedup frontier map."""

from __future__ import annotations

from repro.experiments import run_experiment


def test_greenup_reproduction(benchmark, run_once, record):
    result = run_once(run_experiment, "greenup")
    record(result)
    print()
    print(result.text)
    # Eq. (10) structure: thresholds increase with m toward the ceiling.
    assert (
        1.0
        < result.value("threshold_m2_closed")
        < result.value("threshold_m8_closed")
        < result.value("ceiling")
    )
    # All four (f, m) outcomes are populated somewhere on the lattice.
    assert result.value("census_both") > 0
    assert result.value("census_neither") > 0

"""Table IV benchmark: eq. (9) regression recovering the coefficients.

Paper (= hidden simulator truth):

================  ======  ======  ========  =====
 platform           eps_s   eps_d   eps_mem   pi0
================  ======  ======  ========  =====
 GTX 580            99.7    212     513       122
 i7-950             371     670     795       122
================  ======  ======  ========  =====
"""

from __future__ import annotations

from repro.experiments import run_experiment

PAPER = {
    "gpu_eps_single_pj": 99.7,
    "gpu_eps_double_pj": 212.0,
    "gpu_eps_mem_pj": 513.0,
    "gpu_pi0": 122.0,
    "cpu_eps_single_pj": 371.0,
    "cpu_eps_double_pj": 670.0,
    "cpu_eps_mem_pj": 795.0,
    "cpu_pi0": 122.0,
}


def test_table4_reproduction(benchmark, run_once, record):
    result = run_once(run_experiment, "table4")
    record(result)
    print()
    print(result.text)
    for key, paper_value in PAPER.items():
        assert abs(result.value(key) / paper_value - 1.0) < 0.03, key
    assert result.value("gpu_r_squared") > 0.999
    assert result.value("cpu_r_squared") > 0.999

"""Batch fast path benchmark: vectorized model evaluation vs scalar loops.

The acceptance bar for the batch layer: on a 10k-point intensity grid,
evaluating the time/energy/power models through the ``*_batch`` methods
must be at least 5× faster than the equivalent Python loop over the
scalar API.  The timing loop itself lives in
:func:`repro.perfreg.checks.measure_batch_sweep` — the same function
the ``batch.sweep`` perfreg check records trajectories with — so this
gate and the regression harness cannot disagree on methodology.
Equivalence to 1e-12 is asserted inside the measurement (a
:class:`~repro.perfreg.check.SanityError` voids the run) and locked
down separately in ``tests/core/test_batch_equivalence.py``.
"""

from __future__ import annotations

from repro.perfreg.checks import MIN_BATCH_SPEEDUP, measure_batch_sweep

GRID_POINTS = 10_000


def test_batch_sweep_is_5x_faster_than_scalar_loop(benchmark, methodology):
    values = measure_batch_sweep(
        points=GRID_POINTS,
        repeats=methodology.reps,
        warmup=methodology.warmup,
    )
    benchmark.pedantic(
        lambda: measure_batch_sweep(points=GRID_POINTS, repeats=1, warmup=0),
        rounds=1, iterations=1, warmup_rounds=0,
    )

    speedup = values["speedup"]
    benchmark.extra_info.update(
        {
            "grid_points": GRID_POINTS,
            "scalar_ms": round(values["scalar_ms"], 3),
            "batch_ms": round(values["batch_ms"], 3),
            "speedup": round(speedup, 1),
        }
    )
    print(f"\n10k-point sweep: scalar {values['scalar_ms']:.1f} ms, "
          f"batch {values['batch_ms']:.3f} ms -> {speedup:.0f}x")
    assert speedup >= MIN_BATCH_SPEEDUP

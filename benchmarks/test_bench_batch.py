"""Batch fast path benchmark: vectorized model evaluation vs scalar loops.

The acceptance bar for the batch layer: on a 10k-point intensity grid,
evaluating the time/energy/power models through the ``*_batch`` methods
must be at least 5× faster than the equivalent Python loop over the
scalar API.  Equivalence to 1e-12 is locked down separately in
``tests/core/test_batch_equivalence.py``; this module times the win.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.energy_model import EnergyModel
from repro.core.power_model import PowerModel
from repro.core.time_model import TimeModel
from repro.machines.catalog import get_machine

GRID = 10.0 ** np.random.default_rng(20130520).uniform(-3.0, 3.0, 10_000)
MIN_SPEEDUP = 5.0


def _best_of(func, repeats: int = 3) -> float:
    """Fastest wall time over a few repeats (min damps scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _scalar_sweep(machine) -> np.ndarray:
    t = TimeModel(machine)
    e = EnergyModel(machine)
    p = PowerModel(machine)
    return np.array(
        [
            [
                t.attainable_gflops(float(x)),
                e.attainable_gflops_per_joule(float(x)),
                p.power(float(x)),
            ]
            for x in GRID
        ]
    )


def _batch_sweep(machine) -> np.ndarray:
    t = TimeModel(machine)
    e = EnergyModel(machine)
    p = PowerModel(machine)
    return np.column_stack(
        [
            t.attainable_gflops_batch(GRID),
            e.attainable_gflops_per_joule_batch(GRID),
            p.power_batch(GRID),
        ]
    )


def test_batch_sweep_is_5x_faster_than_scalar_loop(benchmark):
    machine = get_machine("gtx580-double")
    # Warm both paths so import/JIT-style one-time costs stay out of the timing.
    scalar_values = _scalar_sweep(machine)
    batch_values = _batch_sweep(machine)
    np.testing.assert_allclose(batch_values, scalar_values, rtol=1e-12, atol=0.0)

    scalar_time = _best_of(lambda: _scalar_sweep(machine))
    batch_time = _best_of(lambda: _batch_sweep(machine))
    benchmark.pedantic(
        lambda: _batch_sweep(machine), rounds=3, iterations=1, warmup_rounds=0
    )

    speedup = scalar_time / batch_time
    benchmark.extra_info.update(
        {
            "grid_points": len(GRID),
            "scalar_seconds": round(scalar_time, 6),
            "batch_seconds": round(batch_time, 6),
            "speedup": round(speedup, 1),
        }
    )
    print(f"\n10k-point sweep: scalar {scalar_time * 1e3:.1f} ms, "
          f"batch {batch_time * 1e3:.3f} ms -> {speedup:.0f}x")
    assert speedup >= MIN_SPEEDUP

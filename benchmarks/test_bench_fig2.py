"""Fig. 2 benchmark: theoretical roofline/arch-line/powerline generation.

Also micro-benchmarks the raw model-evaluation throughput (the analytic
core should evaluate millions of intensities per second — cheap enough
to embed in autotuners and schedulers).
"""

from __future__ import annotations

import numpy as np

from repro.core.energy_model import EnergyModel
from repro.core.power_model import PowerModel
from repro.core.time_model import TimeModel
from repro.experiments import run_experiment
from repro.machines.catalog import keckler_fermi


def test_fig2_reproduction(benchmark, run_once, record):
    result = run_once(run_experiment, "fig2")
    record(result)
    print()
    print(result.text)
    assert abs(result.value("max_power_rel") - 5.0) < 0.05
    assert abs(result.value("memory_limit_rel") - 4.0) < 0.05


def test_fig2_roofline_evaluation_throughput(benchmark):
    """Model-math speed: eq. (3) over a dense intensity grid."""
    model = TimeModel(keckler_fermi())
    grid = np.exp2(np.linspace(-2, 9, 10_000)).tolist()

    def evaluate():
        return [model.normalized_performance(i) for i in grid]

    values = benchmark(evaluate)
    assert max(values) == 1.0


def test_fig2_archline_evaluation_throughput(benchmark):
    """Model-math speed: eqs. (5)-(6) over a dense intensity grid."""
    model = EnergyModel(keckler_fermi())
    grid = np.exp2(np.linspace(-2, 9, 10_000)).tolist()

    def evaluate():
        return [model.normalized_efficiency(i) for i in grid]

    values = benchmark(evaluate)
    assert 0.0 < min(values) < max(values) < 1.0


def test_fig2_powerline_evaluation_throughput(benchmark):
    """Model-math speed: eq. (7) over a dense intensity grid."""
    model = PowerModel(keckler_fermi())
    grid = np.exp2(np.linspace(-2, 9, 10_000)).tolist()

    def evaluate():
        return [model.power(i) for i in grid]

    values = benchmark(evaluate)
    assert max(values) > min(values)

"""Serving benchmarks: micro-batching, the worker-pool tier, the
zero-copy wire path, the scale-out router's hop tax, and cost-model
admission under saturation.

Five acceptance bars for the serving subsystem:

* on a scalar-evaluation workload (the capped model's
  ``energy_per_flop`` — the heaviest analytic path the protocol
  serves), the micro-batched configuration must sustain at least 5×
  the throughput of the same server with batching disabled
  (``max_batch=1``), everything else equal;
* on the CPU-bound ``heavy`` workload (dense curves, large grids),
  four worker processes must sustain at least 2× the throughput of
  in-loop execution (``workers=0``) — this one needs ≥ 4 usable
  cores and skips itself elsewhere, exactly like a GPU test without
  a GPU;
* on the mixed workload over a real loopback TCP socket with two
  workers, the zero-copy hot path (binary framing + shared-memory
  ring job transport + compiled curve-plan cache) must cut p99
  latency at least 5× against the NDJSON + per-job-pickle + uncached
  stack — ≥ 2 usable cores, skips itself elsewhere;
* the consistent-hash router (two backends, replication 2, binary
  framing) must cost at most 5× the median latency of a direct single
  server on the same wire and workload — the extra loopback hop and
  envelope re-wrap are the whole tax.  The gate is on p50, not p99:
  the client, router, and backends all share one host here, so the
  routed tail measures scheduler contention, not the hop;
* at an offered load well past single-loop capacity (heavy workload,
  open loop, plan and response caches off), cost-model admission with
  deadline-aware batching must cut p99 latency — measured from the
  intended arrival instant, refused requests included — at least
  1.5× against depth admission at the identical seeded arrival
  schedule and request deadline.

All comparisons run through
:func:`repro.perfreg.checks.measure_micro_batching`,
:func:`repro.perfreg.checks.measure_worker_pool`,
:func:`repro.perfreg.checks.measure_wire_path`,
:func:`repro.perfreg.checks.measure_router_path`, and
:func:`repro.perfreg.checks.measure_cost_admission` — the same
measurement functions the ``service.micro_batching``,
``service.worker_pool``, ``service.wire_framing``,
``service.router``, and ``service.cost_admission`` perfreg checks
record trajectories with —
so a number that gates CI and a number in ``BENCH_service.json``
were produced the same way.  Sanity (zero errors, batching genuinely
on/off, worker topology) is asserted inside the measurement; the
response cache is off in every run so each measurement isolates the
execution path under test.  Bit-identity is locked down in
``tests/service/test_server.py`` and ``tests/service/test_workers.py``;
this module times the wins.
"""

from __future__ import annotations

import pytest

from repro.perfreg.checks import (
    MAX_ROUTER_P50_OVERHEAD,
    MIN_COST_ADMISSION_P99_SPEEDUP,
    MIN_MICROBATCH_SPEEDUP,
    MIN_WIRE_P99_SPEEDUP,
    MIN_WORKER_SPEEDUP,
    measure_cost_admission,
    measure_micro_batching,
    measure_router_path,
    measure_serving,
    measure_wire_path,
    measure_worker_pool,
    usable_cores,
)

REQUESTS = 4000
WORKER_REQUESTS = 1600
WIRE_REQUESTS = 1200
ROUTER_REQUESTS = 600
ADMISSION_REQUESTS = 600

USABLE_CORES = usable_cores()


def test_micro_batched_serving_is_5x_faster(benchmark, methodology):
    values = measure_micro_batching(
        requests=REQUESTS, repeats=methodology.reps
    )
    batched, unbatched = values["batched"], values["unbatched"]
    benchmark.pedantic(
        lambda: measure_serving(
            requests=REQUESTS, concurrency=128, max_batch=64
        ),
        rounds=1, iterations=1, warmup_rounds=0,
    )

    speedup = values["speedup"]
    benchmark.extra_info.update(
        {
            "requests": REQUESTS,
            "batched_rps": round(batched.throughput),
            "unbatched_rps": round(unbatched.throughput),
            "batched_p50_ms": round(batched.p50_ms, 3),
            "batched_p99_ms": round(batched.p99_ms, 3),
            "unbatched_p50_ms": round(unbatched.p50_ms, 3),
            "unbatched_p99_ms": round(unbatched.p99_ms, 3),
            "mean_batch": round(batched.mean_batch, 1),
            "batch_size_counts": batched.batch_size_counts,
            "speedup": round(speedup, 1),
        }
    )
    print(
        f"\nbatched   : {batched.throughput:,.0f} req/s "
        f"(p50 {batched.p50_ms:.3f} ms, p99 {batched.p99_ms:.3f} ms, "
        f"mean batch {batched.mean_batch:.1f})"
    )
    print(f"batch sizes: {batched.batch_size_counts}")
    print(
        f"unbatched : {unbatched.throughput:,.0f} req/s "
        f"(p50 {unbatched.p50_ms:.3f} ms, p99 {unbatched.p99_ms:.3f} ms)"
    )
    print(f"micro-batching speedup: {speedup:.1f}x")
    assert speedup >= MIN_MICROBATCH_SPEEDUP


@pytest.mark.skipif(
    USABLE_CORES < 4,
    reason=f"worker-pool speedup needs >= 4 usable cores, "
    f"have {USABLE_CORES}",
)
def test_worker_pool_is_2x_faster_on_heavy_workload(benchmark, methodology):
    values = measure_worker_pool(
        requests=WORKER_REQUESTS, repeats=methodology.reps
    )
    pooled, inloop = values["pooled"], values["inloop"]
    benchmark.pedantic(
        lambda: measure_serving(
            requests=WORKER_REQUESTS, workers=4, workload="heavy"
        ),
        rounds=1, iterations=1, warmup_rounds=0,
    )

    speedup = values["speedup"]
    benchmark.extra_info.update(
        {
            "workload": "heavy",
            "requests": WORKER_REQUESTS,
            "pooled_rps": round(pooled.throughput),
            "inloop_rps": round(inloop.throughput),
            "pooled_p50_ms": round(pooled.p50_ms, 3),
            "pooled_p99_ms": round(pooled.p99_ms, 3),
            "inloop_p50_ms": round(inloop.p50_ms, 3),
            "inloop_p99_ms": round(inloop.p99_ms, 3),
            "usable_cores": USABLE_CORES,
            "speedup": round(speedup, 1),
        }
    )
    print(
        f"\nworkers=4 : {pooled.throughput:,.0f} req/s "
        f"(p50 {pooled.p50_ms:.3f} ms, p99 {pooled.p99_ms:.3f} ms)"
    )
    print(
        f"workers=0 : {inloop.throughput:,.0f} req/s "
        f"(p50 {inloop.p50_ms:.3f} ms, p99 {inloop.p99_ms:.3f} ms)"
    )
    print(f"worker-pool speedup: {speedup:.1f}x ({USABLE_CORES} cores)")
    assert speedup >= MIN_WORKER_SPEEDUP


@pytest.mark.skipif(
    USABLE_CORES < 2,
    reason=f"wire-path comparison runs two workers; needs >= 2 usable "
    f"cores, have {USABLE_CORES}",
)
def test_binary_wire_hot_path_cuts_p99_5x(benchmark, methodology):
    values = measure_wire_path(
        requests=WIRE_REQUESTS, repeats=methodology.reps
    )
    fast, slow = values["binary"], values["ndjson"]
    benchmark.pedantic(
        lambda: measure_wire_path(requests=WIRE_REQUESTS),
        rounds=1, iterations=1, warmup_rounds=0,
    )

    speedup = values["p99_speedup"]
    benchmark.extra_info.update(
        {
            "workload": "mixed",
            "requests": WIRE_REQUESTS,
            "binary_p50_ms": round(fast.p50_ms, 3),
            "binary_p99_ms": round(fast.p99_ms, 3),
            "ndjson_p50_ms": round(slow.p50_ms, 3),
            "ndjson_p99_ms": round(slow.p99_ms, 3),
            "binary_rps": round(fast.throughput),
            "ndjson_rps": round(slow.throughput),
            "binary_bytes": fast.bytes_sent + fast.bytes_received,
            "ndjson_bytes": slow.bytes_sent + slow.bytes_received,
            "bytes_ratio": round(values["bytes_ratio"], 2),
            "usable_cores": USABLE_CORES,
            "p99_speedup": round(speedup, 1),
        }
    )
    print(
        f"\nbinary+ring+plan : {fast.throughput:,.0f} req/s "
        f"(p50 {fast.p50_ms:.3f} ms, p99 {fast.p99_ms:.3f} ms, "
        f"{fast.bytes_sent + fast.bytes_received:,} B on wire)"
    )
    print(
        f"ndjson+pickle    : {slow.throughput:,.0f} req/s "
        f"(p50 {slow.p50_ms:.3f} ms, p99 {slow.p99_ms:.3f} ms, "
        f"{slow.bytes_sent + slow.bytes_received:,} B on wire)"
    )
    print(
        f"zero-copy hot path: p99 {speedup:.1f}x lower, "
        f"{values['bytes_ratio']:.1f}x fewer bytes"
    )
    assert speedup >= MIN_WIRE_P99_SPEEDUP


def test_router_hop_tax_is_bounded(benchmark, methodology):
    values = measure_router_path(
        requests=ROUTER_REQUESTS, repeats=methodology.reps
    )
    routed, direct = values["routed"], values["direct"]
    benchmark.pedantic(
        lambda: measure_router_path(requests=ROUTER_REQUESTS),
        rounds=1, iterations=1, warmup_rounds=0,
    )

    overhead = values["p50_overhead"]
    benchmark.extra_info.update(
        {
            "requests": ROUTER_REQUESTS,
            "backends": routed.router_backends,
            "replication": routed.replication,
            "routed_rps": round(routed.throughput),
            "direct_rps": round(direct.throughput),
            "routed_p50_ms": round(routed.p50_ms, 3),
            "routed_p99_ms": round(routed.p99_ms, 3),
            "direct_p50_ms": round(direct.p50_ms, 3),
            "direct_p99_ms": round(direct.p99_ms, 3),
            "p50_overhead": round(overhead, 2),
            "p99_overhead": round(values["p99_overhead"], 2),
        }
    )
    print(
        f"\nrouted : {routed.throughput:,.0f} req/s "
        f"(p50 {routed.p50_ms:.3f} ms, p99 {routed.p99_ms:.3f} ms, "
        f"{routed.router_backends} backends, "
        f"replication {routed.replication})"
    )
    print(
        f"direct : {direct.throughput:,.0f} req/s "
        f"(p50 {direct.p50_ms:.3f} ms, p99 {direct.p99_ms:.3f} ms)"
    )
    print(
        f"router hop tax: p50 {overhead:.2f}x "
        f"(p99 {values['p99_overhead']:.2f}x, untracked)"
    )
    assert overhead <= MAX_ROUTER_P50_OVERHEAD


def test_cost_admission_cuts_saturated_p99(benchmark, methodology):
    values = measure_cost_admission(
        requests=ADMISSION_REQUESTS, repeats=methodology.reps
    )
    governed, baseline = values["governed"], values["baseline"]
    benchmark.pedantic(
        lambda: measure_cost_admission(requests=ADMISSION_REQUESTS),
        rounds=1, iterations=1, warmup_rounds=0,
    )

    speedup = values["p99_speedup"]
    benchmark.extra_info.update(
        {
            "workload": "heavy",
            "requests": ADMISSION_REQUESTS,
            "governed_p50_ms": round(governed.p50_ms, 3),
            "governed_p99_ms": round(governed.p99_ms, 3),
            "baseline_p50_ms": round(baseline.p50_ms, 3),
            "baseline_p99_ms": round(baseline.p99_ms, 3),
            "refused": values["refused"],
            "p99_speedup": round(speedup, 1),
        }
    )
    print(
        f"\ncost-governed : p50 {governed.p50_ms:.3f} ms, "
        f"p99 {governed.p99_ms:.3f} ms "
        f"({values['refused']} refused fast and retriably)"
    )
    print(
        f"depth baseline: p50 {baseline.p50_ms:.3f} ms, "
        f"p99 {baseline.p99_ms:.3f} ms (tail past the deadline)"
    )
    print(f"cost admission: p99 {speedup:.1f}x lower at equal offered load")
    assert speedup >= MIN_COST_ADMISSION_P99_SPEEDUP

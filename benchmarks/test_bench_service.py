"""Serving benchmarks: micro-batching and the worker-pool tier.

Two acceptance bars for the serving subsystem:

* on a scalar-evaluation workload (the capped model's
  ``energy_per_flop`` — the heaviest analytic path the protocol
  serves), the micro-batched configuration must sustain at least 5×
  the throughput of the same server with batching disabled
  (``max_batch=1``), everything else equal;
* on the CPU-bound ``heavy`` workload (dense curves, large grids),
  four worker processes must sustain at least 2× the throughput of
  in-loop execution (``workers=0``) — this one needs ≥ 4 usable
  cores and skips itself elsewhere, exactly like a GPU test without
  a GPU.

The response cache is off in every run so each measurement isolates
the execution path under test.  Correctness is not at stake here —
bit-identity of batched serving is locked down in
``tests/service/test_server.py``, and of worker-pool serving in
``tests/service/test_workers.py``; this module times the wins and
reports the latency percentiles an operator would tune against.
"""

from __future__ import annotations

import os

import pytest

from repro.service.loadgen import LoadReport, bench_serving

MIN_SPEEDUP = 5.0
REQUESTS = 4000
MODEL, METRIC = "capped", "energy_per_flop"
MACHINES = ("gtx580-double", "i7-950-double")

MIN_WORKER_SPEEDUP = 2.0
WORKER_REQUESTS = 1600
#: Four catalog machines whose crc32 routing keys land on four
#: distinct shards at ``workers=4`` — full pool utilisation.
WORKER_MACHINES = (
    "gtx580-double", "gtx580-single", "i7-950-double", "i7-950-single"
)

USABLE_CORES = len(os.sched_getaffinity(0))


def _best_of(runs: list[LoadReport]) -> LoadReport:
    """The highest-throughput run (min-noise analogue of best-of wall time)."""
    return max(runs, key=lambda report: report.throughput)


def _run(max_batch: int, concurrency: int, repeats: int = 3) -> LoadReport:
    return _best_of([
        bench_serving(
            requests=REQUESTS,
            concurrency=concurrency,
            max_batch=max_batch,
            flush_window=0.002,
            cache_size=0,
            machines=MACHINES,
            model=MODEL,
            metric=METRIC,
        )
        for _ in range(repeats)
    ])


def test_micro_batched_serving_is_5x_faster(benchmark):
    # Batches only fill when concurrency >= max_batch * n_machines, so
    # the batched run offers 128-way concurrency over two machines.
    batched = _run(max_batch=64, concurrency=128)
    unbatched = _run(max_batch=1, concurrency=64)
    benchmark.pedantic(
        lambda: bench_serving(
            requests=REQUESTS, concurrency=128, max_batch=64,
            flush_window=0.002, machines=MACHINES, model=MODEL, metric=METRIC,
        ),
        rounds=1, iterations=1, warmup_rounds=0,
    )

    assert batched.errors == 0 and unbatched.errors == 0
    assert batched.requests == unbatched.requests == REQUESTS
    # Batching genuinely happened in one run and not the other.
    assert batched.mean_batch > 8.0
    assert unbatched.engine_calls == REQUESTS

    speedup = batched.throughput / unbatched.throughput
    benchmark.extra_info.update(
        {
            "workload": f"{MODEL}/{METRIC}",
            "requests": REQUESTS,
            "batched_rps": round(batched.throughput),
            "unbatched_rps": round(unbatched.throughput),
            "batched_p50_ms": round(batched.p50_ms, 3),
            "batched_p99_ms": round(batched.p99_ms, 3),
            "unbatched_p50_ms": round(unbatched.p50_ms, 3),
            "unbatched_p99_ms": round(unbatched.p99_ms, 3),
            "mean_batch": round(batched.mean_batch, 1),
            "batch_size_counts": batched.batch_size_counts,
            "speedup": round(speedup, 1),
        }
    )
    print(
        f"\nbatched   : {batched.throughput:,.0f} req/s "
        f"(p50 {batched.p50_ms:.3f} ms, p99 {batched.p99_ms:.3f} ms, "
        f"mean batch {batched.mean_batch:.1f})"
    )
    print(f"batch sizes: {batched.batch_size_counts}")
    print(
        f"unbatched : {unbatched.throughput:,.0f} req/s "
        f"(p50 {unbatched.p50_ms:.3f} ms, p99 {unbatched.p99_ms:.3f} ms)"
    )
    print(f"micro-batching speedup: {speedup:.1f}x")
    assert speedup >= MIN_SPEEDUP


def _run_workers(workers: int, repeats: int = 3) -> LoadReport:
    return _best_of([
        bench_serving(
            requests=WORKER_REQUESTS,
            concurrency=64,
            max_batch=64,
            flush_window=0.002,
            cache_size=0,
            machines=WORKER_MACHINES,
            model=MODEL,
            metric=METRIC,
            workload="heavy",
            workers=workers,
        )
        for _ in range(repeats)
    ])


@pytest.mark.skipif(
    USABLE_CORES < 4,
    reason=f"worker-pool speedup needs >= 4 usable cores, "
    f"have {USABLE_CORES}",
)
def test_worker_pool_is_2x_faster_on_heavy_workload(benchmark):
    pooled = _run_workers(workers=4)
    inloop = _run_workers(workers=0)
    benchmark.pedantic(
        lambda: bench_serving(
            requests=WORKER_REQUESTS, concurrency=64, max_batch=64,
            flush_window=0.002, machines=WORKER_MACHINES, model=MODEL,
            metric=METRIC, workload="heavy", workers=4,
        ),
        rounds=1, iterations=1, warmup_rounds=0,
    )

    assert pooled.errors == 0 and inloop.errors == 0
    assert pooled.requests == inloop.requests == WORKER_REQUESTS
    assert pooled.workers == 4 and inloop.workers == 0

    speedup = pooled.throughput / inloop.throughput
    benchmark.extra_info.update(
        {
            "workload": "heavy",
            "requests": WORKER_REQUESTS,
            "pooled_rps": round(pooled.throughput),
            "inloop_rps": round(inloop.throughput),
            "pooled_p50_ms": round(pooled.p50_ms, 3),
            "pooled_p99_ms": round(pooled.p99_ms, 3),
            "inloop_p50_ms": round(inloop.p50_ms, 3),
            "inloop_p99_ms": round(inloop.p99_ms, 3),
            "usable_cores": USABLE_CORES,
            "speedup": round(speedup, 1),
        }
    )
    print(
        f"\nworkers=4 : {pooled.throughput:,.0f} req/s "
        f"(p50 {pooled.p50_ms:.3f} ms, p99 {pooled.p99_ms:.3f} ms)"
    )
    print(
        f"workers=0 : {inloop.throughput:,.0f} req/s "
        f"(p50 {inloop.p50_ms:.3f} ms, p99 {inloop.p99_ms:.3f} ms)"
    )
    print(f"worker-pool speedup: {speedup:.1f}x ({USABLE_CORES} cores)")
    assert speedup >= MIN_WORKER_SPEEDUP

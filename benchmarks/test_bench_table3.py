"""Table III benchmark: the platform spec sheet and derived balances."""

from __future__ import annotations

from repro.experiments import run_experiment


def test_table3_reproduction(benchmark, run_once, record):
    result = run_once(run_experiment, "table3")
    record(result)
    print()
    print(result.text)
    assert result.value("gpu_peak_sp_gflops") == 1581.06
    assert result.value("cpu_bandwidth_gbytes") == 25.6

"""Benchmarks for the extension layers (beyond the paper's evaluation).

These time the machinery the library adds on top of the reproduction —
DVFS optimisation, heterogeneous partitioning, bootstrap fitting — and
record their headline analytic results as ``extra_info``.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.bootstrap import bootstrap_fit
from repro.core.algorithm import AlgorithmProfile
from repro.core.dvfs import DvfsMachine, DvfsPolicy
from repro.core.fitting import EnergySample
from repro.machines.catalog import gtx580_single, i7_950_double, i7_950_single
from repro.scheduler import Device, HeterogeneousScheduler
from repro.workloads import fmm_pipeline


def test_dvfs_optimal_setting_search(benchmark):
    """Golden-section energy optimisation across a frequency range."""
    dvfs = DvfsMachine(i7_950_double(), DvfsPolicy(static_fraction=0.1))
    profile = AlgorithmProfile.from_intensity(0.3, work=1e11)

    best = benchmark(dvfs.energy_optimal_setting, profile)
    full = dvfs.evaluate(profile, 1.0)
    benchmark.extra_info.update(
        {
            "optimal_s": round(best.s, 4),
            "energy_saving_vs_full": round(1 - best.energy / full.energy, 4),
        }
    )
    assert best.s < 1.0  # crawling wins for this gated, memory-bound case


def test_scheduler_pareto_frontier(benchmark):
    """Dense Pareto sweep of a two-device partition."""
    scheduler = HeterogeneousScheduler(
        Device("gpu", gtx580_single().with_power_cap(None)),
        Device("cpu", i7_950_single()),
    )
    workload = AlgorithmProfile.from_intensity(2.0, work=1e12)

    frontier = benchmark(scheduler.pareto_frontier, workload, grid=401)
    benchmark.extra_info.update(
        {
            "frontier_points": len(frontier),
            "fastest_alpha": round(frontier[0].alpha, 3),
            "greenest_alpha": round(frontier[-1].alpha, 3),
        }
    )
    assert len(frontier) >= 2


def test_bootstrap_fit_throughput(benchmark):
    """200-replicate bootstrap of the eq. (9) regression."""
    rng = np.random.default_rng(3)
    samples = []
    for double in (False, True):
        for k in range(10):
            intensity = 2.0 ** (-2 + 0.8 * k)
            work = 1e10
            traffic = work / intensity
            time = max(work / 1.4e12, traffic / 1.7e11)
            energy = (
                work * (99.7e-12 + (112.3e-12 if double else 0.0))
                + traffic * 513e-12
                + 122.0 * time
            ) * (1 + rng.normal(0, 0.01))
            samples.append(
                EnergySample(work=work, traffic=traffic, time=time,
                             energy=energy, double_precision=double)
            )

    result = benchmark.pedantic(
        bootstrap_fit, args=(samples,), kwargs={"replicates": 200},
        rounds=1, iterations=1, warmup_rounds=0,
    )
    benchmark.extra_info.update(
        {
            "eps_mem_rel_ci_width": round(result.eps_mem.relative_width, 4),
            "pi0_rel_ci_width": round(result.pi0.relative_width, 4),
        }
    )
    assert result.eps_mem.contains(513e-12)


def test_application_phase_analysis(benchmark):
    """Whole-application cost breakdown (FMM pipeline, 1M points)."""
    gpu = gtx580_single().with_power_cap(None)
    app = fmm_pipeline(1_000_000, leaf_size=128)

    report = benchmark(app.report, gpu)
    benchmark.extra_info.update(
        {
            "phases": len(report),
            "time_bottleneck": app.time_bottleneck(gpu).name,
            "energy_bottleneck": app.energy_bottleneck(gpu).name,
        }
    )
    assert abs(sum(r.time_fraction for r in report) - 1.0) < 1e-9

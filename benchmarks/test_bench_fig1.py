"""Fig. 1 benchmark: the two-level model's scope claims."""

from __future__ import annotations

import math

from repro.experiments import run_experiment


def test_fig1_reproduction(benchmark, run_once, record):
    result = run_once(run_experiment, "fig1")
    record(result)
    print()
    print(result.text)
    assert result.value("matmul_sqrt2_deviation") < 1e-9
    assert result.value("matmul_profile_ratio") <= math.sqrt(2.0) + 1e-9

"""Shared fixtures for the benchmark harness.

Every paper artefact (table or figure) has one benchmark module.  Each
benchmark regenerates the artefact through the experiment registry,
attaches the headline paper-vs-measured numbers to the benchmark record
(``extra_info``, visible in ``--benchmark-json`` output and the saved
storage), and prints the rendered report so a benchmark run doubles as a
reproduction run (use ``-s`` to see the reports inline).
"""

from __future__ import annotations

import pytest

from repro.perfreg.methodology import GATE_METHODOLOGY, Methodology


@pytest.fixture
def methodology() -> Methodology:
    """The one warmup/repeat policy every speedup gate measures with.

    This is the same :class:`~repro.perfreg.methodology.Methodology`
    the perfreg checks consume — the pytest gates and the trajectory
    harness share their measurement discipline by construction, so the
    two paths cannot drift apart on rep counts (the pre-perfreg state:
    ``repeats=3`` in one file, ``ROUNDS = 5`` in another).
    """
    return GATE_METHODOLOGY


@pytest.fixture
def run_once(benchmark):
    """Run a heavyweight experiment exactly once under the benchmark timer.

    The measurement campaigns are deterministic, so statistical rounds add
    nothing; one timed round keeps ``pytest benchmarks/`` quick while still
    recording wall time per artefact.
    """

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
        )

    return _run


@pytest.fixture
def record(benchmark):
    """Attach an experiment's headline values to the benchmark record."""

    def _record(result, keys=None):
        values = result.values if keys is None else {
            k: result.values[k] for k in keys
        }
        benchmark.extra_info.update(
            {k: round(float(v), 6) for k, v in values.items()}
        )

    return _record

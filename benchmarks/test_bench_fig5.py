"""Fig. 5 benchmark: measured powerlines and the §V-B power-cap story.

Headline: the uncapped model demands ~387 W on the GTX 580 in single
precision — far above the card's 244 W rating — and measured power
flattens where the cap bites.
"""

from __future__ import annotations

from repro.experiments import run_experiment


def test_fig5_reproduction(benchmark, run_once, record):
    result = run_once(run_experiment, "fig5")
    record(result)
    print()
    print(result.text)
    # The ~387 W prediction vs the 244 W rating.
    assert abs(result.value("gpu_single_model_peak_watts") - 387.0) < 25.0
    assert result.value("gpu_single_cap_watts") == 244.0
    assert result.value("gpu_single_cap_binds") == 1.0
    # Measured power exceeds the rating (as the paper observes) but never
    # reaches the uncapped model's demand.
    measured = result.value("gpu_single_max_measured_watts")
    assert 244.0 < measured < result.value("gpu_single_model_peak_watts")

"""Batched cache-trace engine benchmark: compiled stream vs scalar replay.

The acceptance bar for the §V-C trace engine: on the fmm experiment's
default geometry (n = 4000 points, leaf capacity 64, seed 3),
``simulate_ulist_traffic`` with the default batch engine must be at
least 10× faster than the scalar per-access replay of the same stream.

The timing loop lives in
:func:`repro.perfreg.checks.measure_cachesim_trace` — shared with the
``cachesim.fmm_batch_lru`` perfreg check — which interleaves rounds
(batch, scalar, batch, scalar, …) and compares best rounds so both
paths see the same machine mood, and asserts counter-for-counter
equivalence on this exact geometry before timing anything.
Equivalence across random geometries is property-tested in
``tests/test_cachesim_batch.py``; this module gates the win.
"""

from __future__ import annotations

from repro.perfreg.checks import (
    MIN_CACHESIM_SPEEDUP,
    measure_cachesim_trace,
)

N_POINTS = 4000


def test_batch_engine_is_10x_faster_than_scalar_replay(benchmark, methodology):
    values = measure_cachesim_trace(
        n_points=N_POINTS,
        repeats=methodology.reps,
        warmup=methodology.warmup,
    )
    benchmark.pedantic(
        lambda: measure_cachesim_trace(n_points=N_POINTS, repeats=1, warmup=0),
        rounds=1, iterations=1, warmup_rounds=0,
    )

    speedup = values["speedup"]
    benchmark.extra_info.update(
        {
            "n_accesses": int(values["accesses"]),
            "batch_ms": round(values["batch_ms"], 3),
            "scalar_ms": round(values["scalar_ms"], 3),
            "speedup": round(speedup, 2),
            "min_speedup": MIN_CACHESIM_SPEEDUP,
        }
    )
    assert speedup >= MIN_CACHESIM_SPEEDUP, (
        f"batch engine only {speedup:.1f}x faster than the scalar replay "
        f"({values['batch_ms']:.2f} ms vs {values['scalar_ms']:.2f} ms); "
        f"need >= {MIN_CACHESIM_SPEEDUP:.0f}x"
    )

"""Batched cache-trace engine benchmark: compiled stream vs scalar replay.

The acceptance bar for the §V-C trace engine: on the fmm experiment's
default geometry (n = 4000 points, leaf capacity 64, seed 3),
``simulate_ulist_traffic`` with the default batch engine must be at
least 10× faster than the scalar per-access replay of the same stream.
Counter-for-counter equivalence is locked down by the property tests in
``tests/test_cachesim_batch.py``; this module times the win.

Rounds are *interleaved* (batch, scalar, batch, scalar, …) and the best
round of each engine is compared: the two paths then see the same
machine mood, which keeps the ratio stable even when absolute times
wobble under CPU throttling.
"""

from __future__ import annotations

import time

from repro.cachesim import simulate_ulist_traffic
from repro.fmm.points import uniform_cloud
from repro.fmm.tree import Octree
from repro.fmm.ulist import build_ulist
from repro.fmm.variants import reference_variant

MIN_SPEEDUP = 10.0
ROUNDS = 5


def _build_geometry():
    positions, densities = uniform_cloud(4000, seed=3)
    tree = Octree.build(positions, densities, leaf_capacity=64)
    return tree, build_ulist(tree)


def _timed(func) -> float:
    start = time.perf_counter()
    func()
    return time.perf_counter() - start


def test_batch_engine_is_10x_faster_than_scalar_replay(benchmark):
    tree, ulist = _build_geometry()
    variant = reference_variant()

    def run_batch():
        return simulate_ulist_traffic(tree, ulist, variant, engine="batch")

    def run_scalar():
        return simulate_ulist_traffic(tree, ulist, variant, engine="scalar")

    # Warm both paths (first batch round also compiles and memoises the
    # trace) and pin down equivalence on this exact geometry.
    batch_result = run_batch()
    scalar_result = run_scalar()
    assert batch_result.measured == scalar_result.measured
    assert batch_result.pairs == scalar_result.pairs

    batch_best = float("inf")
    scalar_best = float("inf")
    for _ in range(ROUNDS):
        batch_best = min(batch_best, _timed(run_batch))
        scalar_best = min(scalar_best, _timed(run_scalar))

    benchmark.pedantic(run_batch, rounds=3, iterations=1, warmup_rounds=0)

    speedup = scalar_best / batch_best
    benchmark.extra_info.update(
        {
            "n_accesses": batch_result.measured.accesses,
            "batch_ms": round(batch_best * 1e3, 3),
            "scalar_ms": round(scalar_best * 1e3, 3),
            "speedup": round(speedup, 2),
            "min_speedup": MIN_SPEEDUP,
        }
    )
    assert speedup >= MIN_SPEEDUP, (
        f"batch engine only {speedup:.1f}x faster than the scalar replay "
        f"({batch_best * 1e3:.2f} ms vs {scalar_best * 1e3:.2f} ms); "
        f"need >= {MIN_SPEEDUP:.0f}x"
    )

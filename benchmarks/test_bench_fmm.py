"""§V-C benchmark: the full FMM U-list cache-energy study.

Paper headlines reproduced over the full 390-variant space:

* naive eq. (2) estimates low by ~33% on average;
* fitted cache-access energy ~187 pJ/B;
* corrected estimates with ~4.1% median error on the 160 L1/L2-only
  variants.

Component benchmarks time the real substrate pieces: octree build,
U-list construction, and the vectorised Algorithm 1 evaluation.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment
from repro.fmm.kernel import evaluate_ulist
from repro.fmm.points import uniform_cloud
from repro.fmm.tree import Octree
from repro.fmm.ulist import build_ulist


def test_fmm_study_reproduction(benchmark, run_once, record):
    result = run_once(run_experiment, "fmm")
    record(result)
    print()
    print(result.text)
    assert result.value("n_variants") == 390
    assert result.value("n_l1l2_variants") == 160
    assert abs(result.value("naive_mean_signed_error") + 0.33) < 0.06
    assert abs(result.value("eps_cache_fit_pj") - 187.0) < 15.0
    assert abs(result.value("corrected_median_error") - 0.041) < 0.03


@pytest.fixture(scope="module")
def geometry():
    positions, densities = uniform_cloud(4000, seed=3)
    tree = Octree.build(positions, densities, leaf_capacity=64)
    return tree, build_ulist(tree)


def test_fmm_tree_build(benchmark):
    positions, densities = uniform_cloud(4000, seed=3)
    tree = benchmark(Octree.build, positions, densities, leaf_capacity=64)
    assert tree.n_points == 4000


def test_fmm_ulist_build(benchmark, geometry):
    tree, _ = geometry
    ulist = benchmark(build_ulist, tree)
    assert len(ulist) == tree.n_leaves


def test_fmm_ulist_evaluation(benchmark, geometry):
    """The actual Algorithm 1 math over the whole tree (numpy-tiled)."""
    tree, ulist = geometry
    phi, pairs = benchmark(evaluate_ulist, tree, ulist)
    assert pairs > 0
    assert phi.shape == (tree.n_points,)


def test_fmm_farfield_evaluation(benchmark, geometry):
    """The multipole far field over the whole tree."""
    from repro.fmm.farfield import compute_moments, evaluate_far_field

    tree, ulist = geometry
    moments = compute_moments(tree)
    far = benchmark(evaluate_far_field, tree, ulist, moments=moments)
    assert far.shape == (tree.n_points,)


def test_fmm_full_vs_direct_accuracy(benchmark):
    """Full treecode vs the O(n^2) oracle: accuracy and pair savings."""
    import numpy as np

    from repro.fmm.farfield import direct_reference, evaluate_full

    positions, densities = uniform_cloud(1200, seed=5)
    tree = Octree.build(positions, densities, leaf_capacity=48)
    ulist = build_ulist(tree)

    def run():
        return evaluate_full(tree, ulist)

    phi, stats = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    exact = direct_reference(tree)
    median_err = float(np.median(np.abs(phi - exact) / np.abs(exact)))
    benchmark.extra_info.update(
        {
            "median_rel_error": round(median_err, 6),
            "pair_saving": round(stats["speedup_proxy"], 2),
        }
    )
    assert median_err < 1e-3


def test_fmm_barnes_hut_evaluation(benchmark):
    """Hierarchical evaluation with the default MAC, accuracy recorded."""
    import numpy as np

    from repro.fmm.farfield import barnes_hut_evaluate, direct_reference

    positions, densities = uniform_cloud(1000, seed=4)
    tree = Octree.build(positions, densities, leaf_capacity=48)

    phi, stats = benchmark.pedantic(
        barnes_hut_evaluate, args=(tree,), kwargs={"theta": 0.4},
        rounds=1, iterations=1, warmup_rounds=0,
    )
    exact = direct_reference(tree)
    median_err = float(np.median(np.abs(phi - exact) / np.abs(exact)))
    benchmark.extra_info.update(
        {
            "median_rel_error": round(median_err, 8),
            "direct_fraction": round(stats["direct_fraction"], 3),
        }
    )
    assert median_err < 1e-4


def test_fmm_cachesim_trace(benchmark, geometry):
    """The LRU-cache validation of the traffic-counter model."""
    from repro.cachesim import simulate_ulist_traffic
    from repro.fmm.variants import reference_variant

    positions, densities = uniform_cloud(1500, seed=7)
    tree = Octree.build(positions, densities, leaf_capacity=48)
    ulist = build_ulist(tree)

    result = benchmark.pedantic(
        simulate_ulist_traffic, args=(tree, ulist, reference_variant()),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    benchmark.extra_info.update(
        {
            "l1_bytes_per_pair_measured": round(result.measured_l1_bytes_per_pair, 2),
            "l1_bytes_per_pair_modelled": round(result.modelled_l1_bytes_per_pair, 2),
            "l1_hit_rate": round(result.measured.l1_hit_rate, 3),
        }
    )
    assert result.measured.l1_bytes > result.measured.dram_bytes

#!/usr/bin/env python
"""Quickstart: the energy roofline model in five minutes.

Walks through the library's core workflow:

1. describe a machine (time + energy cost coefficients);
2. characterise algorithms as (work, traffic) pairs;
3. ask the three models — time, energy, power — what they cost;
4. read the balance analysis: is race-to-halt sound here?
5. draw the roofline and arch line.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AlgorithmProfile,
    EnergyModel,
    MachineModel,
    PowerModel,
    TimeModel,
    analyze,
    machines,
    roofline_vs_archline,
)
from repro.core.algorithm import matmul_profile, reduction_profile, stencil_profile
from repro.core.rooflines import vertical_markers
from repro.viz.ascii_chart import render_chart


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A machine is five numbers.  Use a catalog entry (the paper's
    #    GTX 580 at double precision), or build your own from peaks.
    # ------------------------------------------------------------------
    gpu = machines.gtx580_double()
    print(gpu.describe())
    print()

    custom = MachineModel.from_peaks(
        "my-accelerator",
        gflops=500.0,          # peak arithmetic throughput
        gbytes_per_s=200.0,    # peak memory bandwidth
        eps_flop=80e-12,       # 80 pJ per flop
        eps_mem=400e-12,       # 400 pJ per byte
        pi0=60.0,              # 60 W constant power
    )
    print(custom.describe())
    print()

    # ------------------------------------------------------------------
    # 2. An algorithm is (W, Q).  Use the canonical profiles or raw numbers.
    # ------------------------------------------------------------------
    workloads = [
        reduction_profile(100_000_000),                # I = O(1): bandwidth-bound
        stencil_profile(256, points=7, sweeps=10),     # moderate intensity
        matmul_profile(2048, fast_bytes=2 * 1024**2),  # I = O(sqrt(Z)): compute-bound
        AlgorithmProfile(work=1e12, traffic=5e10, name="custom kernel"),
    ]

    # ------------------------------------------------------------------
    # 3. Ask the models.
    # ------------------------------------------------------------------
    time_model, energy_model, power_model = (
        TimeModel(gpu), EnergyModel(gpu), PowerModel(gpu),
    )
    print(f"workload costs on {gpu.name}:")
    header = f"{'workload':<28}{'I (F/B)':>9}{'time':>12}{'energy':>12}{'power':>9}"
    print(header)
    print("-" * len(header))
    for profile in workloads:
        t = time_model.time(profile)
        e = energy_model.energy(profile)
        p = power_model.average_power(profile)
        print(
            f"{profile.name[:27]:<28}{profile.intensity:>9.2f}"
            f"{t * 1e3:>10.2f}ms{e:>11.2f}J{p:>8.1f}W"
        )
    print()

    # Energy breakdown for the reduction: where do the joules go?
    breakdown = energy_model.breakdown(workloads[0])
    print(
        f"reduction energy split: flops {breakdown.fraction('flops'):.0%}, "
        f"memory {breakdown.fraction('mem'):.0%}, "
        f"constant {breakdown.fraction('constant'):.0%}"
    )
    print()

    # ------------------------------------------------------------------
    # 4. Balance analysis: compare time- and energy-balance points.
    # ------------------------------------------------------------------
    print(analyze(gpu).describe())
    print()

    # ------------------------------------------------------------------
    # 5. Draw the curves (Fig. 2a style).
    # ------------------------------------------------------------------
    roof, arch = roofline_vs_archline(gpu, lo=0.25, hi=64.0)
    print(
        render_chart(
            [roof, arch],
            markers=vertical_markers(gpu),
            title=f"{gpu.name}: roofline (time) vs arch line (energy)",
        )
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Estimate the energy of a real algorithm: the FMM U-list phase (§V-C).

Where the microbenchmarks validate the model on synthetic kernels, this
example applies it to a genuine computation — the dominant phase of the
fast multipole method — and reproduces the paper's refinement loop:

1. build an octree over a particle cloud and evaluate Algorithm 1 for
   real (the potentials are actually computed and spot-checked);
2. naively estimate each implementation variant's energy with the
   two-level model, eq. (2) — and find the estimates ~33% low;
3. fit a per-byte cache-energy cost on the reference implementation
   (~187 pJ/B);
4. re-estimate the L1/L2-only variants — median error drops to ~4%.

Run:  python examples/fmm_energy_study.py
"""

from __future__ import annotations

import numpy as np

from repro.fmm.estimator import FmmEnergyStudy
from repro.fmm.kernel import FLOPS_PER_PAIR, evaluate_ulist, interact_reference
from repro.fmm.points import plummer_cloud
from repro.fmm.tree import Octree
from repro.fmm.ulist import build_ulist
from repro.fmm.variants import generate_variants, reference_variant


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The actual computation: tree, U-lists, potentials.
    # ------------------------------------------------------------------
    positions, densities = plummer_cloud(3000, seed=42)
    tree = Octree.build(positions, densities, leaf_capacity=64)
    tree.validate()
    ulist = build_ulist(tree)
    phi, pairs = evaluate_ulist(tree, ulist)

    print(
        f"geometry: {tree.n_points} points (Plummer), {tree.n_leaves} leaves, "
        f"mean |U(B)| = {np.mean([len(u) for u in ulist]):.1f}"
    )
    print(
        f"U-list phase: {pairs:,} point pairs, "
        f"{FLOPS_PER_PAIR * pairs / 1e9:.2f} GFLOP"
    )

    # Spot-check correctness against the scalar reference on one leaf.
    leaf = tree.leaves[0]
    source_idx = np.concatenate([tree.leaves[s].points for s in ulist[leaf.index]])
    expected = interact_reference(
        tree.positions[leaf.points],
        tree.positions[source_idx],
        tree.densities[source_idx],
    )
    assert np.allclose(phi[leaf.points], expected)
    print("correctness: tiled evaluation matches the scalar reference")

    # The full method (near direct + far multipole) against the O(n^2) sum.
    from repro.fmm import direct_reference, evaluate_full

    full_phi, stats = evaluate_full(tree, ulist)
    exact = direct_reference(tree)
    rel = np.median(np.abs(full_phi - exact) / np.abs(exact))
    print(
        f"full evaluation (near + multipole far field): median error "
        f"{rel:.2e} vs direct sum; pair-count saving "
        f"{stats['speedup_proxy']:.1f}x\n"
    )

    # ------------------------------------------------------------------
    # 2-4. The estimation study over the 390-variant space.
    # ------------------------------------------------------------------
    study = FmmEnergyStudy(tree, ulist)
    result = study.run(generate_variants())
    print(result.describe())
    print()

    # Drill in: the reference implementation's numbers.
    ref = next(
        o for o in result.observations if o.variant == reference_variant()
    )
    print(f"reference variant ({ref.variant.vid}):")
    print(f"  measured energy       {ref.measured_energy * 1e3:8.3f} mJ/phase")
    print(f"  naive eq.(2) estimate {ref.naive_estimate * 1e3:8.3f} mJ "
          f"({ref.naive_error:+.1%})")
    assert ref.corrected_estimate is not None
    print(f"  cache-corrected       {ref.corrected_estimate * 1e3:8.3f} mJ "
          f"({ref.corrected_error:+.2%})")
    print()

    # Which variants are fastest vs greenest?  On race-to-halt hardware
    # they are the same — demonstrate it.
    l1l2 = result.l1l2_observations
    fastest = min(l1l2, key=lambda o: o.time)
    greenest = min(l1l2, key=lambda o: o.measured_energy)
    print(f"fastest L1/L2-only variant:  {fastest.variant.vid} "
          f"({fastest.time * 1e3:.2f} ms/phase)")
    print(f"greenest L1/L2-only variant: {greenest.variant.vid} "
          f"({greenest.measured_energy * 1e3:.2f} mJ/phase)")
    if fastest.variant == greenest.variant:
        print("-> identical, as race-to-halt predicts on this hardware")


if __name__ == "__main__":
    main()

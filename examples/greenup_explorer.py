#!/usr/bin/env python
"""Explore work-communication trade-offs: when is extra work green? (§VII)

A transformed algorithm (f·W, Q/m) does f times the work to cut
communication by m.  Eq. (10) bounds the work inflation that still saves
energy.  This example maps that frontier for a memory-bound kernel on:

* today's GTX 580 (constant power included);
* the same silicon with pi0 -> 0 (the paper's "what if architects drive
  constant power to zero" thought experiment) — where the balance gap
  reopens and energy-driven algorithm design diverges from time-driven.

Run:  python examples/greenup_explorer.py
"""

from __future__ import annotations

from repro.core.algorithm import AlgorithmProfile
from repro.core.balance import analyze
from repro.core.tradeoff import TradeoffAnalyzer, greenup_work_ceiling
from repro.machines.catalog import gtx580_double


def frontier_table(machine, baseline) -> None:
    analyzer = TradeoffAnalyzer(machine, baseline)
    ceiling = greenup_work_ceiling(
        b_eps=machine.b_eps, intensity=baseline.intensity
    )
    print(f"--- {machine.name} ---")
    print(analyze(machine).describe())
    print()
    print(f"baseline: I = {baseline.intensity:g} flop/B")
    print(f"{'m':>8}{'eq.(10) f*':>14}{'exact f*':>12}{'speedup@f*':>13}")
    for m in (1.5, 2.0, 4.0, 8.0, 32.0):
        closed = analyzer.greenup_threshold(m)
        exact = analyzer.exact_greenup_threshold(m)
        at_threshold = analyzer.evaluate(exact, m)
        print(f"{m:>8.1f}{closed:>14.3f}{exact:>12.3f}{at_threshold.speedup:>13.3f}")
    print(f"hard ceiling (m -> inf, pi0=0): f < {ceiling:.3f}")
    print()


def main() -> None:
    baseline = AlgorithmProfile.from_intensity(0.5, work=1e12, name="baseline")

    today = gtx580_double().with_power_cap(None)
    frontier_table(today, baseline)

    future = today.with_constant_power(0.0)
    frontier_table(future, baseline)

    # The punchline: a concrete trade that pays off differently.
    f, m = 1.8, 4.0
    for machine in (today, future):
        point = TradeoffAnalyzer(machine, baseline).evaluate(f, m)
        print(
            f"trade (f={f}, m={m}) on {machine.name}: "
            f"speedup {point.speedup:.2f}x, greenup {point.greenup:.2f}x "
            f"-> {point.outcome}"
        )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Characterise an unknown machine's energy costs from measurements.

No vendor publishes joules-per-flop.  The paper's answer (§IV-B) is to
*measure* them: run intensity-controlled microbenchmarks, record
(W, Q, T, E) per run, and fit eq. (9) by linear regression.

This example runs that full campaign against the simulated Intel i7-950
rig — microbenchmark generation, auto-tuning, PowerMon sampling across
the ATX rails, regression — and then uses the fitted coefficients to
instantiate the energy model and predict the cost of a *new* workload it
never measured.

Run:  python examples/characterize_machine.py
"""

from __future__ import annotations

from repro.core.algorithm import spmv_profile
from repro.core.energy_model import EnergyModel
from repro.core.fitting import fit_energy_coefficients
from repro.machines.specs import I7_950_SPEC
from repro.microbench.sweep import IntensitySweep
from repro.simulator.device import SimulatedDevice, i7_950_truth
from repro.simulator.kernel import Precision


def main() -> None:
    truth = i7_950_truth()  # the "hardware" — its energy costs are hidden

    # ------------------------------------------------------------------
    # 1. Measurement campaign: intensity sweeps at both precisions.
    #    Each sweep auto-tunes the kernel launch, then measures every
    #    intensity with the PowerMon protocol (100 reps, 128 Hz).
    # ------------------------------------------------------------------
    intensities = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0]
    samples = []
    for precision in (Precision.SINGLE, Precision.DOUBLE):
        sweep = IntensitySweep(truth, precision=precision)
        result = sweep.run(intensities)
        print(
            f"{precision.value:>7}: tuned to {result.tuning.launch} "
            f"in {result.tuning.evaluations} trials; achieved "
            f"{result.max_gflops:.1f} GFLOP/s, "
            f"{result.max_bandwidth_gbytes:.1f} GB/s"
        )
        samples.extend(result.energy_samples())

    # ------------------------------------------------------------------
    # 2. Fit eq. (9):  E/W = eps_s + eps_mem Q/W + pi0 T/W + delta_d R.
    # ------------------------------------------------------------------
    fit = fit_energy_coefficients(samples)
    print()
    print(fit.regression.summary())
    print()
    print(f"{'coefficient':<12}{'fitted':>12}{'hidden truth':>14}")
    rows = [
        ("eps_s", fit.eps_single * 1e12, truth.eps_single * 1e12, "pJ/flop"),
        ("eps_d", fit.eps_double * 1e12, truth.eps_double * 1e12, "pJ/flop"),
        ("eps_mem", fit.eps_mem * 1e12, truth.eps_mem * 1e12, "pJ/B"),
        ("pi0", fit.pi0, truth.pi0, "W"),
    ]
    for name, fitted, actual, unit in rows:
        print(f"{name:<12}{fitted:>10.1f} {unit:<8}{actual:>10.1f} {unit}")
    print()

    # ------------------------------------------------------------------
    # 3. Use the fit: build a machine model and predict a NEW workload.
    # ------------------------------------------------------------------
    machine = fit.to_machine(
        "i7-950 (fitted, double)",
        tau_flop=I7_950_SPEC.tau_flop(double_precision=True),
        tau_mem=I7_950_SPEC.tau_mem,
        double_precision=True,
    )
    workload = spmv_profile(2_000_000, nnz_per_row=27)
    predicted = EnergyModel(machine).energy(workload)

    # Validate against a simulated "measurement" of that workload.
    from repro.powermon.channels import atx_cpu_rails
    from repro.powermon.session import MeasurementSession
    from repro.simulator.kernel import KernelSpec

    device = SimulatedDevice(truth)
    session = MeasurementSession(device, atx_cpu_rails(), seed=11)
    kernel = KernelSpec(
        name=workload.name,
        work=workload.work * 400,  # repeat to satisfy the sampler
        traffic=workload.traffic * 400,
        precision=Precision.DOUBLE,
        launch=truth.tuning.optimal_launch,
    )
    measured = session.measure(kernel).energy / 400

    print(f"new workload: {workload.name} (I = {workload.intensity:.3f} flop/B)")
    print(f"  model prediction: {predicted:.4f} J")
    print(f"  measured:         {measured:.4f} J")
    print(f"  error:            {abs(predicted / measured - 1):.1%}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Serving-stack smoke test: a server, two transports, ~100 requests.

This script is the CI gate for the model-serving subsystem
(:mod:`repro.service`).  It starts a real TCP server, drives a mixed
workload against two catalog machines through both the in-process and
the multiplexing TCP client, and asserts the properties the subsystem
exists to provide:

* every request succeeds (and scalar answers are **bit-identical** to
  direct model calls — serving never changes a value);
* concurrent scalar requests actually micro-batch (fewer engine calls
  than requests);
* the response cache participates (hit ratio > 0 on repeated bodies);
* shutdown drains cleanly.

With ``--workers N`` the same workload and the same assertions run
against the sharded worker-pool execution tier — every value above,
including the micro-batching bound and the cache behavior, must be
indistinguishable from the in-loop path.  With ``--wire binary`` the
TCP client negotiates the binary framing and the same assertions run
over it — bit-identity across framings is the wire-format contract.

With ``--router`` the smoke instead stands up two backend servers and
the consistent-hash router in front of them, then drives one NDJSON
and one binary client through the router *concurrently*: every value
still bit-identical to direct model calls, each machine's requests
pinned to one backend, zero errors, zero failovers, clean drain.

With ``--admission cost`` the server runs the roofline cost model in
the request path — predicted-work admission (a generous budget, so
nothing is refused) plus deadline-aware batch sizing — and every
assertion above must still hold bit-for-bit: the cost loop may move
batch boundaries, never values.

With ``--autoscale`` the smoke instead drives a ramping open-loop
arrival schedule at a one-worker server bounded at two workers: the
autoscaler must grow the pool under the ramp, lose zero replies, and
shrink back to one worker once the load stops.

Run:  python examples/service_smoke.py [--workers N]
          [--wire ndjson|binary] [--router] [--admission depth|cost]
          [--autoscale]
"""

from __future__ import annotations

import argparse
import asyncio
import math

from repro.core.energy_model import EnergyModel
from repro.core.powercap import CappedModel
from repro.machines.catalog import get_machine
from repro.service import (
    AsyncServiceClient,
    InProcessClient,
    ModelServer,
    RouterConfig,
    RouterServer,
    ServerConfig,
)

MACHINES = ("gtx580-double", "i7-950-double")
GRID = [2.0 ** (0.25 * k - 3.0) for k in range(32)]  # 1/8 .. ~32 flop/B


async def drive(server: ModelServer, wire: str) -> None:
    host, port = await server.start()
    print(f"server up on {host}:{port}")

    # --- scalar evals over TCP: concurrent, micro-batched, bit-exact ---
    async with await AsyncServiceClient.connect(host, port, wire=wire) as tcp:
        assert tcp.wire == wire, f"negotiated {tcp.wire!r}, wanted {wire!r}"
        print(f"TCP client negotiated {tcp.wire} framing")
        values = await asyncio.gather(*(
            tcp.eval(machine, "energy_per_flop", model="energy", intensity=x)
            for machine in MACHINES for x in GRID
        ))
        n_scalar = len(MACHINES) * len(GRID)
        reference = [
            EnergyModel(get_machine(machine)).energy_per_flop(x)
            for machine in MACHINES for x in GRID
        ]
        assert values == reference, "served values drifted from the models"
        print(f"{n_scalar} scalar evals over TCP: bit-identical to EnergyModel")

        calls = server.engine.batch_calls
        bound = len(MACHINES) * math.ceil(
            len(GRID) / server.config.max_batch
        )
        assert calls <= bound, f"{calls} engine calls > bound {bound}"
        print(f"micro-batching: {n_scalar} requests -> {calls} engine calls")

        # --- structured ops + repeated bodies to exercise the cache ---
        for machine in MACHINES:
            balance = await tcp.balance(machine)
            again = await tcp.balance(machine)  # same body: cache hit
            assert balance == again
            curve = await tcp.curve(machine, "roofline", lo=0.5, hi=64.0)
            assert len(curve["values"]) == len(curve["intensities"])
            described = await tcp.describe(machine)
            assert described["b_eps"] > 0
        greenup = await tcp.greenup(MACHINES[0], intensity=0.5, m=4.0)
        assert greenup["threshold_closed"] > 1.0
        for m in (2.0, 4.0, 8.0):
            tradeoff = await tcp.tradeoff(
                MACHINES[1], intensity=0.5, f=1.2, m=m
            )
            assert tradeoff["greenup"] > 0
        catalog = await tcp.machines()
        assert {entry["key"] for entry in catalog} >= set(MACHINES)

        # A second pass over the same scalar bodies: pure cache traffic.
        repeat = await asyncio.gather(*(
            tcp.eval(machine, "energy_per_flop", model="energy", intensity=x)
            for machine in MACHINES for x in GRID[:12]
        ))
        assert repeat == [
            reference[i * len(GRID) + j]
            for i in range(len(MACHINES)) for j in range(12)
        ]
        print("repeat pass served from the response cache")

    # --- the in-process transport shares the same pipeline ---
    local = InProcessClient(server)
    capped = await local.eval(
        MACHINES[0], "energy_per_flop", model="capped", intensity=2.0
    )
    direct = CappedModel(get_machine(MACHINES[0])).energy_per_flop(2.0)
    assert capped == direct
    grid_values = await local.eval(
        MACHINES[1], "energy_per_flop", model="energy", intensities=GRID[:8]
    )
    assert grid_values == reference[len(GRID):len(GRID) + 8]
    print("in-process client: capped + grid evals bit-identical")

    # --- the numbers the operator would look at ---
    stats = await local.stats()
    requests_total = stats["counters"]["requests_total"]
    hit_ratio = stats["cache"]["hit_ratio"]
    errors = stats["counters"].get("errors_total", 0)
    batch_hist = stats["histograms"]["batch_size"]
    print(
        f"served {requests_total} requests, {errors} errors, "
        f"cache hit ratio {hit_ratio:.1%}"
    )
    print(
        f"batch sizes: mean {batch_hist['mean']:.1f}, "
        f"max {batch_hist['max']:.0f}, distribution {batch_hist['values']}"
    )
    print(
        f"latency: p50 {stats['histograms']['request_latency_ms']['p50']:.3f} ms, "
        f"p99 {stats['histograms']['request_latency_ms']['p99']:.3f} ms"
    )
    assert requests_total >= 100, "smoke must drive a real workload"
    assert errors == 0, "every request must succeed"
    assert hit_ratio > 0, "repeated bodies must hit the response cache"
    wire_counter = f"wire_{wire}_connections_total"
    assert stats["counters"][wire_counter] >= 1, (
        f"{wire_counter} must count the smoke's TCP connection"
    )


async def drive_router() -> None:
    """Two backends, the router in front, mixed-framing clients."""
    backends, addresses = [], []
    for _ in range(2):
        backend = ModelServer(ServerConfig(port=0, max_batch=16))
        host, port = await backend.start()
        backends.append(backend)
        addresses.append(f"{host}:{port}")
    router = RouterServer(addresses, RouterConfig(replication=2))
    rhost, rport = await router.start()
    print(f"router up on {rhost}:{rport} over {', '.join(addresses)}")

    reference = {
        machine: [
            EnergyModel(get_machine(machine)).energy_per_flop(x)
            for x in GRID
        ]
        for machine in MACHINES
    }

    async def one_client(wire: str, machine: str) -> None:
        async with await AsyncServiceClient.connect(
            rhost, rport, wire=wire
        ) as client:
            assert client.wire == wire, (
                f"negotiated {client.wire!r}, wanted {wire!r}"
            )
            values = await asyncio.gather(*(
                client.eval(
                    machine, "energy_per_flop", model="energy", intensity=x
                )
                for x in GRID
            ))
            assert values == reference[machine], (
                f"routed values drifted from the models ({wire})"
            )
            balance = await client.balance(machine)
            assert balance == await client.balance(machine)
            curve = await client.curve(machine, "roofline", lo=0.5, hi=64.0)
            assert len(curve["values"]) == len(curve["intensities"])

    # One NDJSON and one binary client, concurrently, per machine —
    # framing and topology must both be invisible in the values.
    await asyncio.gather(*(
        one_client(wire, machine)
        for machine, wire in zip(MACHINES, ("ndjson", "binary"))
    ))
    await asyncio.gather(*(
        one_client(wire, machine)
        for machine, wire in zip(MACHINES, ("binary", "ndjson"))
    ))
    n_requests = 2 * len(MACHINES) * (len(GRID) + 3)
    print(
        f"{n_requests} requests through the router over mixed "
        "ndjson/binary clients: bit-identical to EnergyModel"
    )

    stats = router.stats()
    counters = stats["counters"]
    assert counters["requests_total"] >= n_requests
    assert counters.get("failovers_total", 0) == 0, (
        "healthy ring must not fail over"
    )
    served = {
        backend: info.get("requests_total", 0)
        for backend, info in stats["backends"].items()
    }
    # Each machine routes to exactly one backend; with two machines on
    # two backends both sides of the ring should have seen traffic
    # (probe pings at minimum, real spread in practice).
    assert all(count > 0 for count in served.values()), served
    print(f"per-backend requests: {served}")

    await router.stop()
    for backend in backends:
        await backend.stop()
        assert backend.batcher.pending_requests == 0
    print("router and backends drained cleanly; router smoke passed")


async def drive_autoscale() -> None:
    """Ramping load against a 1..2-worker autoscaled server."""
    from repro.service.loadgen import ramp_arrival_schedule, run_open_loop

    interval = 0.05
    server = ModelServer(ServerConfig(
        port=0, max_batch=16, workers=1,
        autoscale_min=1, autoscale_max=2, autoscale_interval=interval,
    ))
    await server.pool.ready()
    print(f"autoscaled server up: {server.pool.workers} worker, max 2")

    arrivals = ramp_arrival_schedule(100.0, 1500.0, 1.5)
    report = await run_open_loop(
        server, arrivals=arrivals, workload="mixed"
    )
    assert report.errors == 0, "autoscaled ramp must lose zero replies"

    # The scale-up resize spawns and warms a real worker process, so
    # on a busy host it can still be in flight when the ramp ends —
    # wait on the sticky counter, not an instantaneous worker count.
    for _ in range(400):
        auto = server.stats()["autoscale"]
        if auto["scale_ups"] >= 1:
            break
        await asyncio.sleep(interval)
    assert auto["scale_ups"] >= 1, f"ramp never grew the pool: {auto}"
    print(
        f"ramp to 1500 req/s drove {report.requests} requests "
        f"(0 errors); autoscaler grew the pool "
        f"({auto['scale_ups']} scale-ups, peak rate "
        f"{auto['arrival_rate']:.0f} req/s seen)"
    )

    # Load gone: the cooldown must shrink the pool back to the floor.
    # The counter increments once the retiring shard has fully drained
    # and joined, so it (not the worker count) is the settled signal.
    for _ in range(400):
        await asyncio.sleep(interval)
        auto = server.stats()["autoscale"]
        if auto["scale_downs"] >= 1:
            break
    assert auto["scale_downs"] >= 1, f"pool never shrank: {auto}"
    assert server.pool.workers == 1, auto
    print(
        f"idle cooldown shrank the pool back to 1 worker "
        f"({auto['scale_downs']} scale-downs)"
    )

    await server.stop()
    assert server.batcher.pending_requests == 0
    print("drained cleanly; autoscale smoke passed")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="worker processes for model evaluation; 0 runs in-loop",
    )
    parser.add_argument(
        "--wire", choices=("ndjson", "binary"), default="ndjson",
        help="framing the TCP client negotiates (default: ndjson)",
    )
    parser.add_argument(
        "--router", action="store_true",
        help="smoke the scale-out router over two backends instead",
    )
    parser.add_argument(
        "--admission", choices=("depth", "cost"), default="depth",
        help="admission policy under test; cost runs the roofline "
        "predictor in the request path with a generous budget",
    )
    parser.add_argument(
        "--autoscale", action="store_true",
        help="smoke the worker-pool autoscaler under a ramp instead",
    )
    args = parser.parse_args()

    if args.router:
        asyncio.run(drive_router())
        return
    if args.autoscale:
        asyncio.run(drive_autoscale())
        return

    cost_kwargs = (
        # A budget far above anything ~100 requests can queue: the
        # cost loop runs on every request, refuses none of them.
        dict(admission="cost", work_budget=60.0, deadline_batching=True)
        if args.admission == "cost"
        else {}
    )

    async def scenario() -> None:
        server = ModelServer(
            ServerConfig(
                port=0, max_batch=16, workers=args.workers, **cost_kwargs
            )
        )
        workers = (
            [shard.process for shard in server.pool._shards]
            if server.pool is not None
            else []
        )
        if workers:
            await server.pool.ready()
            print(f"worker pool up: {len(workers)} shard processes")
        try:
            await drive(server, args.wire)
        finally:
            await server.stop()
        if args.admission == "cost":
            stats = server.stats()
            cost = stats["cost"]
            accepted = stats["counters"]["admission_accepted_total"]
            rejected = stats["counters"]["admission_rejected_total"]
            assert cost["predictions"] > 0, "cost model never consulted"
            assert cost["observations"] > 0, "no wall times fed the fit"
            assert accepted > 0 and rejected == 0, (accepted, rejected)
            print(
                f"cost admission: {accepted} admitted, 0 refused, "
                f"{cost['predictions']} predictions over {cost['keys']} "
                f"fitted keys, {cost['observations']} observations"
            )
        assert server.batcher.pending_requests == 0
        for process in workers:
            assert not process.is_alive(), "worker left running after stop"
            assert process.exitcode == 0, "worker did not exit cleanly"
        if workers:
            print(f"{len(workers)} workers joined cleanly")
        print("drained cleanly; smoke test passed")

    asyncio.run(scenario())


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Strong scaling without extra energy — and where it breaks.

The paper's nearest neighbour (Demmel, Gearhart, Schwartz & Lipshitz)
shows that a distributed computation can strong-scale *perfectly in
time at constant energy* — up to a communication-determined node count.
This example reproduces that analysis with our cluster extension:

* SUMMA matrix multiply (network volume ~ sqrt(p)): a wide flat range;
* halo-exchange stencil (~ p^(1/3)): wider still per unit volume;
* allreduce (~ p): the flat range collapses almost immediately.

It also shows the constant-power identity behind the result: while
speedup is perfect, p * pi0 * T(p) is exactly p-invariant.

Run:  python examples/cluster_scaling.py
"""

from __future__ import annotations

from repro.cluster import (
    ClusterModel,
    allreduce_workload,
    stencil_halo_workload,
    summa_matmul_workload,
)
from repro.machines.catalog import i7_950_double


def main() -> None:
    node = i7_950_double()
    cluster = ClusterModel(node, net_bandwidth=4e9, eps_net=1e-9)
    counts = [1, 4, 16, 64, 256, 1024]

    # ------------------------------------------------------------------
    # 1. The headline table: SUMMA strong scaling.
    # ------------------------------------------------------------------
    summa = summa_matmul_workload(8192)
    print(cluster.describe_scaling(summa, counts))
    print()

    # The constant-power identity.
    e1 = cluster.evaluate(summa, 1)
    e16 = cluster.evaluate(summa, 16)
    print(
        f"constant-energy identity: p*pi0*T(p) at p=1 -> {e1.energy_constant:.1f} J, "
        f"at p=16 -> {e16.energy_constant:.1f} J (invariant while speedup is perfect)"
    )
    print()

    # ------------------------------------------------------------------
    # 2. Flat-range comparison across communication patterns.
    # ------------------------------------------------------------------
    gated = ClusterModel(
        node.with_constant_power(0.0), net_bandwidth=4e9, eps_net=1e-9,
        max_nodes=1 << 16,
    )
    print("energy-flat strong-scaling range (E(p) <= 1.1 E(1), pi0 = 0):")
    for workload in (
        summa_matmul_workload(8192),
        stencil_halo_workload(512, sweeps=64),
        allreduce_workload(200_000_000),
    ):
        limit = gated.energy_flat_limit(workload)
        speed = gated.speedup(workload, limit)
        print(f"  {workload.name:<28} flat to p = {limit:>6} "
              f"(speedup there: {speed:,.0f}x)")
    print()
    print("communication growth decides everything: sqrt(p) scales far, "
          "linear-in-p barely scales at all.")


if __name__ == "__main__":
    main()

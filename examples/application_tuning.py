#!/usr/bin/env python
"""Tune a whole application for time, energy, power — and see them differ.

Pulls the extension layers together on a realistic scenario: an FMM
n-body pipeline whose phases straddle the balance structure of a
GPU+CPU system.

1. **Phase analysis** — which phase dominates time vs energy;
2. **Heterogeneous partitioning** — split the divisible far-field phase
   across GPU and CPU: the time-optimal and energy-optimal splits
   differ, and the Pareto frontier prices the gap;
3. **DVFS** — for the memory-bound tree phase on the CPU, when does
   down-clocking beat race-to-halt?  (Answer: only if constant power is
   mostly clock-gated.)
4. **Fused metrics** — EDP arbitration between two algorithm variants;
5. **Sensitivity** — which machine parameter an architect should attack
   for this workload.

Run:  python examples/application_tuning.py
"""

from __future__ import annotations

from repro.core.dvfs import DvfsMachine, DvfsPolicy
from repro.core.metrics import FusedMetrics
from repro.core.sensitivity import energy_sensitivity, whatif_pi0_zero
from repro.machines.catalog import gtx580_single, i7_950_single
from repro.scheduler import Device, HeterogeneousScheduler
from repro.workloads import fmm_pipeline


def main() -> None:
    gpu = gtx580_single().with_power_cap(None)
    cpu = i7_950_single()
    app = fmm_pipeline(500_000, leaf_size=128)

    # ------------------------------------------------------------------
    # 1. Phase analysis on the GPU.
    # ------------------------------------------------------------------
    print(app.describe(gpu))
    tb = app.time_bottleneck(gpu)
    eb = app.energy_bottleneck(gpu)
    print(f"\ntime bottleneck: {tb.name} ({tb.time_fraction:.0%}); "
          f"energy bottleneck: {eb.name} ({eb.energy_fraction:.0%})\n")

    # ------------------------------------------------------------------
    # 2. Partition the far-field phase across GPU + CPU.
    # ------------------------------------------------------------------
    farfield = next(p for p in app.phases if p.name == "far-field").total_profile
    scheduler = HeterogeneousScheduler(Device("gpu", gpu), Device("cpu", cpu))
    print(scheduler.summary(farfield))
    frontier = scheduler.pareto_frontier(farfield, grid=401)
    print(f"Pareto frontier: {len(frontier)} non-dominated splits from "
          f"alpha={frontier[0].alpha:.2f} (fastest) to "
          f"alpha={frontier[-1].alpha:.2f} (greenest)\n")

    # ------------------------------------------------------------------
    # 3. DVFS on the CPU for the memory-bound tree phase.
    # ------------------------------------------------------------------
    tree = next(p for p in app.phases if p.name == "tree+comm").total_profile
    for static, label in ((0.9, "mostly-static pi0 (2013-like)"),
                          (0.1, "mostly clock-gated pi0")):
        dvfs = DvfsMachine(cpu, DvfsPolicy(static_fraction=static))
        best = dvfs.energy_optimal_setting(tree)
        full = dvfs.evaluate(tree, 1.0)
        verdict = "race-to-halt" if dvfs.race_to_halt_wins(tree) else "crawl"
        print(f"DVFS [{label}]: optimal s = {best.s:.2f} "
              f"(saves {1 - best.energy / full.energy:.1%} energy) -> {verdict}")
    print()

    # ------------------------------------------------------------------
    # 4. EDP arbitration between algorithmic variants of the U-list.
    # ------------------------------------------------------------------
    ulist = next(p for p in app.phases if p.name == "u-list").total_profile
    # A recompute-heavy variant: 1.5x the work for 8x less traffic.
    variant = ulist.with_work_trade(1.5, 8.0)
    metrics = FusedMetrics(gpu)
    ratios = metrics.improvement(ulist, variant)
    print("U-list variant (f=1.5, m=8) vs baseline "
          "(ratios > 1 favour the variant):")
    for name, ratio in ratios.items():
        print(f"  {name:<8} {ratio:6.3f}")
    w = metrics.crossover_weight(ulist, variant)
    if w is None:
        print("  one variant dominates across the whole EDP family")
    else:
        print(f"  metrics flip at EDP weight w = {w:.2f}")
    print()

    # ------------------------------------------------------------------
    # 5. Sensitivity: what should the architect improve?
    # ------------------------------------------------------------------
    total = app.total_profile
    print(energy_sensitivity(gpu, total).describe())
    whatif = whatif_pi0_zero(gpu, total)
    print(f"pi0 -> 0 would save {whatif['energy_saving']:.1%} of this "
          f"application's energy"
          + (" and flip the race-to-halt verdict"
             if whatif["race_to_halt_flips"] else
             " without flipping the race-to-halt verdict"))


if __name__ == "__main__":
    main()
